//! Property-based tests for the TLS baseline: the session state machine
//! must never panic on arbitrary wire bytes, and complete handshakes
//! must round-trip arbitrary application data.

use proptest::prelude::*;
use rand::SeedableRng;
use sim_crypto::rsa::RsaKeyPair;
use tls_sim::{CertificateAuthority, TlsCosts, TlsSession};

fn setup(seed: u64) -> (TlsSession, TlsSession, rand::rngs::StdRng) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let ca = CertificateAuthority::new(512, &mut rng);
    let keys = RsaKeyPair::generate(512, &mut rng);
    let cert = ca.issue("srv", keys.public());
    (
        TlsSession::client(ca.public().clone(), TlsCosts::free()),
        TlsSession::server(cert, keys, TlsCosts::free()),
        rng,
    )
}

fn handshake(c: &mut TlsSession, s: &mut TlsSession, rng: &mut rand::rngs::StdRng) {
    let mut to_s = c.start_handshake(rng);
    for _ in 0..6 {
        let out_s = s.on_bytes(&to_s, rng);
        to_s.clear();
        let out_c = c.on_bytes(&out_s.to_peer, rng);
        to_s.extend(out_c.to_peer);
        if c.is_established() && s.is_established() {
            return;
        }
    }
    panic!("handshake did not complete");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary bytes thrown at either role never panic; the session
    /// either ignores them (incomplete frame) or fails closed.
    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400), client_side: bool) {
        let (mut c, mut s, mut rng) = setup(1);
        if client_side {
            let _ = c.start_handshake(&mut rng);
            let _ = c.on_bytes(&data, &mut rng);
        } else {
            let _ = s.on_bytes(&data, &mut rng);
        }
    }

    /// Established sessions carry arbitrary payloads of any size, even
    /// when the wire bytes are delivered in arbitrary fragments.
    #[test]
    fn app_data_round_trips(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..3000), 1..5),
        chunk in 1usize..512,
    ) {
        let (mut c, mut s, mut rng) = setup(2);
        handshake(&mut c, &mut s, &mut rng);
        for msg in &msgs {
            let (wire, _) = c.seal(msg);
            let mut got = Vec::new();
            for part in wire.chunks(chunk) {
                let out = s.on_bytes(part, &mut rng);
                prop_assert_eq!(out.error, None);
                got.extend(out.app_data);
            }
            prop_assert_eq!(&got, msg);
        }
    }

    /// A single flipped bit anywhere in a protected record is fatal.
    #[test]
    fn record_bitflip_always_fatal(msg in proptest::collection::vec(any::<u8>(), 1..500), flip in any::<usize>()) {
        let (mut c, mut s, mut rng) = setup(3);
        handshake(&mut c, &mut s, &mut rng);
        let (mut wire, _) = c.seal(&msg);
        // Flip a bit in the record body (skip the 5-byte frame header:
        // header corruption is a framing error, tested separately).
        let idx = 5 + flip % (wire.len() - 5);
        wire[idx] ^= 0x01;
        let out = s.on_bytes(&wire, &mut rng);
        prop_assert!(out.error.is_some(), "tampered record accepted");
        prop_assert!(out.app_data.is_empty());
    }
}
