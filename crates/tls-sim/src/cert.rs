//! Minimal X.509-shaped certificates: a subject name and an RSA public
//! key, signed by a certificate authority. The paper's SSL deployment
//! (OpenVPN-style) authenticates servers with exactly this chain shape:
//! one CA, per-server certificates.

use rand::rngs::StdRng;
use sim_crypto::rsa::{RsaKeyPair, RsaPublicKey};

/// A certificate: subject + public key + CA signature over both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The name this certificate binds (e.g. "db.rubis.cloud").
    pub subject: String,
    /// The bound public key.
    pub public_key: RsaPublicKey,
    signature: Vec<u8>,
}

impl Certificate {
    /// The bytes the CA signs.
    fn tbs(subject: &str, public_key: &RsaPublicKey) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(subject.len() as u32).to_be_bytes());
        out.extend_from_slice(subject.as_bytes());
        out.extend_from_slice(&public_key.to_bytes());
        out
    }

    /// Verifies the CA signature.
    pub fn verify(&self, ca: &RsaPublicKey) -> bool {
        ca.verify(&Self::tbs(&self.subject, &self.public_key), &self.signature)
    }

    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let key = self.public_key.to_bytes();
        out.extend_from_slice(&(self.subject.len() as u32).to_be_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(&key);
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses the wire form.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        fn take<'a>(data: &mut &'a [u8]) -> Option<&'a [u8]> {
            if data.len() < 4 {
                return None;
            }
            let len = u32::from_be_bytes(data[..4].try_into().ok()?) as usize;
            if data.len() < 4 + len {
                return None;
            }
            let (chunk, rest) = data[4..].split_at(len);
            *data = rest;
            Some(chunk)
        }
        let mut cur = data;
        let subject = String::from_utf8(take(&mut cur)?.to_vec()).ok()?;
        let public_key = RsaPublicKey::from_bytes(take(&mut cur)?)?;
        let signature = take(&mut cur)?.to_vec();
        Some(Certificate { subject, public_key, signature })
    }
}

/// A certificate authority: issues server certificates.
pub struct CertificateAuthority {
    keys: RsaKeyPair,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh key of `bits` bits.
    pub fn new(bits: usize, rng: &mut StdRng) -> Self {
        CertificateAuthority { keys: RsaKeyPair::generate(bits, rng) }
    }

    /// The CA's public key (distributed to clients out of band).
    pub fn public(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Issues a certificate binding `subject` to `public_key`.
    pub fn issue(&self, subject: &str, public_key: &RsaPublicKey) -> Certificate {
        let tbs = Certificate::tbs(subject, public_key);
        Certificate {
            subject: subject.to_owned(),
            public_key: public_key.clone(),
            signature: self.keys.sign(&tbs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn issue_and_verify() {
        let mut r = rng();
        let ca = CertificateAuthority::new(512, &mut r);
        let server = RsaKeyPair::generate(512, &mut r);
        let cert = ca.issue("db.cloud", server.public());
        assert!(cert.verify(ca.public()));
    }

    #[test]
    fn wrong_ca_rejected() {
        let mut r = rng();
        let ca1 = CertificateAuthority::new(512, &mut r);
        let ca2 = CertificateAuthority::new(512, &mut r);
        let server = RsaKeyPair::generate(512, &mut r);
        let cert = ca1.issue("db.cloud", server.public());
        assert!(!cert.verify(ca2.public()));
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut r = rng();
        let ca = CertificateAuthority::new(512, &mut r);
        let server = RsaKeyPair::generate(512, &mut r);
        let mut cert = ca.issue("db.cloud", server.public());
        cert.subject = "evil.cloud".to_owned();
        assert!(!cert.verify(ca.public()));
    }

    #[test]
    fn bytes_round_trip() {
        let mut r = rng();
        let ca = CertificateAuthority::new(512, &mut r);
        let server = RsaKeyPair::generate(512, &mut r);
        let cert = ca.issue("web1.cloud", server.public());
        let parsed = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
        assert!(parsed.verify(ca.public()));
        assert!(Certificate::from_bytes(&cert.to_bytes()[..10]).is_none());
    }
}
