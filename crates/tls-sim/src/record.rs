//! The TLS record layer: framing + encrypt-then-MAC protection.
//!
//! Frames on the wire: `type (1) | length (4 BE) | body`. Before the
//! handshake completes, bodies are plaintext handshake messages; after,
//! application bodies are `IV (16) | AES-CBC ciphertext | MAC (16)`
//! where the MAC is HMAC-SHA-256 over `seq (8) | ciphertext`, truncated.

use sim_crypto::aes::Aes128;
use sim_crypto::hmac::{verify_mac, HmacKey};

/// Record content types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordType {
    /// Handshake messages (plaintext until keys exist).
    Handshake,
    /// Protected application payload.
    ApplicationData,
    /// Fatal error notification.
    Alert,
}

impl RecordType {
    fn id(self) -> u8 {
        match self {
            RecordType::Handshake => 22,
            RecordType::ApplicationData => 23,
            RecordType::Alert => 21,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            22 => Some(RecordType::Handshake),
            23 => Some(RecordType::ApplicationData),
            21 => Some(RecordType::Alert),
            _ => None,
        }
    }
}

/// Frames a record.
pub fn frame(rtype: RecordType, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(rtype.id());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// An incremental record deframer (handles partial TCP reads).
#[derive(Default)]
pub struct Deframer {
    buf: Vec<u8>,
}

impl Deframer {
    /// Feeds bytes; returns complete records.
    pub fn feed(&mut self, data: &[u8]) -> Vec<(RecordType, Vec<u8>)> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 5 {
                break;
            }
            let Some(rtype) = RecordType::from_id(self.buf[0]) else {
                // Unknown type: unrecoverable framing error; drop buffer.
                self.buf.clear();
                break;
            };
            let len = u32::from_be_bytes(self.buf[1..5].try_into().expect("4 bytes")) as usize;
            if self.buf.len() < 5 + len {
                break;
            }
            let body = self.buf[5..5 + len].to_vec();
            self.buf.drain(..5 + len);
            out.push((rtype, body));
        }
        out
    }

    /// Bytes buffered awaiting a complete record.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// One direction of record protection.
pub struct RecordCipher {
    cipher: Aes128,
    /// Cached HMAC transcripts, absorbed once per connection and cloned
    /// per record.
    mac_key: HmacKey,
    seq: u64,
}

/// MAC length on the wire.
pub const MAC_LEN: usize = 16;

impl RecordCipher {
    /// Builds from traffic keys.
    pub fn new(enc_key: [u8; 16], mac_key: [u8; 32]) -> Self {
        RecordCipher { cipher: Aes128::new(&enc_key), mac_key: HmacKey::new(&mac_key), seq: 0 }
    }

    /// Protects an application payload.
    pub fn seal(&mut self, plaintext: &[u8], iv_seed: u64) -> Vec<u8> {
        self.seq += 1;
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&iv_seed.to_be_bytes());
        iv[8..16].copy_from_slice(&self.seq.to_be_bytes());
        let ct = self.cipher.cbc_encrypt(&iv, plaintext);
        let mut body = Vec::with_capacity(16 + ct.len() + MAC_LEN);
        body.extend_from_slice(&iv);
        body.extend_from_slice(&ct);
        let mac = self.mac(self.seq, &body);
        body.extend_from_slice(&mac);
        body
    }

    /// Verifies and decrypts a protected body.
    pub fn open(&mut self, body: &[u8]) -> Option<Vec<u8>> {
        if body.len() < 16 + 16 + MAC_LEN {
            return None;
        }
        let (payload, mac) = body.split_at(body.len() - MAC_LEN);
        self.seq += 1;
        let expect = self.mac(self.seq, payload);
        if !verify_mac(&expect, mac) {
            self.seq -= 1; // do not consume a number for garbage
            return None;
        }
        let iv: [u8; 16] = payload[..16].try_into().ok()?;
        self.cipher.cbc_decrypt(&iv, &payload[16..])
    }

    fn mac(&self, seq: u64, data: &[u8]) -> [u8; MAC_LEN] {
        let full = self.mac_key.mac_multi(&[&seq.to_be_bytes(), data]);
        full[..MAC_LEN].try_into().expect("truncate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_deframe_round_trip() {
        let mut d = Deframer::default();
        let wire = [frame(RecordType::Handshake, b"hello"), frame(RecordType::ApplicationData, b"data")].concat();
        // Feed in awkward chunks.
        let mut records = Vec::new();
        for chunk in wire.chunks(3) {
            records.extend(d.feed(chunk));
        }
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], (RecordType::Handshake, b"hello".to_vec()));
        assert_eq!(records[1], (RecordType::ApplicationData, b"data".to_vec()));
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn seal_open_round_trip() {
        let mut tx = RecordCipher::new([1; 16], [2; 32]);
        let mut rx = RecordCipher::new([1; 16], [2; 32]);
        for msg in [&b"short"[..], &[0u8; 5000][..]] {
            let sealed = tx.seal(msg, 7);
            assert_eq!(rx.open(&sealed).as_deref(), Some(msg));
        }
    }

    #[test]
    fn tampering_detected() {
        let mut tx = RecordCipher::new([1; 16], [2; 32]);
        let mut rx = RecordCipher::new([1; 16], [2; 32]);
        let mut sealed = tx.seal(b"important", 7);
        sealed[20] ^= 1;
        assert!(rx.open(&sealed).is_none());
    }

    #[test]
    fn wrong_keys_detected() {
        let mut tx = RecordCipher::new([1; 16], [2; 32]);
        let mut rx = RecordCipher::new([1; 16], [9; 32]);
        let sealed = tx.seal(b"important", 7);
        assert!(rx.open(&sealed).is_none());
    }

    #[test]
    fn sequence_binding_prevents_reorder() {
        let mut tx = RecordCipher::new([1; 16], [2; 32]);
        let mut rx = RecordCipher::new([1; 16], [2; 32]);
        let s1 = tx.seal(b"one", 1);
        let s2 = tx.seal(b"two", 2);
        // Deliver out of order: the MAC (bound to the receive counter)
        // must fail.
        assert!(rx.open(&s2).is_none());
        // In-order delivery after the failure still works.
        assert_eq!(rx.open(&s1).as_deref(), Some(&b"one"[..]));
        assert_eq!(rx.open(&s2).as_deref(), Some(&b"two"[..]));
    }

    #[test]
    fn garbage_framing_does_not_panic() {
        let mut d = Deframer::default();
        assert!(d.feed(&[0xff, 1, 2, 3, 4, 5]).is_empty());
    }
}
