//! # tls-sim
//!
//! A simplified TLS-1.2-style protocol: the **SSL baseline** the paper
//! compares HIP against ("one of the popular alternatives, OpenVPN uses
//! OpenSSL and hence SSL was used as an alternative to compare the
//! performance of HIP", §V-A).
//!
//! The protocol is a byte-stream session layer (run it over any reliable
//! transport): a DHE-RSA handshake with certificates, then an
//! encrypt-then-MAC record layer using AES-128-CBC + HMAC-SHA-256 — the
//! same primitives as HIP's BEX + ESP-BEET, which is the point: the
//! paper's processing-cost claim (§IV-B) is that HIP and SSL pay for the
//! same cryptography.
//!
//! Like `hip-core`, all cryptography is real (a tampered record fails
//! its MAC); CPU time is *accounted* through [`TlsCosts`] so the
//! simulator can charge it to a VM's virtual CPU.

#![warn(missing_docs)]

pub mod cert;
pub mod record;
pub mod session;

pub use cert::{Certificate, CertificateAuthority};
pub use session::{TlsCosts, TlsError, TlsOutput, TlsSession};
