//! The TLS session state machine: DHE-RSA handshake + protected
//! application data, as pure bytes-in/bytes-out (run it over any
//! reliable stream).
//!
//! Handshake (one round trip + finished messages, TLS-1.2 shaped):
//!
//! ```text
//! C → S  ClientHello   { random }
//! S → C  ServerHello   { random, certificate, signed DH public }
//! C → S  ClientKex     { DH public }, Finished { verify_data }
//! S → C  Finished      { verify_data }
//! ```
//!
//! Key schedule: `master = PRF(kij, "master secret", randoms)`, traffic
//! keys expanded from the master — HMAC-SHA-256 based, mirroring RFC
//! 5246 §8.1 in shape.

use crate::cert::Certificate;
use crate::record::{frame, Deframer, RecordCipher, RecordType};
use netsim::SimDuration;
use rand::rngs::StdRng;
use rand::RngExt;
use sim_crypto::dh::{DhGroup, DhKeyPair};
use sim_crypto::hmac::{verify_mac, HmacKey};
use sim_crypto::kdf::prf_expand;
use sim_crypto::rsa::RsaKeyPair;
use sim_crypto::rsa::RsaPublicKey;
use sim_crypto::sha256::sha256;

/// Per-operation CPU costs (mirrors `hip-core`'s cost table so both
/// protocols charge identically for identical primitives).
#[derive(Clone, Copy, Debug)]
pub struct TlsCosts {
    /// RSA private-key operation.
    pub rsa_sign: SimDuration,
    /// RSA public-key operation.
    pub rsa_verify: SimDuration,
    /// One DH exponentiation.
    pub dh_compute: SimDuration,
    /// Fixed per-record overhead.
    pub sym_per_packet: SimDuration,
    /// Symmetric crypto per byte (nanoseconds).
    pub sym_per_byte_ns: f64,
}

impl TlsCosts {
    /// Zero costs for protocol-logic tests.
    pub fn free() -> Self {
        TlsCosts {
            rsa_sign: SimDuration::ZERO,
            rsa_verify: SimDuration::ZERO,
            dh_compute: SimDuration::ZERO,
            sym_per_packet: SimDuration::ZERO,
            sym_per_byte_ns: 0.0,
        }
    }

    fn symmetric(&self, len: usize) -> SimDuration {
        self.sym_per_packet + SimDuration::from_nanos((len as f64 * self.sym_per_byte_ns) as u64)
    }
}

/// Session errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlsError {
    /// Certificate failed CA validation.
    BadCertificate,
    /// ServerKeyExchange signature invalid.
    BadSignature,
    /// Finished verify_data mismatch.
    BadFinished,
    /// Record failed authentication/decryption.
    BadRecord,
    /// Message arrived in the wrong state.
    UnexpectedMessage,
    /// Degenerate DH value.
    BadKeyExchange,
}

/// Output of feeding bytes into the session.
#[derive(Default)]
pub struct TlsOutput {
    /// Bytes to transmit to the peer.
    pub to_peer: Vec<u8>,
    /// Decrypted application data.
    pub app_data: Vec<u8>,
    /// True once the handshake completed (edge-triggered).
    pub handshake_complete: bool,
    /// Virtual CPU work performed.
    pub work: SimDuration,
    /// Fatal error, if any.
    pub error: Option<TlsError>,
}

enum State {
    // Client states.
    ClientStart,
    ClientAwaitServerHello,
    ClientAwaitFinished,
    // Server states.
    ServerAwaitClientHello,
    ServerAwaitClientKex,
    // Shared.
    Established,
    Failed,
}

#[allow(clippy::large_enum_variant)] // one Role per session; size is fine
enum Role {
    Client { ca: RsaPublicKey, dh: Option<DhKeyPair> },
    Server { cert: Certificate, keys: RsaKeyPair, dh: Option<DhKeyPair> },
}

/// A TLS endpoint.
pub struct TlsSession {
    role: Role,
    state: State,
    costs: TlsCosts,
    deframer: Deframer,
    transcript: Vec<u8>,
    client_random: [u8; 32],
    server_random: [u8; 32],
    /// Cached HMAC transcripts for the master secret (set by
    /// `derive_keys`), used for both finished MACs.
    master: Option<HmacKey>,
    tx: Option<RecordCipher>,
    rx: Option<RecordCipher>,
    iv_rng_state: u64,
}

/// Handshake message type tags.
mod hs {
    pub const CLIENT_HELLO: u8 = 1;
    pub const SERVER_HELLO: u8 = 2;
    pub const CLIENT_KEX: u8 = 16;
    pub const FINISHED: u8 = 20;
}

impl TlsSession {
    /// Creates a client that trusts `ca`.
    pub fn client(ca: RsaPublicKey, costs: TlsCosts) -> Self {
        TlsSession {
            role: Role::Client { ca, dh: None },
            state: State::ClientStart,
            costs,
            deframer: Deframer::default(),
            transcript: Vec::new(),
            client_random: [0; 32],
            server_random: [0; 32],
            master: None,
            tx: None,
            rx: None,
            iv_rng_state: 0x5deece66d,
        }
    }

    /// Creates a server with its certificate and private key.
    pub fn server(cert: Certificate, keys: RsaKeyPair, costs: TlsCosts) -> Self {
        TlsSession {
            role: Role::Server { cert, keys, dh: None },
            state: State::ServerAwaitClientHello,
            costs,
            deframer: Deframer::default(),
            transcript: Vec::new(),
            client_random: [0; 32],
            server_random: [0; 32],
            master: None,
            tx: None,
            rx: None,
            iv_rng_state: 0xb5026f5aa,
        }
    }

    /// True once application data may flow.
    pub fn is_established(&self) -> bool {
        matches!(self.state, State::Established)
    }

    /// True if the session failed fatally.
    pub fn is_failed(&self) -> bool {
        matches!(self.state, State::Failed)
    }

    fn next_iv(&mut self) -> u64 {
        // xorshift — IV uniqueness, not secrecy, is what CBC needs here
        // (the seed is mixed with the per-direction sequence number).
        let mut x = self.iv_rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.iv_rng_state = x;
        x
    }

    /// Client: produces the ClientHello (call once).
    pub fn start_handshake(&mut self, rng: &mut StdRng) -> Vec<u8> {
        assert!(matches!(self.state, State::ClientStart), "start_handshake is client-only, once");
        rng.fill(&mut self.client_random);
        let mut body = vec![hs::CLIENT_HELLO];
        body.extend_from_slice(&self.client_random);
        self.transcript.extend_from_slice(&body);
        self.state = State::ClientAwaitServerHello;
        frame(RecordType::Handshake, &body)
    }

    /// Feeds received bytes through the state machine.
    pub fn on_bytes(&mut self, data: &[u8], rng: &mut StdRng) -> TlsOutput {
        let mut out = TlsOutput::default();
        let records = self.deframer.feed(data);
        for (rtype, body) in records {
            match rtype {
                RecordType::Handshake => self.on_handshake(&body, rng, &mut out),
                RecordType::ApplicationData => self.on_app_record(&body, &mut out),
                RecordType::Alert => {
                    self.state = State::Failed;
                    out.error = Some(TlsError::BadRecord);
                }
            }
            if out.error.is_some() {
                self.state = State::Failed;
                break;
            }
        }
        out
    }

    /// Protects application data for transmission.
    pub fn seal(&mut self, app_data: &[u8]) -> (Vec<u8>, SimDuration) {
        let iv = self.next_iv();
        let tx = self.tx.as_mut().expect("handshake not complete");
        let body = tx.seal(app_data, iv);
        let work = self.costs.symmetric(app_data.len());
        (frame(RecordType::ApplicationData, &body), work)
    }

    fn on_app_record(&mut self, body: &[u8], out: &mut TlsOutput) {
        let Some(rx) = self.rx.as_mut() else {
            out.error = Some(TlsError::UnexpectedMessage);
            return;
        };
        match rx.open(body) {
            Some(plain) => {
                out.work += self.costs.symmetric(plain.len());
                out.app_data.extend_from_slice(&plain);
            }
            None => out.error = Some(TlsError::BadRecord),
        }
    }

    fn derive_keys(&mut self, kij: &[u8]) {
        let mut seed = Vec::with_capacity(64);
        seed.extend_from_slice(&self.client_random);
        seed.extend_from_slice(&self.server_random);
        let master = prf_expand(kij, b"master secret", &seed, 48);
        let keys = prf_expand(&master, b"key expansion", &seed, 2 * (16 + 32));
        self.master = Some(HmacKey::new(&master));
        let c2s_enc: [u8; 16] = keys[0..16].try_into().expect("slice");
        let c2s_mac: [u8; 32] = keys[16..48].try_into().expect("slice");
        let s2c_enc: [u8; 16] = keys[48..64].try_into().expect("slice");
        let s2c_mac: [u8; 32] = keys[64..96].try_into().expect("slice");
        match self.role {
            Role::Client { .. } => {
                self.tx = Some(RecordCipher::new(c2s_enc, c2s_mac));
                self.rx = Some(RecordCipher::new(s2c_enc, s2c_mac));
            }
            Role::Server { .. } => {
                self.tx = Some(RecordCipher::new(s2c_enc, s2c_mac));
                self.rx = Some(RecordCipher::new(c2s_enc, c2s_mac));
            }
        }
    }

    fn finished_data(&self, label: &[u8]) -> [u8; 32] {
        let th = sha256(&self.transcript);
        // Incremental transcript over the segments — no `[..].concat()`
        // temporary — from the cached master-secret key. A FINISHED
        // arriving before key derivation (malformed peer) MACs under the
        // empty key, as the pre-cache code did, and fails verification.
        match &self.master {
            Some(key) => key.mac_multi(&[label, &th]),
            None => HmacKey::new(&[]).mac_multi(&[label, &th]),
        }
    }

    fn on_handshake(&mut self, body: &[u8], rng: &mut StdRng, out: &mut TlsOutput) {
        let Some(&msg_type) = body.first() else {
            out.error = Some(TlsError::UnexpectedMessage);
            return;
        };
        match (&self.state, msg_type) {
            (State::ServerAwaitClientHello, hs::CLIENT_HELLO) => {
                if body.len() != 33 {
                    out.error = Some(TlsError::UnexpectedMessage);
                    return;
                }
                self.client_random.copy_from_slice(&body[1..33]);
                self.transcript.extend_from_slice(body);
                rng.fill(&mut self.server_random);
                // DH keypair + signature over randoms and DH public.
                let dh = DhKeyPair::generate(DhGroup::Test512, rng);
                let dh_pub = dh.public_bytes();
                let (cert_bytes, sig) = match &mut self.role {
                    Role::Server { cert, keys, dh: slot } => {
                        let mut signed = Vec::new();
                        signed.extend_from_slice(&self.client_random);
                        signed.extend_from_slice(&self.server_random);
                        signed.extend_from_slice(&dh_pub);
                        let sig = keys.sign(&signed);
                        *slot = Some(dh);
                        (cert.to_bytes(), sig)
                    }
                    Role::Client { .. } => {
                        out.error = Some(TlsError::UnexpectedMessage);
                        return;
                    }
                };
                let mut reply = vec![hs::SERVER_HELLO];
                reply.extend_from_slice(&self.server_random);
                reply.extend_from_slice(&(cert_bytes.len() as u32).to_be_bytes());
                reply.extend_from_slice(&cert_bytes);
                reply.extend_from_slice(&(dh_pub.len() as u32).to_be_bytes());
                reply.extend_from_slice(&dh_pub);
                reply.extend_from_slice(&(sig.len() as u32).to_be_bytes());
                reply.extend_from_slice(&sig);
                self.transcript.extend_from_slice(&reply);
                out.to_peer.extend_from_slice(&frame(RecordType::Handshake, &reply));
                out.work += self.costs.dh_compute + self.costs.rsa_sign;
                self.state = State::ServerAwaitClientKex;
            }
            (State::ClientAwaitServerHello, hs::SERVER_HELLO) => {
                // Parse server hello.
                type ServerHello = ([u8; 32], Certificate, Vec<u8>, Vec<u8>);
                let parse = || -> Option<ServerHello> {
                    let mut cur = &body[1..];
                    let random: [u8; 32] = cur.get(..32)?.try_into().ok()?;
                    cur = &cur[32..];
                    let take = |cur: &mut &[u8]| -> Option<Vec<u8>> {
                        let len = u32::from_be_bytes(cur.get(..4)?.try_into().ok()?) as usize;
                        let v = cur.get(4..4 + len)?.to_vec();
                        *cur = &cur[4 + len..];
                        Some(v)
                    };
                    let cert = Certificate::from_bytes(&take(&mut cur)?)?;
                    let dh_pub = take(&mut cur)?;
                    let sig = take(&mut cur)?;
                    Some((random, cert, dh_pub, sig))
                };
                let Some((random, cert, dh_pub, sig)) = parse() else {
                    out.error = Some(TlsError::UnexpectedMessage);
                    return;
                };
                self.server_random = random;
                let Role::Client { ca, dh: dh_slot } = &mut self.role else {
                    out.error = Some(TlsError::UnexpectedMessage);
                    return;
                };
                // Certificate chain validation.
                if !cert.verify(ca) {
                    out.work += self.costs.rsa_verify;
                    out.error = Some(TlsError::BadCertificate);
                    return;
                }
                // ServerKeyExchange signature.
                let mut signed = Vec::new();
                signed.extend_from_slice(&self.client_random);
                signed.extend_from_slice(&self.server_random);
                signed.extend_from_slice(&dh_pub);
                if !cert.public_key.verify(&signed, &sig) {
                    out.work += self.costs.rsa_verify * 2;
                    out.error = Some(TlsError::BadSignature);
                    return;
                }
                // Our DH half + shared secret.
                let dh = DhKeyPair::generate(DhGroup::Test512, rng);
                let Some(kij) = dh.shared_secret(&dh_pub) else {
                    out.error = Some(TlsError::BadKeyExchange);
                    return;
                };
                let our_pub = dh.public_bytes();
                *dh_slot = Some(dh);
                self.transcript.extend_from_slice(body);
                self.derive_keys(&kij);
                // ClientKex + Finished.
                let mut kex = vec![hs::CLIENT_KEX];
                kex.extend_from_slice(&our_pub);
                self.transcript.extend_from_slice(&kex);
                out.to_peer.extend_from_slice(&frame(RecordType::Handshake, &kex));
                let mut fin = vec![hs::FINISHED];
                fin.extend_from_slice(&self.finished_data(b"client finished"));
                self.transcript.extend_from_slice(&fin);
                out.to_peer.extend_from_slice(&frame(RecordType::Handshake, &fin));
                out.work += self.costs.rsa_verify * 2 + self.costs.dh_compute * 2;
                self.state = State::ClientAwaitFinished;
            }
            (State::ServerAwaitClientKex, hs::CLIENT_KEX) => {
                let peer_pub = &body[1..];
                let Role::Server { dh, .. } = &mut self.role else {
                    out.error = Some(TlsError::UnexpectedMessage);
                    return;
                };
                let Some(kij) = dh.as_ref().and_then(|d| d.shared_secret(peer_pub)) else {
                    out.error = Some(TlsError::BadKeyExchange);
                    return;
                };
                self.transcript.extend_from_slice(body);
                self.derive_keys(&kij);
                out.work += self.costs.dh_compute;
                // Stay in ServerAwaitClientKex until Finished arrives;
                // mark by clearing dh.
                if let Role::Server { dh, .. } = &mut self.role {
                    *dh = None;
                }
            }
            (State::ServerAwaitClientKex, hs::FINISHED) => {
                let expect = self.finished_data(b"client finished");
                if !verify_mac(&expect, &body[1..]) {
                    out.error = Some(TlsError::BadFinished);
                    return;
                }
                self.transcript.extend_from_slice(body);
                let mut fin = vec![hs::FINISHED];
                fin.extend_from_slice(&self.finished_data(b"server finished"));
                self.transcript.extend_from_slice(&fin);
                out.to_peer.extend_from_slice(&frame(RecordType::Handshake, &fin));
                self.state = State::Established;
                out.handshake_complete = true;
            }
            (State::ClientAwaitFinished, hs::FINISHED) => {
                let expect = self.finished_data(b"server finished");
                if !verify_mac(&expect, &body[1..]) {
                    out.error = Some(TlsError::BadFinished);
                    return;
                }
                self.state = State::Established;
                out.handshake_complete = true;
            }
            _ => out.error = Some(TlsError::UnexpectedMessage),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use rand::SeedableRng;

    fn setup() -> (TlsSession, TlsSession, StdRng) {
        let mut rng = StdRng::seed_from_u64(23);
        let ca = CertificateAuthority::new(512, &mut rng);
        let server_keys = RsaKeyPair::generate(512, &mut rng);
        let cert = ca.issue("db.cloud", server_keys.public());
        let client = TlsSession::client(ca.public().clone(), TlsCosts::free());
        let server = TlsSession::server(cert, server_keys, TlsCosts::free());
        (client, server, rng)
    }

    /// Pumps bytes between the two sessions until quiescent.
    fn pump(client: &mut TlsSession, server: &mut TlsSession, rng: &mut StdRng, initial: Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        let mut to_server = initial;
        let mut to_client = Vec::new();
        let mut client_app = Vec::new();
        let mut server_app = Vec::new();
        for _ in 0..20 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            let out = server.on_bytes(&std::mem::take(&mut to_server), rng);
            assert_eq!(out.error, None, "server error");
            to_client.extend(out.to_peer);
            server_app.extend(out.app_data);
            let out = client.on_bytes(&std::mem::take(&mut to_client), rng);
            assert_eq!(out.error, None, "client error");
            to_server.extend(out.to_peer);
            client_app.extend(out.app_data);
        }
        (client_app, server_app)
    }

    #[test]
    fn handshake_completes() {
        let (mut c, mut s, mut rng) = setup();
        let hello = c.start_handshake(&mut rng);
        pump(&mut c, &mut s, &mut rng, hello);
        assert!(c.is_established());
        assert!(s.is_established());
    }

    #[test]
    fn app_data_flows_both_ways() {
        let (mut c, mut s, mut rng) = setup();
        let hello = c.start_handshake(&mut rng);
        pump(&mut c, &mut s, &mut rng, hello);
        let (wire, _) = c.seal(b"SELECT * FROM items");
        let out = s.on_bytes(&wire, &mut rng);
        assert_eq!(out.app_data, b"SELECT * FROM items");
        let (wire, _) = s.seal(b"3 rows");
        let out = c.on_bytes(&wire, &mut rng);
        assert_eq!(out.app_data, b"3 rows");
    }

    #[test]
    fn wire_hides_plaintext() {
        let (mut c, mut s, mut rng) = setup();
        let hello = c.start_handshake(&mut rng);
        pump(&mut c, &mut s, &mut rng, hello);
        let (wire, _) = c.seal(b"SECRET-NEEDLE-42");
        assert!(!wire.windows(16).any(|w| w == b"SECRET-NEEDLE-42"));
        let _ = s;
    }

    #[test]
    fn untrusted_certificate_rejected() {
        let mut rng = StdRng::seed_from_u64(29);
        let real_ca = CertificateAuthority::new(512, &mut rng);
        let fake_ca = CertificateAuthority::new(512, &mut rng);
        let server_keys = RsaKeyPair::generate(512, &mut rng);
        let cert = fake_ca.issue("db.cloud", server_keys.public());
        let mut client = TlsSession::client(real_ca.public().clone(), TlsCosts::free());
        let mut server = TlsSession::server(cert, server_keys, TlsCosts::free());
        let hello = client.start_handshake(&mut rng);
        let out = server.on_bytes(&hello, &mut rng);
        let out = client.on_bytes(&out.to_peer, &mut rng);
        assert_eq!(out.error, Some(TlsError::BadCertificate));
        assert!(client.is_failed());
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut c, mut s, mut rng) = setup();
        let hello = c.start_handshake(&mut rng);
        pump(&mut c, &mut s, &mut rng, hello);
        let (mut wire, _) = c.seal(b"data");
        let n = wire.len();
        wire[n - 1] ^= 1;
        let out = s.on_bytes(&wire, &mut rng);
        assert_eq!(out.error, Some(TlsError::BadRecord));
    }

    #[test]
    fn handshake_charges_asymmetric_work() {
        let mut rng = StdRng::seed_from_u64(31);
        let ca = CertificateAuthority::new(512, &mut rng);
        let server_keys = RsaKeyPair::generate(512, &mut rng);
        let cert = ca.issue("db.cloud", server_keys.public());
        let costs = TlsCosts {
            rsa_sign: SimDuration::from_micros(5000),
            rsa_verify: SimDuration::from_micros(300),
            dh_compute: SimDuration::from_micros(8000),
            sym_per_packet: SimDuration::from_micros(4),
            sym_per_byte_ns: 30.0,
        };
        let mut c = TlsSession::client(ca.public().clone(), costs);
        let mut s = TlsSession::server(cert, server_keys, costs);
        let hello = c.start_handshake(&mut rng);
        let out_s = s.on_bytes(&hello, &mut rng);
        assert!(out_s.work >= SimDuration::from_micros(13_000), "server: sign + dh");
        let out_c = c.on_bytes(&out_s.to_peer, &mut rng);
        assert!(out_c.work >= SimDuration::from_micros(16_000), "client: 2 verify + 2 dh");
    }

    #[test]
    fn fragmented_delivery_is_handled() {
        let (mut c, mut s, mut rng) = setup();
        let hello = c.start_handshake(&mut rng);
        // Deliver the hello one byte at a time.
        let mut reply = Vec::new();
        for b in hello {
            let out = s.on_bytes(&[b], &mut rng);
            assert_eq!(out.error, None);
            reply.extend(out.to_peer);
        }
        assert!(!reply.is_empty());
        pump(&mut c, &mut s, &mut rng, Vec::new());
        // Finish handshake by routing the reply.
        let out = c.on_bytes(&reply, &mut rng);
        let out = s.on_bytes(&out.to_peer, &mut rng);
        let _ = c.on_bytes(&out.to_peer, &mut rng);
        assert!(c.is_established() && s.is_established());
    }
}
