//! Adversarial tests: an on-path attacker (exactly the §III-B threat —
//! "another subscriber in the same cloud") who can observe, replay,
//! inject and forge packets. HIP must keep the tunnel confidential,
//! authenticated and replay-protected through all of it.

use bytes::Bytes;
use hip_core::identity::{Hit, HostIdentity};
use hip_core::wire::{param_type, HipPacket, PacketType, Param};
use hip_core::{HipConfig, HipShim, PeerInfo};
use netsim::engine::{Ctx, Node};
use netsim::host::{App, AppEvent, Host, HostApi};
use netsim::link::LinkId;
use netsim::packet::{v4, Packet, Payload};
use netsim::tcp::TcpEvent;
use netsim::{Endpoint, LinkParams, Sim, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;

/// A malicious middlebox on the path between the two hosts. Forwards
/// everything, but can also duplicate ESP packets (replay), flip bits
/// (tamper), or inject pre-built packets.
struct Mitm {
    left: LinkId,
    right: LinkId,
    /// Duplicate every ESP packet (replay attack).
    replay_esp: bool,
    /// Flip a ciphertext bit in every 3rd ESP packet (tamper attack;
    /// an odd stride avoids parity-locking with retransmissions).
    tamper_esp: bool,
    /// Packets to inject toward the right side at start.
    inject: Vec<Packet>,
    esp_seen: u64,
}

impl Node for Mitm {
    fn start(&mut self, ctx: &mut Ctx) {
        for pkt in self.inject.drain(..) {
            ctx.transmit(self.right, pkt);
        }
    }

    fn handle_packet(&mut self, iface: usize, pkt: Packet, ctx: &mut Ctx) {
        let out = if iface == 0 { self.right } else { self.left };
        if let Payload::Esp(esp) = &pkt.payload {
            self.esp_seen += 1;
            if self.tamper_esp && self.esp_seen.is_multiple_of(3) {
                let mut tampered = esp.clone();
                let mut ct = tampered.ciphertext.to_vec();
                let mid = ct.len() / 2;
                ct[mid] ^= 0x80;
                tampered.ciphertext = Bytes::from(ct);
                ctx.transmit(out, Packet::new(pkt.src, pkt.dst, Payload::Esp(tampered)));
                return;
            }
            if self.replay_esp {
                ctx.transmit(out, pkt.clone());
            }
        }
        ctx.transmit(out, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct EchoServer;
impl App for EchoServer {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
            let d = api.tcp_recv(s);
            api.tcp_send(s, &d);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Chat {
    target: IpAddr,
    rounds: usize,
    sent: usize,
    replies: usize,
}
impl App for Chat {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_connect(self.target, 7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(s)) => {
                self.sent += 1;
                api.tcp_send(s, b"round");
            }
            AppEvent::Tcp(TcpEvent::Data(s)) => {
                let _ = api.tcp_recv(s);
                self.replies += 1;
                if self.sent < self.rounds {
                    self.sent += 1;
                    api.tcp_send(s, b"round");
                }
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct World {
    sim: Sim,
    a: netsim::NodeId,
    b: netsim::NodeId,
    hit_a: Hit,
    hit_b: Hit,
}

/// a — mitm — b, HIP between a and b, chat app running.
fn build(mitm_cfg: impl FnOnce(&mut Mitm), seed: u64) -> World {
    let mut key_rng = StdRng::seed_from_u64(seed);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let (addr_a, addr_b) = (v4(10, 0, 0, 1), v4(10, 0, 0, 2));

    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b], via_rvs: None });
    let mut shim_b = HipShim::new(id_b, HipConfig::default());
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a], via_rvs: None });

    let mut sim = Sim::new(seed ^ 0xabc);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    ha.add_app(Box::new(Chat { target: hit_b.to_ip(), rounds: 10, sent: 0, replies: 0 }));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    hb.add_app(Box::new(EchoServer));

    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let mut mitm = Mitm {
        left: LinkId(0),
        right: LinkId(1),
        replay_esp: false,
        tamper_esp: false,
        inject: Vec::new(),
        esp_seen: 0,
    };
    mitm_cfg(&mut mitm);
    let m = sim.world.add_node(Box::new(mitm));
    let la = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: m, iface: 0 },
        LinkParams::datacenter(),
    );
    let lb = sim.world.connect(
        Endpoint { node: m, iface: 1 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter(),
    );
    // The Mitm's left/right were guessed as LinkId(0)/(1): patch reality.
    {
        let mm = sim.world.node_mut::<Mitm>(m).expect("mitm");
        mm.left = la;
        mm.right = lb;
    }
    sim.world.node_mut::<Host>(a).expect("a").core.add_iface(la, vec![addr_a]);
    sim.world.node_mut::<Host>(b).expect("b").core.add_iface(lb, vec![addr_b]);
    World { sim, a, b, hit_a, hit_b }
}

fn shim_stats(sim: &Sim, node: netsim::NodeId) -> hip_core::HipStats {
    sim.world.node::<Host>(node).expect("host").shim::<HipShim>().expect("shim").stats
}

#[test]
fn replayed_esp_packets_are_dropped_and_chat_survives() {
    let mut w = build(|m| m.replay_esp = true, 1);
    w.sim.run_until(SimTime(20_000_000_000));
    let chat = w.sim.world.node::<Host>(w.a).expect("a").app::<Chat>(0).expect("chat");
    assert_eq!(chat.replies, 10, "application unaffected by the replay attack");
    let sb = shim_stats(&w.sim, w.b);
    assert!(sb.drops_replay > 0, "duplicates were detected and dropped: {sb:?}");
}

#[test]
fn tampered_esp_packets_rejected_tcp_recovers() {
    let mut w = build(|m| m.tamper_esp = true, 2);
    w.sim.run_until(SimTime(60_000_000_000));
    let chat = w.sim.world.node::<Host>(w.a).expect("a").app::<Chat>(0).expect("chat");
    // TCP retransmits whatever the ICV check discarded; progress holds.
    assert!(chat.replies >= 5, "chat made progress despite tampering: {}", chat.replies);
    let sa = shim_stats(&w.sim, w.a);
    let sb = shim_stats(&w.sim, w.b);
    assert!(
        sa.drops_auth + sb.drops_auth > 0,
        "tampered packets failed authentication: a={sa:?} b={sb:?}"
    );
}

#[test]
fn forged_i2_cannot_hijack_an_identity() {
    // The attacker knows the victim's HIT and crafts an I2 claiming it,
    // but signs with its own key (it cannot do better: the HIT is the
    // hash of the key). The responder must reject it.
    let mut key_rng = StdRng::seed_from_u64(9);
    let attacker = HostIdentity::generate_rsa(512, &mut key_rng);

    let mut w = build(
        |_m| {},
        3,
    );
    // First let the legitimate association establish.
    w.sim.run_until(SimTime(5_000_000_000));
    assert!(w
        .sim
        .world
        .node::<Host>(w.b)
        .expect("b")
        .shim::<HipShim>()
        .expect("shim")
        .is_established(&w.hit_a));
    let before = shim_stats(&w.sim, w.b);

    // Forge: I2 with sender HIT = victim's, HOST_ID = attacker's key.
    let mut rng = StdRng::seed_from_u64(10);
    let forged = {
        let mut params = vec![
            Param::Solution { k: 10, opaque: 0, i: 0xdead, j: 0xbeef },
            Param::DiffieHellman { group: 255, public: vec![2; 64] },
            Param::EspInfo { old_spi: 0, new_spi: 0x6666 },
            Param::HostId(attacker.public().to_bytes()),
        ];
        let unsigned = HipPacket::new(PacketType::I2, w.hit_a, w.hit_b, params.clone());
        let covered = unsigned.bytes_before(param_type::HIP_SIGNATURE);
        params.push(Param::Signature(attacker.sign(&covered, &mut rng)));
        HipPacket::new(PacketType::I2, w.hit_a, w.hit_b, params)
    };
    let inject = Packet::new(v4(10, 0, 0, 66), v4(10, 0, 0, 2), Payload::HipControl(forged.encode()));
    w.sim.schedule(
        netsim::SimDuration::from_millis(1),
        netsim::Event::PacketArrive { node: w.b, iface: 0, pkt: inject },
    );
    w.sim.run_until(SimTime(10_000_000_000));

    let after = shim_stats(&w.sim, w.b);
    assert!(after.drops_auth > before.drops_auth, "forged I2 rejected");
    assert_eq!(after.bex_completed, before.bex_completed, "no new association from the forgery");
    // The legitimate association is untouched.
    let chat = w.sim.world.node::<Host>(w.a).expect("a").app::<Chat>(0).expect("chat");
    assert_eq!(chat.replies, 10);
}

#[test]
fn injected_esp_with_unknown_spi_is_dropped() {
    let mut w = build(|_m| {}, 4);
    w.sim.run_until(SimTime(3_000_000_000));
    let before = shim_stats(&w.sim, w.b);
    // Garbage ESP aimed at b with a random SPI.
    let esp = netsim::packet::EspPacket {
        spi: 0x4141_4141,
        seq: 1,
        ciphertext: Bytes::from(vec![0x41u8; 64]),
        icv: Bytes::from(vec![0x41u8; 16]),
        gso: None,
    };
    w.sim.schedule(
        netsim::SimDuration::from_millis(1),
        netsim::Event::PacketArrive {
            node: w.b,
            iface: 0,
            pkt: Packet::new(v4(10, 0, 0, 66), v4(10, 0, 0, 2), Payload::Esp(esp)),
        },
    );
    w.sim.run_until(SimTime(4_000_000_000));
    let after = shim_stats(&w.sim, w.b);
    assert_eq!(after.drops_no_sa, before.drops_no_sa + 1);
}

#[test]
fn attacker_observing_wire_learns_nothing_plaintext() {
    let mut w = build(|_m| {}, 5);
    w.sim.trace = netsim::trace::Trace::enabled(50_000);
    w.sim.run_until(SimTime(10_000_000_000));
    // Everything the mitm forwarded between the hosts was HIP/ESP.
    for e in w.sim.trace.entries() {
        if let netsim::trace::TraceData::Tx(p) = &e.data {
            assert!(
                p.proto == 50 || p.proto == 139,
                "cleartext on the attacker's wire: {}",
                e.detail()
            );
        }
    }
    let _ = (w.hit_a, w.hit_b);
}
