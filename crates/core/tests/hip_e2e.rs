//! End-to-end HIP tests: two (or more) full hosts with HIP shims on a
//! simulated network, exercising the base exchange, the encrypted data
//! plane, LSIs, the firewall, mobility, CLOSE and the rendezvous relay.

use hip_core::{Firewall, HipConfig, HipShim, HipStats, PeerInfo, RendezvousServer};
use hip_core::identity::{Hit, HostIdentity};
use netsim::host::{App, AppEvent, Host, HostApi};
use netsim::packet::v4;
use netsim::tcp::TcpEvent;
use netsim::{Endpoint, FaultAction, LinkParams, NodeId, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;

/// Test app: echo server on port 7.
struct EchoServer {
    served: usize,
}
impl App for EchoServer {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_listen(7));
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
            let d = api.tcp_recv(s);
            api.tcp_send(s, &d);
            self.served += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Test app: connects to `target` at start (or on timer), sends a
/// message, records the reply.
struct EchoClient {
    target: IpAddr,
    message: Vec<u8>,
    reply: Vec<u8>,
    connected: bool,
    failed: bool,
}
impl EchoClient {
    fn new(target: IpAddr, message: &[u8]) -> Self {
        EchoClient {
            target,
            message: message.to_vec(),
            reply: Vec::new(),
            connected: false,
            failed: false,
        }
    }
}
impl App for EchoClient {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_connect(self.target, 7).is_some(), "no source address for {}", self.target);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(s)) => {
                self.connected = true;
                let msg = self.message.clone();
                api.tcp_send(s, &msg);
            }
            AppEvent::Tcp(TcpEvent::Data(s)) => {
                self.reply.extend(api.tcp_recv(s));
            }
            AppEvent::Tcp(TcpEvent::ConnectFailed(_)) | AppEvent::Tcp(TcpEvent::Reset(_)) => {
                self.failed = true;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct TwoHosts {
    sim: Sim,
    a: NodeId,
    b: NodeId,
    hit_a: Hit,
    hit_b: Hit,
}

/// Builds two directly-linked hosts with HIP shims and mutual peer
/// configuration. `f` customizes the two shims before installation.
fn two_hip_hosts(cfg: impl Fn() -> HipConfig, customize: impl FnOnce(&mut HipShim, &mut HipShim)) -> TwoHosts {
    let mut key_rng = StdRng::seed_from_u64(77);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let hit_a = id_a.hit();
    let hit_b = id_b.hit();
    let addr_a = v4(10, 0, 0, 1);
    let addr_b = v4(10, 0, 0, 2);

    let mut shim_a = HipShim::new(id_a, cfg());
    let mut shim_b = HipShim::new(id_b, cfg());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b], via_rvs: None });
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a], via_rvs: None });
    customize(&mut shim_a, &mut shim_b);

    let mut sim = Sim::new(101);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter(),
    );
    sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![addr_a]);
    sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![addr_b]);
    TwoHosts { sim, a, b, hit_a, hit_b }
}

fn stats_of(sim: &Sim, node: NodeId) -> HipStats {
    sim.world.node::<Host>(node).unwrap().shim::<HipShim>().unwrap().stats
}

#[test]
fn bex_establishes_and_tcp_flows_over_hits() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, _b| {});
    let hit_b = net.hit_b;
    // Install apps: client on a targets b's HIT.
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"over the esp tunnel")));
    }
    {
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(5_000_000_000));

    let host_a = net.sim.world.node::<Host>(net.a).unwrap();
    let client = host_a.app::<EchoClient>(0).unwrap();
    assert!(client.connected, "TCP over HIP connected");
    assert_eq!(client.reply, b"over the esp tunnel");

    let sa = stats_of(&net.sim, net.a);
    let sb = stats_of(&net.sim, net.b);
    assert_eq!(sa.bex_initiated, 1);
    assert_eq!(sa.bex_completed, 1);
    assert_eq!(sb.bex_completed, 1);
    assert!(sa.esp_out > 0 && sa.esp_in > 0, "data really flowed over ESP: {sa:?}");
    assert_eq!(sa.drops_auth + sb.drops_auth, 0);
    // Both shims agree the association is up.
    let shim_a = host_a.shim::<HipShim>().unwrap();
    assert!(shim_a.is_established(&hit_b));
}

#[test]
fn no_plaintext_on_the_wire_with_hip() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, _b| {});
    let hit_b = net.hit_b;
    net.sim.trace = netsim::trace::Trace::enabled(10_000);
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"CONFIDENTIAL-MARKER")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(5_000_000_000));
    // Every TX on the wire between the hosts is either HIP control (139)
    // or ESP (50) — never a raw TCP segment.
    let mut saw_esp = false;
    for e in net.sim.trace.entries() {
        if let netsim::trace::TraceData::Tx(p) = &e.data {
            assert!(
                p.proto == 139 || p.proto == 50,
                "unexpected cleartext wire packet: {}",
                e.detail()
            );
            saw_esp |= p.proto == 50;
        }
    }
    assert!(saw_esp);
}

#[test]
fn lsi_mode_carries_legacy_ipv4_traffic() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, _b| {});
    let (hit_a, hit_b) = (net.hit_a, net.hit_b);
    // The client addresses b by its LSI, as an unmodified IPv4 app would.
    let lsi_b = {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        let shim = host.shim_mut::<HipShim>().unwrap();
        shim.lsi.lsi_of(&hit_b).expect("LSI allocated at add_peer")
    };
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(IpAddr::V4(lsi_b), b"legacy app data")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(5_000_000_000));
    let client = net.sim.world.node::<Host>(net.a).unwrap().app::<EchoClient>(0).unwrap();
    assert!(client.connected, "LSI-addressed TCP connected");
    assert_eq!(client.reply, b"legacy app data");
    let _ = hit_a;
}

#[test]
fn bex_exhaustion_delivers_connect_failed() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, _b| {});
    let hit_b = net.hit_b;
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"never delivered")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    // The responder is down from the start: I1 retransmits until
    // max_retransmits (5 × 500 ms), then the shim gives up and must fail
    // the TCP connect upward instead of leaving it hanging.
    net.sim.schedule_fault(SimDuration::ZERO, FaultAction::NodeCrash(net.b));
    net.sim.run_until(SimTime(10_000_000_000));
    let client = net.sim.world.node::<Host>(net.a).unwrap().app::<EchoClient>(0).unwrap();
    assert!(!client.connected);
    assert!(client.failed, "BEX exhaustion must surface as ConnectFailed");
    let sa = stats_of(&net.sim, net.a);
    assert_eq!(sa.bex_failed, 1);
    assert_eq!(sa.retransmissions, 5);
}

#[test]
fn peer_restart_triggers_rebex_and_traffic_resumes() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, _b| {});
    let hit_b = net.hit_b;
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"before the crash")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(5_000_000_000));
    assert_eq!(stats_of(&net.sim, net.a).bex_completed, 1, "baseline association up");

    // Crash the responder; it restarts 100 ms later with no SAs, while
    // the initiator still believes the old association is live.
    net.sim.schedule_fault(SimDuration::ZERO, FaultAction::NodeCrash(net.b));
    net.sim.schedule_fault(SimDuration::from_millis(100), FaultAction::NodeRestart(net.b));
    net.sim.run_until(SimTime(6_000_000_000));

    // Reconnect through the stale association: the ESP-wrapped SYN hits
    // the restarted peer's empty SPI table → NOTIFY → teardown + re-BEX
    // → TCP retransmission flows over the fresh SA. No manual cleanup.
    let a = net.a;
    net.sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.with_api(0, ctx, |app, api| {
            let app = app.as_any_mut().downcast_mut::<EchoClient>().unwrap();
            app.connected = false;
            app.reply.clear();
            app.message = b"after the restart".to_vec();
            assert!(api.tcp_connect(app.target, 7).is_some());
        });
    });
    net.sim.run_until(SimTime(15_000_000_000));

    let client = net.sim.world.node::<Host>(net.a).unwrap().app::<EchoClient>(0).unwrap();
    assert!(client.connected, "TCP reconnected over the re-established association");
    assert_eq!(client.reply, b"after the restart");
    let sa = stats_of(&net.sim, net.a);
    let sb = stats_of(&net.sim, net.b);
    assert_eq!(sa.stale_spi_rebex, 1, "exactly one NOTIFY-triggered re-BEX: {sa:?}");
    assert!(sb.notifies_sent >= 1, "restarted peer reported the stale SPI: {sb:?}");
    assert_eq!(sa.bex_completed, 2, "original + re-run BEX");
    let shim_a = net.sim.world.node::<Host>(net.a).unwrap().shim::<HipShim>().unwrap();
    assert!(shim_a.is_established(&hit_b));
}

#[test]
fn firewall_denies_unauthorized_tenant() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, shim_b| {
        // b denies everyone by default (and a is not whitelisted).
        shim_b.firewall = Firewall::deny_by_default();
    });
    let hit_b = net.hit_b;
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"should not arrive")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(10_000_000_000));
    let client = net.sim.world.node::<Host>(net.a).unwrap().app::<EchoClient>(0).unwrap();
    assert!(!client.connected, "BEX must not complete against a deny-all firewall");
    let sb = stats_of(&net.sim, net.b);
    assert!(sb.drops_firewall > 0);
    assert_eq!(sb.bex_completed, 0);
    // The initiator eventually gives up.
    let sa = stats_of(&net.sim, net.a);
    assert!(sa.retransmissions > 0);
    assert_eq!(sa.bex_completed, 0);
}

#[test]
fn firewall_allows_whitelisted_tenant() {
    let mut net = two_hip_hosts(HipConfig::default, |shim_a, shim_b| {
        let mut fw = Firewall::deny_by_default();
        fw.allow(shim_a.hit());
        shim_b.firewall = fw;
    });
    let hit_b = net.hit_b;
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"authorized")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(5_000_000_000));
    let client = net.sim.world.node::<Host>(net.a).unwrap().app::<EchoClient>(0).unwrap();
    assert_eq!(client.reply, b"authorized");
}

#[test]
fn bex_survives_packet_loss() {
    // 20% loss: retransmissions must still get the BEX through.
    let mut key_rng = StdRng::seed_from_u64(78);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let (addr_a, addr_b) = (v4(10, 0, 0, 1), v4(10, 0, 0, 2));
    let mut shim_a = HipShim::new(id_a, HipConfig { max_retransmits: 10, ..HipConfig::default() });
    let mut shim_b = HipShim::new(id_b, HipConfig { max_retransmits: 10, ..HipConfig::default() });
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b], via_rvs: None });
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a], via_rvs: None });

    let mut sim = Sim::new(9);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    ha.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"lossy")));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    hb.add_app(Box::new(EchoServer { served: 0 }));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter().with_loss(0.2),
    );
    sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![addr_a]);
    sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![addr_b]);
    sim.run_until(SimTime(30_000_000_000));
    let client = sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap();
    assert_eq!(client.reply, b"lossy", "BEX + TCP survive 20% loss");
}

#[test]
fn close_tears_down_association() {
    let mut net = two_hip_hosts(HipConfig::default, |_a, _b| {});
    let hit_b = net.hit_b;
    {
        let host = net.sim.world.node_mut::<Host>(net.a).unwrap();
        host.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"hello")));
        let host = net.sim.world.node_mut::<Host>(net.b).unwrap();
        host.add_app(Box::new(EchoServer { served: 0 }));
    }
    net.sim.run_until(SimTime(5_000_000_000));
    assert!(net
        .sim
        .world
        .node::<Host>(net.a)
        .unwrap()
        .shim::<HipShim>()
        .unwrap()
        .is_established(&hit_b));
    // Ask a to close the association.
    net.sim.with_node_ctx(net.a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.shim_command(ctx, |shim, api| {
            let shim = shim.as_any_mut().downcast_mut::<HipShim>().unwrap();
            shim.close(api, hit_b);
        });
    });
    net.sim.run_until(SimTime(10_000_000_000));
    let shim_a = net.sim.world.node::<Host>(net.a).unwrap().shim::<HipShim>().unwrap();
    assert!(!shim_a.is_established(&hit_b), "association closed on a");
    let shim_b = net.sim.world.node::<Host>(net.b).unwrap().shim::<HipShim>().unwrap();
    assert!(!shim_b.is_established(&net.hit_a), "association closed on b");
    assert!(stats_of(&net.sim, net.b).closes >= 1);
}

#[test]
fn mobility_update_switches_locator_and_traffic_continues() {
    // a - switch - b, with a second address for a on a different subnet.
    let mut key_rng = StdRng::seed_from_u64(80);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let addr_a1 = v4(10, 0, 0, 1);
    let addr_a2 = v4(10, 0, 1, 1);
    let addr_b = v4(10, 0, 0, 2);

    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    let mut shim_b = HipShim::new(id_b, HipConfig::default());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b], via_rvs: None });
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a1], via_rvs: None });

    let mut sim = Sim::new(55);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    ha.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"before move")));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    hb.add_app(Box::new(EchoServer { served: 0 }));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter(),
    );
    sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![addr_a1]);
    sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![addr_b]);
    sim.run_until(SimTime(3_000_000_000));
    assert_eq!(
        sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap().reply,
        b"before move"
    );

    // "Migrate" a: its interface address changes, then the shim announces.
    sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.core.replace_iface_addrs(0, vec![addr_a2]);
        host.shim_command(ctx, |shim, api| {
            let shim = shim.as_any_mut().downcast_mut::<HipShim>().unwrap();
            shim.relocate(api, addr_a2);
        });
    });
    sim.run_until(SimTime(6_000_000_000));

    // b must now address a at the new, verified locator.
    let shim_b = sim.world.node::<Host>(b).unwrap().shim::<HipShim>().unwrap();
    assert_eq!(shim_b.peer_locator(&hit_a), Some(addr_a2), "locator switched after echo verification");
    assert!(shim_b.stats.updates_completed > 0);

    // And data still flows over the same association (send another echo).
    sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.with_api(0, ctx, |app, api| {
            let app = app.as_any_mut().downcast_mut::<EchoClient>().unwrap();
            app.reply.clear();
            let sock = api.tcp_connect(hit_b.to_ip(), 7).unwrap();
            let _ = sock;
            app.message = b"after move".to_vec();
        });
    });
    sim.run_until(SimTime(10_000_000_000));
    let client = sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap();
    assert_eq!(client.reply, b"after move", "traffic continues after relocation");
}

#[test]
fn rendezvous_relays_initial_contact() {
    // a knows b only through the RVS.
    let mut key_rng = StdRng::seed_from_u64(81);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let addr_a = v4(10, 0, 0, 1);
    let addr_b = v4(10, 0, 0, 2);
    let addr_rvs = v4(10, 0, 0, 9);

    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    let shim_b_cfg = HipConfig { rvs: Some(addr_rvs), ..HipConfig::default() };
    let mut shim_b = HipShim::new(id_b, shim_b_cfg);
    // a: no locator for b, only the RVS.
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![], via_rvs: Some(addr_rvs) });
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a], via_rvs: None });

    let mut sim = Sim::new(82);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    ha.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"via rendezvous")));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    hb.add_app(Box::new(EchoServer { served: 0 }));

    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let r = sim.world.add_node(Box::new(netsim::router::Router::new("sw")));
    let la = sim.world.connect(Endpoint { node: a, iface: 0 }, Endpoint { node: r, iface: 0 }, LinkParams::datacenter());
    let lb = sim.world.connect(Endpoint { node: b, iface: 0 }, Endpoint { node: r, iface: 1 }, LinkParams::datacenter());
    let rvs = sim.world.add_node(Box::new(RendezvousServer::new(addr_rvs, netsim::LinkId(0))));
    let lr = sim.world.connect(Endpoint { node: rvs, iface: 0 }, Endpoint { node: r, iface: 2 }, LinkParams::datacenter());
    // Point the RVS at its real link.
    // (Constructed before the link existed; rebuild in place.)
    *sim.world.node_mut::<RendezvousServer>(rvs).unwrap() = RendezvousServer::new(addr_rvs, lr);

    sim.world.node_mut::<Host>(a).unwrap().core.add_iface(la, vec![addr_a]);
    sim.world.node_mut::<Host>(b).unwrap().core.add_iface(lb, vec![addr_b]);
    {
        let router = sim.world.node_mut::<netsim::router::Router>(r).unwrap();
        router.add_iface(la);
        router.add_iface(lb);
        router.add_iface(lr);
        router.add_route(addr_a, 32, 0);
        router.add_route(addr_b, 32, 1);
        router.add_route(addr_rvs, 32, 2);
    }
    sim.run_until(SimTime(10_000_000_000));

    let server = sim.world.node::<RendezvousServer>(rvs).unwrap();
    assert_eq!(server.registration(&hit_b), Some(addr_b), "b registered");
    assert!(server.relayed >= 1, "I1 relayed through the RVS");
    let client = sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap();
    assert_eq!(client.reply, b"via rendezvous");
    let shim_b = sim.world.node::<Host>(b).unwrap().shim::<HipShim>().unwrap();
    assert!(shim_b.rvs_registered);
}

#[test]
fn cross_family_handover_v4_to_v6() {
    // §IV-C: "HIP allows IPv4-based applications to communicate over an
    // IPv6 network due to flexible tunneling, and also supports
    // IPv4-IPv6 handovers. This can be useful when migrating a VM from
    // an IPv4-only host to a dual-stack host."
    //
    // Both hosts are dual-stack; the association starts on IPv4
    // locators, then host a announces its IPv6 locator via UPDATE and
    // the ESP tunnel switches families mid-connection.
    use netsim::packet::v6;
    let mut key_rng = StdRng::seed_from_u64(91);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let addr_a4 = v4(10, 0, 0, 1);
    let addr_a6 = v6([0xfd00, 0, 0, 0, 0, 0, 0, 1]);
    let addr_b4 = v4(10, 0, 0, 2);
    let addr_b6 = v6([0xfd00, 0, 0, 0, 0, 0, 0, 2]);

    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b4], via_rvs: None });
    let mut shim_b = HipShim::new(id_b, HipConfig::default());
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a4], via_rvs: None });

    let mut sim = Sim::new(92);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    ha.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"over v4")));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    hb.add_app(Box::new(EchoServer { served: 0 }));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter(),
    );
    sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![addr_a4, addr_a6]);
    sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![addr_b4, addr_b6]);

    sim.run_until(SimTime(3_000_000_000));
    assert_eq!(
        sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap().reply,
        b"over v4"
    );

    // Handover: a moves its end of the association to IPv6.
    sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.shim_command(ctx, |shim, api| {
            let shim = shim.as_any_mut().downcast_mut::<HipShim>().unwrap();
            shim.relocate(api, addr_a6);
        });
    });
    sim.run_until(SimTime(6_000_000_000));
    let shim_b_view = sim.world.node::<Host>(b).unwrap().shim::<HipShim>().unwrap();
    assert_eq!(
        shim_b_view.peer_locator(&hit_a),
        Some(addr_a6),
        "peer switched to the IPv6 locator after verification"
    );

    // Traffic continues on the same association, now over IPv6.
    sim.trace = netsim::trace::Trace::enabled(10_000);
    sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.with_api(0, ctx, |app, api| {
            let app = app.as_any_mut().downcast_mut::<EchoClient>().unwrap();
            app.reply.clear();
            app.message = b"over v6 now".to_vec();
            api.tcp_connect(hit_b.to_ip(), 7).unwrap();
        });
    });
    sim.run_until(SimTime(10_000_000_000));
    let client = sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap();
    assert_eq!(client.reply, b"over v6 now");
    // The post-handover ESP rode IPv6 outer headers.
    let v6_esp = sim
        .trace
        .entries()
        .iter()
        .filter(|e| {
            if let netsim::trace::TraceData::Tx(p) = &e.data {
                p.proto == 50 && p.dst.to_string().starts_with("fd00:")
            } else {
                false
            }
        })
        .count();
    assert!(v6_esp > 0, "ESP packets with IPv6 locators observed");
}

#[test]
fn midbox_firewall_enforces_tenant_policy_on_path() {
    // §IV-A scenario II: the firewall lives in the hypervisor, not the
    // end host. Two HIP hosts talk through a HipMidboxFirewall that
    // (a) admits the whitelisted pair and learns its SPIs, then
    // (b) is reconfigured to deny one HIT — and the *ciphertext* stops.
    use hip_core::HipMidboxFirewall;
    let mut key_rng = StdRng::seed_from_u64(95);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let (addr_a, addr_b) = (v4(10, 0, 0, 1), v4(10, 0, 0, 2));

    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b], via_rvs: None });
    let mut shim_b = HipShim::new(id_b, HipConfig::default());
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a], via_rvs: None });

    let mut policy = Firewall::deny_by_default();
    policy.allow(hit_a);
    policy.allow(hit_b);

    let mut sim = Sim::new(96);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    ha.add_app(Box::new(EchoClient::new(hit_b.to_ip(), b"through the hypervisor")));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    hb.add_app(Box::new(EchoServer { served: 0 }));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let fw = sim.world.add_node(Box::new(HipMidboxFirewall::new("hypervisor", policy)));
    let la = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: fw, iface: 0 },
        LinkParams::datacenter(),
    );
    let lb = sim.world.connect(
        Endpoint { node: fw, iface: 1 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter(),
    );
    sim.world.node_mut::<HipMidboxFirewall>(fw).unwrap().set_links(la, lb);
    sim.world.node_mut::<Host>(a).unwrap().core.add_iface(la, vec![addr_a]);
    sim.world.node_mut::<Host>(b).unwrap().core.add_iface(lb, vec![addr_b]);

    sim.run_until(SimTime(5_000_000_000));
    {
        let client = sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap();
        assert_eq!(client.reply, b"through the hypervisor");
        let fwn = sim.world.node::<HipMidboxFirewall>(fw).unwrap();
        assert_eq!(fwn.exchanges_seen, 1, "midbox observed the BEX");
        assert!(fwn.forwarded > 5);
        assert_eq!(fwn.dropped, 0);
    }

    // Mid-simulation policy change: the tenant revokes host a.
    {
        let fwn = sim.world.node_mut::<HipMidboxFirewall>(fw).unwrap();
        fwn.policy = {
            let mut p = Firewall::deny_by_default();
            p.allow(hit_b);
            p
        };
    }
    // New traffic on the (still-established) association must now die at
    // the box — the SPI attribution makes even the ciphertext filterable.
    sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
        host.with_api(0, ctx, |app, api| {
            let app = app.as_any_mut().downcast_mut::<EchoClient>().unwrap();
            app.reply.clear();
            app.message = b"should be blocked".to_vec();
            api.tcp_connect(hit_b.to_ip(), 7).unwrap();
        });
    });
    sim.run_until(SimTime(15_000_000_000));
    let client = sim.world.node::<Host>(a).unwrap().app::<EchoClient>(0).unwrap();
    assert!(client.reply.is_empty(), "revoked tenant's ESP blocked at the hypervisor");
    let fwn = sim.world.node::<HipMidboxFirewall>(fw).unwrap();
    assert!(fwn.dropped > 0, "drops recorded: {}", fwn.dropped);
}

#[test]
fn replayed_registration_rejected_by_rvs() {
    // Replay guard: capturing a signed REG_REQUEST must not allow
    // re-binding the HIT to a stale locator.
    use hip_core::wire::{encode_locator, param_type, HipPacket, PacketType, Param};
    use netsim::engine::Ctx;
    use netsim::packet::{Packet, Payload};

    let mut rng = StdRng::seed_from_u64(97);
    let id = HostIdentity::generate_rsa(512, &mut rng);
    let make_reg = |locator, seq: u32, rng: &mut StdRng| {
        let mut params = vec![
            Param::HostId(id.public().to_bytes()),
            Param::Locator(vec![encode_locator(&locator)]),
            Param::Seq(seq),
        ];
        let unsigned = HipPacket::new(PacketType::RegRequest, id.hit(), Hit::NULL, params.clone());
        let covered = unsigned.bytes_before(param_type::HIP_SIGNATURE);
        params.push(Param::Signature(id.sign(&covered, rng)));
        HipPacket::new(PacketType::RegRequest, id.hit(), Hit::NULL, params)
    };

    struct Sink;
    impl netsim::Node for Sink {
        fn handle_packet(&mut self, _: usize, _: Packet, _: &mut Ctx) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut sim = Sim::new(98);
    let sink = sim.world.add_node(Box::new(Sink));
    let rvs_addr = v4(10, 0, 0, 9);
    let rvs = sim.world.add_node(Box::new(RendezvousServer::new(rvs_addr, netsim::LinkId(0))));
    sim.world.connect(
        Endpoint { node: rvs, iface: 0 },
        Endpoint { node: sink, iface: 0 },
        LinkParams::datacenter(),
    );

    let old_reg = make_reg(v4(10, 0, 0, 5), 1, &mut rng); // original locator
    let new_reg = make_reg(v4(10, 0, 0, 7), 2, &mut rng); // after migration
    let deliver = |sim: &mut Sim, pkt: &HipPacket, delay_ms: u64| {
        sim.schedule(
            netsim::SimDuration::from_millis(delay_ms),
            netsim::Event::PacketArrive {
                node: rvs,
                iface: 0,
                pkt: Packet::new(v4(10, 0, 0, 5), rvs_addr, Payload::HipControl(pkt.encode())),
            },
        );
    };
    deliver(&mut sim, &old_reg, 0);
    deliver(&mut sim, &new_reg, 10);
    deliver(&mut sim, &old_reg, 20); // the replay
    assert!(sim.run_to_quiescence(100).is_quiescent());

    let server = sim.world.node::<RendezvousServer>(rvs).unwrap();
    assert_eq!(
        server.registration(&id.hit()),
        Some(v4(10, 0, 0, 7)),
        "replay must not restore the stale locator"
    );
    assert_eq!(server.rejected, 1, "the replayed packet was rejected");
}
