//! Property-based tests for the HIP protocol machinery: wire-format
//! round trips under arbitrary parameter combinations, puzzle
//! solve/verify, ESP round trips and tamper detection, LSI allocation
//! invariants.

use bytes::Bytes;
use hip_core::esp::{EspSa, InnerMode};
use hip_core::identity::{Hit, LsiMapper};
use hip_core::puzzle;
use hip_core::wire::{decode_locator, encode_locator, HipPacket, PacketType, Param};
use netsim::packet::{Payload, TcpFlags, TcpSegment, UdpData, UdpDatagram};
use proptest::prelude::*;

fn arb_hit() -> impl Strategy<Value = Hit> {
    any::<[u8; 16]>().prop_map(Hit)
}

fn arb_packet_type() -> impl Strategy<Value = PacketType> {
    prop_oneof![
        Just(PacketType::I1),
        Just(PacketType::R1),
        Just(PacketType::I2),
        Just(PacketType::R2),
        Just(PacketType::Update),
        Just(PacketType::Notify),
        Just(PacketType::Close),
        Just(PacketType::CloseAck),
        Just(PacketType::RegRequest),
        Just(PacketType::RegResponse),
    ]
}

fn arb_param() -> impl Strategy<Value = Param> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Param::EspInfo { old_spi: a, new_spi: b }),
        any::<u64>().prop_map(Param::R1Counter),
        proptest::collection::vec(any::<[u8; 16]>(), 0..4).prop_map(Param::Locator),
        (any::<u8>(), any::<u8>(), any::<u16>(), any::<u64>())
            .prop_map(|(k, l, o, i)| Param::Puzzle { k, lifetime: l, opaque: o, i }),
        (any::<u8>(), any::<u16>(), any::<u64>(), any::<u64>())
            .prop_map(|(k, o, i, j)| Param::Solution { k, opaque: o, i, j }),
        any::<u32>().prop_map(Param::Seq),
        proptest::collection::vec(any::<u32>(), 0..5).prop_map(Param::Ack),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..80))
            .prop_map(|(g, p)| Param::DiffieHellman { group: g, public: p }),
        proptest::collection::vec(any::<u16>(), 0..4).prop_map(Param::HipTransform),
        proptest::collection::vec(any::<u8>(), 0..120).prop_map(Param::HostId),
        any::<u64>().prop_map(Param::EchoRequest),
        any::<u64>().prop_map(Param::EchoResponse),
        any::<[u8; 16]>().prop_map(Param::From),
        any::<[u8; 32]>().prop_map(Param::Hmac),
        proptest::collection::vec(any::<u8>(), 0..128).prop_map(Param::Signature),
    ]
}

proptest! {
    #[test]
    fn hip_packet_round_trips(
        ptype in arb_packet_type(),
        sender in arb_hit(),
        receiver in arb_hit(),
        params in proptest::collection::vec(arb_param(), 0..8),
    ) {
        let pkt = HipPacket::new(ptype, sender, receiver, params);
        let decoded = HipPacket::decode(&pkt.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn hip_packet_truncation_never_panics(
        sender in arb_hit(),
        receiver in arb_hit(),
        params in proptest::collection::vec(arb_param(), 0..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let pkt = HipPacket::new(PacketType::I2, sender, receiver, params);
        let bytes = pkt.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = HipPacket::decode(&bytes[..cut]); // must not panic
    }

    #[test]
    fn random_bytes_never_panic_decoder(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = HipPacket::decode(&data);
    }

    #[test]
    fn locator_encoding_round_trips_v4(a in any::<[u8; 4]>()) {
        let addr = std::net::IpAddr::V4(std::net::Ipv4Addr::from(a));
        prop_assert_eq!(decode_locator(&encode_locator(&addr)), addr);
    }

    #[test]
    fn locator_encoding_round_trips_v6(a in any::<[u8; 16]>()) {
        let addr = std::net::IpAddr::V6(std::net::Ipv6Addr::from(a));
        // The v4-mapped range decodes back to v4 by design; skip it.
        prop_assume!(!(a[..10] == [0u8; 10] && a[10] == 0xff && a[11] == 0xff));
        prop_assert_eq!(decode_locator(&encode_locator(&addr)), addr);
    }

    #[test]
    fn puzzle_solutions_verify(i in any::<u64>(), k in 0u8..12, a in arb_hit(), b in arb_hit(), j0 in any::<u64>()) {
        let (j, attempts) = puzzle::solve(i, k, &a, &b, j0);
        prop_assert!(puzzle::verify(i, k, &a, &b, j));
        prop_assert!(attempts >= 1);
    }

    #[test]
    fn esp_round_trips_arbitrary_tcp(
        spi in any::<u32>(),
        enc in any::<[u8; 16]>(),
        auth in any::<[u8; 32]>(),
        data in proptest::collection::vec(any::<u8>(), 0..1500),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let src = netsim::packet::v4(1, 0, 0, 1);
        let dst = netsim::packet::v4(1, 0, 0, 2);
        let mut tx = EspSa::new(spi, enc, auth, src, dst);
        let mut rx = EspSa::new(spi, enc, auth, src, dst);
        let payload = Payload::Tcp(TcpSegment {
            src_port: sport,
            dst_port: dport,
            seq: 1,
            ack: 2,
            flags: TcpFlags::ACK,
            window: 100,
            data: Bytes::from(data.clone()),
            gso_mss: 0,
        });
        let esp = tx.encapsulate(InnerMode::Hit, &payload, seed);
        let (mode, back) = rx.decapsulate(&esp).expect("round trips");
        prop_assert_eq!(mode, InnerMode::Hit);
        match back {
            Payload::Tcp(seg) => {
                prop_assert_eq!(seg.data.as_ref(), &data[..]);
                prop_assert_eq!(seg.src_port, sport);
            }
            _ => prop_assert!(false, "wrong payload kind"),
        }
    }

    #[test]
    fn esp_tamper_always_detected(
        data in proptest::collection::vec(any::<u8>(), 1..300),
        flip_byte in any::<usize>(),
    ) {
        let src = netsim::packet::v4(1, 0, 0, 1);
        let dst = netsim::packet::v4(1, 0, 0, 2);
        let mut tx = EspSa::new(9, [1; 16], [2; 32], src, dst);
        let mut rx = EspSa::new(9, [1; 16], [2; 32], src, dst);
        let payload = Payload::Udp(UdpDatagram {
            src_port: 5,
            dst_port: 6,
            data: UdpData::Raw(Bytes::from(data)),
        });
        let mut esp = tx.encapsulate(InnerMode::Hit, &payload, 7);
        let mut ct = esp.ciphertext.to_vec();
        let idx = flip_byte % ct.len();
        ct[idx] ^= 0x01;
        esp.ciphertext = Bytes::from(ct);
        prop_assert!(rx.decapsulate(&esp).is_err(), "any bit flip must be caught");
    }

    #[test]
    fn esp_sequence_numbers_strictly_increase(n in 1usize..50) {
        let src = netsim::packet::v4(1, 0, 0, 1);
        let dst = netsim::packet::v4(1, 0, 0, 2);
        let mut tx = EspSa::new(1, [0; 16], [0; 32], src, dst);
        let payload = Payload::Udp(UdpDatagram {
            src_port: 1,
            dst_port: 2,
            data: UdpData::Raw(Bytes::from_static(b"x")),
        });
        let mut prev = 0;
        for i in 0..n {
            let esp = tx.encapsulate(InnerMode::Hit, &payload, i as u64);
            prop_assert!(esp.seq > prev);
            prev = esp.seq;
        }
    }

    #[test]
    fn lsi_mapper_bijective(hits in proptest::collection::hash_set(any::<[u8; 16]>(), 1..100)) {
        let mut mapper = LsiMapper::new();
        let mut seen = std::collections::HashSet::new();
        for h in &hits {
            let hit = Hit(*h);
            let lsi = mapper.lsi_for(hit);
            prop_assert_eq!(lsi.octets()[0], 1, "LSIs live in 1/8");
            prop_assert!(seen.insert(lsi), "no two HITs share an LSI");
            prop_assert_eq!(mapper.hit_of(&lsi), Some(hit));
            prop_assert_eq!(mapper.lsi_for(hit), lsi, "stable on re-query");
        }
        prop_assert_eq!(mapper.len(), hits.len());
    }
}
