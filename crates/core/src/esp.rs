//! The HIP data plane: IPsec ESP in Bound End-to-End Tunnel (BEET) mode
//! (RFC 5202 + the BEET ESP draft the paper cites).
//!
//! BEET's trick is that the *inner* addresses (the HITs) are fixed for
//! the SA's lifetime, so they are never transmitted — the SPI implies
//! them. That is why the paper calls BEET "more bandwidth-efficient than
//! the tunnel mode". We transmit only a compact serialization of the
//! transport payload; both the AES-CBC encryption and the truncated
//! HMAC-SHA-256 ICV are computed for real, so tampering and replay are
//! actually detected, not assumed.

use bytes::Bytes;
use netsim::packet::{
    EspBatch, EspFrameMeta, EspGsoFrame, EspPacket, IcmpKind, IcmpMessage, Packet, Payload,
    TcpFlags, TcpSegment, UdpData, UdpDatagram,
};
use sim_crypto::aes::Aes128;
use sim_crypto::hmac::{verify_mac, HmacKey};
use std::net::IpAddr;
use std::sync::{Arc, OnceLock};

/// ICV length: HMAC-SHA-256 truncated to 16 bytes.
pub const ICV_LEN: usize = 16;

/// Anti-replay window size in packets (RFC 4303 default is 64).
pub const REPLAY_WINDOW: u32 = 64;

/// Why an inbound ESP packet was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EspError {
    /// ICV mismatch: packet corrupted or forged.
    BadIcv,
    /// Sequence number already seen or too old.
    Replay,
    /// Ciphertext malformed (padding, truncation).
    BadCiphertext,
    /// Inner payload failed to parse.
    BadInner,
}

/// One direction of a security association.
pub struct EspSa {
    /// The SPI identifying this SA at the receiver.
    pub spi: u32,
    cipher: Aes128,
    /// Cached HMAC transcripts for the auth key: the ipad/opad states
    /// are absorbed once at SA setup, then cloned per packet.
    auth: HmacKey,
    /// Next outbound sequence number (transmit side).
    seq: u32,
    /// Receive side: highest sequence seen + sliding window bitmap.
    rcv_highest: u32,
    rcv_window: u64,
    /// The fixed inner source address (BEET: implied by the SPI).
    pub inner_src: IpAddr,
    /// The fixed inner destination address.
    pub inner_dst: IpAddr,
    /// Packets processed (diagnostics).
    pub packets: u64,
    /// Bytes of plaintext protected (diagnostics).
    pub bytes: u64,
    /// Pooled plaintext buffer: encode/decrypt reuse one allocation per
    /// SA instead of allocating per packet.
    scratch: Vec<u8>,
}

impl EspSa {
    /// Creates an SA from KEYMAT-derived keys.
    pub fn new(spi: u32, enc_key: [u8; 16], auth_key: [u8; 32], inner_src: IpAddr, inner_dst: IpAddr) -> Self {
        EspSa {
            spi,
            cipher: Aes128::new(&enc_key),
            auth: HmacKey::new(&auth_key),
            seq: 0,
            rcv_highest: 0,
            rcv_window: 0,
            inner_src,
            inner_dst,
            packets: 0,
            bytes: 0,
            scratch: Vec::new(),
        }
    }

    /// Encapsulates a transport payload (with its identity-mode flag)
    /// into an ESP packet. `iv_seed` supplies IV randomness.
    pub fn encapsulate(&mut self, mode: InnerMode, payload: &Payload, iv_seed: u64) -> EspPacket {
        self.seq = self.seq.wrapping_add(1);
        self.scratch.clear();
        encode_inner_into(mode, payload, &mut self.scratch);
        self.packets += 1;
        self.bytes += self.scratch.len() as u64;
        // IV derived from seed + seq (unique per packet).
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&iv_seed.to_be_bytes());
        iv[8..12].copy_from_slice(&self.seq.to_be_bytes());
        // The wire buffer becomes the packet's `Bytes` (one unavoidable
        // allocation); the plaintext is ciphered straight into it after
        // the IV, with no intermediate ciphertext vector.
        let mut wire = Vec::with_capacity(16 + self.scratch.len() + 16);
        wire.extend_from_slice(&iv);
        self.cipher.cbc_encrypt_into(&iv, &self.scratch, &mut wire);
        let icv = self.icv(self.seq, &wire);
        EspPacket { spi: self.spi, seq: self.seq, ciphertext: Bytes::from(wire), icv: Bytes::copy_from_slice(&icv), gso: None }
    }

    /// Encapsulates a run of transport payloads as one GSO batch. Each
    /// frame consumes its own (consecutive) sequence number and declares
    /// exactly the wire length [`Self::encapsulate`] would have
    /// produced for it — per-frame link accounting is unchanged — but
    /// the AES-CBC pass and the ICV run once over the concatenated
    /// inner encodings. Returns one `EspPacket` per frame sharing the
    /// batch.
    pub fn encapsulate_gso(&mut self, mode: InnerMode, payloads: &[Payload], iv_seed: u64) -> Vec<EspPacket> {
        let first_seq = self.seq.wrapping_add(1);
        let mut concat = Vec::new();
        let mut frames = Vec::with_capacity(payloads.len());
        for p in payloads {
            self.seq = self.seq.wrapping_add(1);
            let off = concat.len();
            encode_inner_into(mode, p, &mut concat);
            let inner_len = concat.len() - off;
            self.packets += 1;
            self.bytes += inner_len as u64;
            frames.push(EspFrameMeta {
                inner_off: off as u32,
                inner_len: inner_len as u32,
                wire_payload_len: (16 + Aes128::cbc_padded_len(inner_len) + ICV_LEN) as u32,
            });
        }
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&iv_seed.to_be_bytes());
        iv[8..12].copy_from_slice(&first_seq.to_be_bytes());
        let mut wire = Vec::with_capacity(16 + concat.len() + 16);
        wire.extend_from_slice(&iv);
        self.cipher.cbc_encrypt_into(&iv, &concat, &mut wire);
        let icv = self.icv(first_seq, &wire);
        let batch = Arc::new(EspBatch {
            first_seq,
            ciphertext: Bytes::from(wire),
            icv: Bytes::copy_from_slice(&icv),
            frames,
            plain: OnceLock::new(),
        });
        (0..payloads.len())
            .map(|i| EspPacket {
                spi: self.spi,
                seq: first_seq.wrapping_add(i as u32),
                ciphertext: Bytes::new(),
                icv: Bytes::new(),
                gso: Some(EspGsoFrame { batch: Arc::clone(&batch), index: i as u32 }),
            })
            .collect()
    }

    /// Authenticates, replay-checks and decrypts an inbound ESP packet,
    /// returning the inner mode and payload.
    pub fn decapsulate(&mut self, esp: &EspPacket) -> Result<(InnerMode, Payload), EspError> {
        if let Some(frame) = &esp.gso {
            return self.decapsulate_gso(esp.seq, frame);
        }
        // 1. Authenticate before anything else.
        let expect = self.icv(esp.seq, &esp.ciphertext);
        if !verify_mac(&expect, &esp.icv) {
            return Err(EspError::BadIcv);
        }
        // 2. Replay window.
        self.check_replay(esp.seq)?;
        // 3. Decrypt.
        if esp.ciphertext.len() < 32 {
            return Err(EspError::BadCiphertext);
        }
        let iv: [u8; 16] = esp.ciphertext[..16].try_into().expect("16 bytes");
        self.scratch.clear();
        if !self.cipher.cbc_decrypt_into(&iv, &esp.ciphertext[16..], &mut self.scratch) {
            return Err(EspError::BadCiphertext);
        }
        self.packets += 1;
        self.bytes += self.scratch.len() as u64;
        decode_inner(&self.scratch).ok_or(EspError::BadInner)
    }

    /// Decapsulates one frame of a GSO batch. The batch is authenticated
    /// and decrypted at most once (memoized in the shared [`EspBatch`]);
    /// replay protection, counters and inner parsing still run per frame
    /// in arrival order — exactly as unbatched.
    fn decapsulate_gso(&mut self, seq: u32, frame: &EspGsoFrame) -> Result<(InnerMode, Payload), EspError> {
        let batch = Arc::clone(&frame.batch);
        let plain = match batch.plain.get() {
            Some(cached) => cached.clone(),
            None => {
                // First frame of the batch to arrive: one ICV verify +
                // one CBC pass, no matter how many frames follow. The
                // sim is single-threaded, so get/set cannot race.
                let computed = self.decrypt_batch(&batch);
                let _ = batch.plain.set(computed.clone());
                computed
            }
        };
        let Some(plain) = plain else {
            return Err(EspError::BadIcv);
        };
        self.check_replay(seq)?;
        let meta = batch.frames.get(frame.index as usize).copied().ok_or(EspError::BadCiphertext)?;
        let start = meta.inner_off as usize;
        let end = start + meta.inner_len as usize;
        if end > plain.len() {
            return Err(EspError::BadCiphertext);
        }
        self.packets += 1;
        self.bytes += meta.inner_len as u64;
        decode_inner(&plain[start..end]).ok_or(EspError::BadInner)
    }

    /// Batch-level work for [`Self::decapsulate_gso`]: verify the ICV
    /// over the whole batch ciphertext, then decrypt it. `None` means
    /// authentication or decryption failed (every frame then reports
    /// `BadIcv` without touching the replay window).
    fn decrypt_batch(&mut self, batch: &EspBatch) -> Option<Bytes> {
        let expect = self.icv(batch.first_seq, &batch.ciphertext);
        if !verify_mac(&expect, &batch.icv) {
            return None;
        }
        if batch.ciphertext.len() < 32 {
            return None;
        }
        let iv: [u8; 16] = batch.ciphertext[..16].try_into().expect("16 bytes");
        let mut plain = Vec::with_capacity(batch.ciphertext.len() - 16);
        if !self.cipher.cbc_decrypt_into(&iv, &batch.ciphertext[16..], &mut plain) {
            return None;
        }
        Some(Bytes::from(plain))
    }

    fn icv(&mut self, seq: u32, ciphertext: &[u8]) -> [u8; ICV_LEN] {
        // `spi | seq | ciphertext` streamed straight into the cached
        // transcript — no concatenation buffer, no key re-derivation.
        let full = self
            .auth
            .mac_multi(&[&self.spi.to_be_bytes(), &seq.to_be_bytes(), ciphertext]);
        full[..ICV_LEN].try_into().expect("truncation")
    }

    /// RFC 4303 §3.4.3 sliding-window replay check, updating the window.
    fn check_replay(&mut self, seq: u32) -> Result<(), EspError> {
        if seq == 0 {
            return Err(EspError::Replay);
        }
        if seq > self.rcv_highest {
            let shift = seq - self.rcv_highest;
            self.rcv_window = if shift >= 64 { 0 } else { self.rcv_window << shift };
            self.rcv_window |= 1;
            self.rcv_highest = seq;
            return Ok(());
        }
        let offset = self.rcv_highest - seq;
        if offset >= REPLAY_WINDOW {
            return Err(EspError::Replay);
        }
        let bit = 1u64 << offset;
        if self.rcv_window & bit != 0 {
            return Err(EspError::Replay);
        }
        self.rcv_window |= bit;
        Ok(())
    }

    /// Current outbound sequence number (diagnostics).
    pub fn tx_seq(&self) -> u32 {
        self.seq
    }
}

/// How the application addressed this packet — determines how the
/// receiver reconstructs the inner addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerMode {
    /// Application used HITs (IPv6).
    Hit,
    /// Application used LSIs (IPv4); both ends translate (the paper's
    /// "extra translations" penalty).
    Lsi,
}

impl InnerMode {
    fn id(self) -> u8 {
        match self {
            InnerMode::Hit => 1,
            InnerMode::Lsi => 2,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(InnerMode::Hit),
            2 => Some(InnerMode::Lsi),
            _ => None,
        }
    }
}

/// Serializes a transport payload for encryption, appending to a pooled
/// buffer (the caller clears it).
///
/// Format: `mode (1) | kind (1) | kind-specific fields`.
fn encode_inner_into(mode: InnerMode, payload: &Payload, out: &mut Vec<u8>) {
    out.push(mode.id());
    match payload {
        Payload::Tcp(seg) => {
            out.push(1);
            out.extend_from_slice(&seg.src_port.to_be_bytes());
            out.extend_from_slice(&seg.dst_port.to_be_bytes());
            out.extend_from_slice(&seg.seq.to_be_bytes());
            out.extend_from_slice(&seg.ack.to_be_bytes());
            let flags = u8::from(seg.flags.syn)
                | u8::from(seg.flags.ack) << 1
                | u8::from(seg.flags.fin) << 2
                | u8::from(seg.flags.rst) << 3;
            out.push(flags);
            out.extend_from_slice(&seg.window.to_be_bytes());
            out.extend_from_slice(&(seg.data.len() as u32).to_be_bytes());
            out.extend_from_slice(&seg.data);
        }
        Payload::Udp(udp) => {
            let UdpData::Raw(data) = &udp.data else {
                // Structured UDP payloads (DNS, Teredo) are not carried
                // over ESP in the experiments; encode their length only.
                out.push(3);
                out.extend_from_slice(&udp.src_port.to_be_bytes());
                out.extend_from_slice(&udp.dst_port.to_be_bytes());
                out.extend_from_slice(&(udp.data.wire_len() as u32).to_be_bytes());
                return;
            };
            out.push(2);
            out.extend_from_slice(&udp.src_port.to_be_bytes());
            out.extend_from_slice(&udp.dst_port.to_be_bytes());
            out.extend_from_slice(&(data.len() as u32).to_be_bytes());
            out.extend_from_slice(data);
        }
        Payload::Icmp(icmp) => {
            out.push(4);
            out.push(match icmp.kind {
                IcmpKind::EchoRequest => 1,
                IcmpKind::EchoReply => 2,
                IcmpKind::Unreachable => 3,
            });
            out.extend_from_slice(&icmp.ident.to_be_bytes());
            out.extend_from_slice(&icmp.seq.to_be_bytes());
            out.extend_from_slice(&(icmp.payload_len as u32).to_be_bytes());
        }
        Payload::Esp(_) | Payload::HipControl(_) => {
            // Nested tunnels are not modeled.
            out.push(0);
        }
    }
}

/// Parses the plaintext produced by [`encode_inner`].
fn decode_inner(data: &[u8]) -> Option<(InnerMode, Payload)> {
    let mode = InnerMode::from_id(*data.first()?)?;
    let kind = *data.get(1)?;
    let rest = &data[2..];
    let payload = match kind {
        1 => {
            if rest.len() < 21 {
                return None;
            }
            let data_len = u32::from_be_bytes(rest[17..21].try_into().ok()?) as usize;
            if rest.len() < 21 + data_len {
                return None;
            }
            let flags = rest[12];
            Payload::Tcp(TcpSegment {
                src_port: u16::from_be_bytes(rest[0..2].try_into().ok()?),
                dst_port: u16::from_be_bytes(rest[2..4].try_into().ok()?),
                seq: u32::from_be_bytes(rest[4..8].try_into().ok()?),
                ack: u32::from_be_bytes(rest[8..12].try_into().ok()?),
                flags: TcpFlags {
                    syn: flags & 1 != 0,
                    ack: flags & 2 != 0,
                    fin: flags & 4 != 0,
                    rst: flags & 8 != 0,
                },
                window: u32::from_be_bytes(rest[13..17].try_into().ok()?),
                data: Bytes::copy_from_slice(&rest[21..21 + data_len]),
                gso_mss: 0,
            })
        }
        2 => {
            if rest.len() < 8 {
                return None;
            }
            let data_len = u32::from_be_bytes(rest[4..8].try_into().ok()?) as usize;
            if rest.len() < 8 + data_len {
                return None;
            }
            Payload::Udp(UdpDatagram {
                src_port: u16::from_be_bytes(rest[0..2].try_into().ok()?),
                dst_port: u16::from_be_bytes(rest[2..4].try_into().ok()?),
                data: UdpData::Raw(Bytes::copy_from_slice(&rest[8..8 + data_len])),
            })
        }
        4 => {
            if rest.len() < 9 {
                return None;
            }
            Payload::Icmp(IcmpMessage {
                kind: match rest[0] {
                    1 => IcmpKind::EchoRequest,
                    2 => IcmpKind::EchoReply,
                    _ => IcmpKind::Unreachable,
                },
                ident: u16::from_be_bytes(rest[1..3].try_into().ok()?),
                seq: u16::from_be_bytes(rest[3..5].try_into().ok()?),
                payload_len: u32::from_be_bytes(rest[5..9].try_into().ok()?) as usize,
            })
        }
        _ => return None,
    };
    Some((mode, payload))
}

/// Reconstructs the inner packet from a decapsulated payload, applying
/// the BEET inner addresses.
pub fn rebuild_inner(sa: &EspSa, mode: InnerMode, payload: Payload, lsi_src: IpAddr, lsi_dst: IpAddr) -> Packet {
    match mode {
        InnerMode::Hit => Packet::new(sa.inner_src, sa.inner_dst, payload),
        InnerMode::Lsi => Packet::new(lsi_src, lsi_dst, payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::v4;

    fn pair() -> (EspSa, EspSa) {
        let enc = [1u8; 16];
        let auth = [2u8; 32];
        let src = v4(1, 0, 0, 1);
        let dst = v4(1, 0, 0, 2);
        (EspSa::new(0x100, enc, auth, src, dst), EspSa::new(0x100, enc, auth, src, dst))
    }

    fn tcp_payload(data: &'static [u8]) -> Payload {
        Payload::Tcp(TcpSegment {
            src_port: 1000,
            dst_port: 80,
            seq: 7,
            ack: 9,
            flags: TcpFlags::ACK,
            window: 65535,
            data: Bytes::from_static(data),
            gso_mss: 0,
        })
    }

    #[test]
    fn encap_decap_round_trip_tcp() {
        let (mut tx, mut rx) = pair();
        let esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"secret database query"), 42);
        assert!(esp.ciphertext.len() >= 32);
        let (mode, payload) = rx.decapsulate(&esp).expect("valid");
        assert_eq!(mode, InnerMode::Hit);
        match payload {
            Payload::Tcp(seg) => {
                assert_eq!(&seg.data[..], b"secret database query");
                assert_eq!(seg.src_port, 1000);
                assert_eq!(seg.seq, 7);
            }
            other => panic!("wrong payload {other:?}"),
        }
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut tx, _) = pair();
        let esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"plaintext marker AAAA"), 1);
        let hay = esp.ciphertext.as_ref();
        let needle = b"plaintext marker";
        assert!(
            !hay.windows(needle.len()).any(|w| w == needle),
            "payload must not appear in the clear"
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (mut tx, mut rx) = pair();
        let mut esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"data"), 1);
        let mut ct = esp.ciphertext.to_vec();
        ct[20] ^= 0x01;
        esp.ciphertext = Bytes::from(ct);
        assert!(matches!(rx.decapsulate(&esp), Err(EspError::BadIcv)));
    }

    #[test]
    fn tampered_icv_rejected() {
        let (mut tx, mut rx) = pair();
        let mut esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"data"), 1);
        let mut icv = esp.icv.to_vec();
        icv[0] ^= 0xff;
        esp.icv = Bytes::from(icv);
        assert!(matches!(rx.decapsulate(&esp), Err(EspError::BadIcv)));
    }

    #[test]
    fn wrong_key_rejected() {
        let (mut tx, _) = pair();
        let mut rx = EspSa::new(0x100, [9u8; 16], [9u8; 32], v4(1, 0, 0, 1), v4(1, 0, 0, 2));
        let esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"data"), 1);
        assert!(matches!(rx.decapsulate(&esp), Err(EspError::BadIcv)));
    }

    #[test]
    fn replayed_packet_rejected() {
        let (mut tx, mut rx) = pair();
        let esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"data"), 1);
        assert!(rx.decapsulate(&esp).is_ok());
        assert!(matches!(rx.decapsulate(&esp), Err(EspError::Replay)));
    }

    #[test]
    fn out_of_order_within_window_accepted() {
        let (mut tx, mut rx) = pair();
        let e1 = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"1"), 1);
        let e2 = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"2"), 2);
        let e3 = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"3"), 3);
        assert!(rx.decapsulate(&e3).is_ok());
        assert!(rx.decapsulate(&e1).is_ok(), "within window");
        assert!(rx.decapsulate(&e2).is_ok());
        assert!(matches!(rx.decapsulate(&e2), Err(EspError::Replay)), "but only once");
    }

    #[test]
    fn ancient_sequence_rejected() {
        let (mut tx, mut rx) = pair();
        let old = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"old"), 1);
        // Advance the window far past it.
        for i in 0..100 {
            let e = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"x"), i + 2);
            let _ = rx.decapsulate(&e);
        }
        assert!(matches!(rx.decapsulate(&old), Err(EspError::Replay)));
    }

    #[test]
    fn lsi_mode_round_trip() {
        let (mut tx, mut rx) = pair();
        let esp = tx.encapsulate(InnerMode::Lsi, &tcp_payload(b"legacy ipv4 app"), 1);
        let (mode, payload) = rx.decapsulate(&esp).unwrap();
        assert_eq!(mode, InnerMode::Lsi);
        let rebuilt = rebuild_inner(&rx, mode, payload, v4(1, 7, 7, 7), v4(1, 8, 8, 8));
        assert_eq!(rebuilt.src, v4(1, 7, 7, 7));
        assert_eq!(rebuilt.dst, v4(1, 8, 8, 8));
    }

    #[test]
    fn udp_and_icmp_round_trip() {
        let (mut tx, mut rx) = pair();
        let udp = Payload::Udp(UdpDatagram {
            src_port: 5353,
            dst_port: 9999,
            data: UdpData::Raw(Bytes::from_static(b"dgram")),
        });
        let esp = tx.encapsulate(InnerMode::Hit, &udp, 1);
        let (_, back) = rx.decapsulate(&esp).unwrap();
        match back {
            Payload::Udp(u) => match u.data {
                UdpData::Raw(b) => assert_eq!(&b[..], b"dgram"),
                _ => panic!(),
            },
            _ => panic!(),
        }
        let icmp = Payload::Icmp(IcmpMessage { kind: IcmpKind::EchoRequest, ident: 3, seq: 4, payload_len: 56 });
        let esp = tx.encapsulate(InnerMode::Hit, &icmp, 2);
        let (_, back) = rx.decapsulate(&esp).unwrap();
        match back {
            Payload::Icmp(i) => {
                assert_eq!(i.kind, IcmpKind::EchoRequest);
                assert_eq!(i.payload_len, 56);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn counters_accumulate() {
        let (mut tx, mut rx) = pair();
        for i in 0..5 {
            let esp = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"xxxx"), i);
            rx.decapsulate(&esp).unwrap();
        }
        assert_eq!(tx.packets, 5);
        assert_eq!(rx.packets, 5);
        assert!(tx.bytes > 0);
        assert_eq!(tx.tx_seq(), 5);
    }

    #[test]
    fn gso_batch_round_trips_and_matches_unbatched() {
        let (mut tx, mut rx) = pair();
        let (mut utx, _) = pair();
        let payloads = [tcp_payload(b"first frame"), tcp_payload(b"second"), tcp_payload(b"third one here")];
        let frames = tx.encapsulate_gso(InnerMode::Hit, &payloads, 42);
        assert_eq!(frames.len(), 3);
        for (i, (frame, p)) in frames.iter().zip(&payloads).enumerate() {
            // Consecutive sequence numbers, same SA counters as unbatched.
            assert_eq!(frame.seq, 1 + i as u32);
            // The declared wire length matches what unbatched encap produces.
            let unbatched = utx.encapsulate(InnerMode::Hit, p, 42);
            assert_eq!(
                frame.wire_len(),
                Payload::Esp(unbatched).wire_len(),
                "frame {i} wire accounting must be unchanged by batching"
            );
            let (mode, back) = rx.decapsulate(frame).expect("frame decap");
            assert_eq!(mode, InnerMode::Hit);
            let (Payload::Tcp(got), Payload::Tcp(want)) = (&back, p) else { panic!() };
            assert_eq!(got.data, want.data);
            assert_eq!(got.seq, want.seq);
        }
        assert_eq!(tx.tx_seq(), utx.tx_seq());
        assert_eq!(tx.packets, 3);
        assert_eq!(tx.bytes, utx.bytes);
        assert_eq!(rx.packets, 3);
    }

    #[test]
    fn gso_frames_replay_checked_individually() {
        let (mut tx, mut rx) = pair();
        let payloads = [tcp_payload(b"a"), tcp_payload(b"b")];
        let frames = tx.encapsulate_gso(InnerMode::Hit, &payloads, 7);
        // Out-of-order arrival within the batch is fine...
        assert!(rx.decapsulate(&frames[1]).is_ok());
        assert!(rx.decapsulate(&frames[0]).is_ok());
        // ...but each frame is accepted only once.
        assert!(matches!(rx.decapsulate(&frames[0]), Err(EspError::Replay)));
        assert!(matches!(rx.decapsulate(&frames[1]), Err(EspError::Replay)));
    }

    #[test]
    fn gso_tampered_batch_rejects_every_frame_without_replay_state() {
        let (mut tx, mut rx) = pair();
        let payloads = [tcp_payload(b"a"), tcp_payload(b"b")];
        let mut frames = tx.encapsulate_gso(InnerMode::Hit, &payloads, 7);
        let gso = frames[0].gso.as_ref().unwrap();
        let mut ct = gso.batch.ciphertext.to_vec();
        ct[20] ^= 0x01;
        let bad = Arc::new(EspBatch {
            first_seq: gso.batch.first_seq,
            ciphertext: Bytes::from(ct),
            icv: gso.batch.icv.clone(),
            frames: gso.batch.frames.clone(),
            plain: OnceLock::new(),
        });
        for (i, f) in frames.iter_mut().enumerate() {
            f.gso = Some(EspGsoFrame { batch: Arc::clone(&bad), index: i as u32 });
            assert!(matches!(rx.decapsulate(f), Err(EspError::BadIcv)));
        }
        // Auth failure must not have consumed the sequence numbers.
        let good = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"later"), 8);
        assert!(rx.decapsulate(&good).is_ok());
    }

    #[test]
    fn gso_interleaves_with_unbatched_traffic() {
        let (mut tx, mut rx) = pair();
        let before = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"pre"), 1);
        let frames = tx.encapsulate_gso(InnerMode::Hit, &[tcp_payload(b"mid1"), tcp_payload(b"mid2")], 2);
        let after = tx.encapsulate(InnerMode::Hit, &tcp_payload(b"post"), 3);
        assert_eq!(before.seq, 1);
        assert_eq!(frames[0].seq, 2);
        assert_eq!(frames[1].seq, 3);
        assert_eq!(after.seq, 4);
        assert!(rx.decapsulate(&before).is_ok());
        assert!(rx.decapsulate(&frames[0]).is_ok());
        assert!(rx.decapsulate(&frames[1]).is_ok());
        assert!(rx.decapsulate(&after).is_ok());
    }
}
