//! The cryptographic cost model.
//!
//! The simulator executes real cryptography for correctness, but charges
//! *virtual* CPU time from this table so experiments are deterministic
//! and can be scaled to the paper's 2012-era EC2 hardware (where an RSA
//! operation on a micro instance costs milliseconds, not the
//! microseconds of a modern laptop). Defaults approximate OpenSSL
//! `speed` figures for the paper's hardware class, divided by the VM's
//! compute units via [`netsim::CpuModel`].
//!
//! Both HIP and the TLS baseline draw from this same table — the paper's
//! central processing-cost claim (§IV-B) is that the two "essentially
//! utilize the same cryptographic algorithms with similar processing
//! costs", so the comparison must share primitives costs.

use netsim::SimDuration;

/// Per-operation virtual CPU costs.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// RSA-1024 private-key operation (sign / decrypt).
    pub rsa_sign: SimDuration,
    /// RSA-1024 public-key operation (verify / encrypt).
    pub rsa_verify: SimDuration,
    /// ECDSA P-256 sign.
    pub ecdsa_sign: SimDuration,
    /// ECDSA P-256 verify.
    pub ecdsa_verify: SimDuration,
    /// One Diffie-Hellman exponentiation (1536-bit MODP).
    pub dh_compute: SimDuration,
    /// One SHA-256 compression (puzzle attempt).
    pub hash_attempt: SimDuration,
    /// Fixed per-packet ESP/TLS-record overhead (context switch, copy).
    pub sym_per_packet: SimDuration,
    /// Symmetric encryption + MAC, per byte (nanoseconds).
    pub sym_per_byte_ns: f64,
    /// HIT lookup on the fast path (per packet).
    pub hit_lookup: SimDuration,
    /// Extra LSI→HIT→LSI translation (per packet, *on top of* the HIT
    /// lookup) — "LSIs ... incur a bit more performance penalty due to
    /// some extra translations" (§V-B).
    pub lsi_translation: SimDuration,
}

impl CostModel {
    /// Costs representative of the paper's hardware (2010-era Xeon at
    /// one EC2 compute unit ≈ 1.0–1.2 GHz Opteron equivalent), with
    /// *primitive-level* symmetric costs (kernel IPsec fast path): this
    /// is the profile for network-level experiments such as Figure 3,
    /// where the paper measures ESP within ~10% of plain TCP.
    pub fn paper_era() -> Self {
        CostModel {
            rsa_sign: SimDuration::from_micros(5200),
            rsa_verify: SimDuration::from_micros(280),
            ecdsa_sign: SimDuration::from_micros(950),
            ecdsa_verify: SimDuration::from_micros(2600),
            dh_compute: SimDuration::from_micros(7800),
            hash_attempt: SimDuration::from_nanos(600),
            sym_per_packet: SimDuration::from_micros(15),
            sym_per_byte_ns: 50.0,
            hit_lookup: SimDuration::from_micros(2),
            lsi_translation: SimDuration::from_micros(8),
        }
    }

    /// The web-stack profile used for the RUBiS experiments (Figure 2
    /// and the response-time table): per-packet and per-byte costs here
    /// stand for the *whole* 2012 secure-networking path on a throttled
    /// micro instance — userspace OpenVPN-style SSL copies, the HIPL
    /// daemon, Xen paravirt interrupt overhead — not the bare cipher.
    /// Calibrated once so the Basic/HIP/SSL throughput curves reproduce
    /// the paper's shape (see EXPERIMENTS.md); the asymmetric costs are
    /// identical to [`CostModel::paper_era`].
    pub fn paper_web_stack() -> Self {
        CostModel {
            sym_per_packet: SimDuration::from_micros(160),
            sym_per_byte_ns: 1100.0,
            hit_lookup: SimDuration::from_micros(5),
            lsi_translation: SimDuration::from_micros(30),
            ..Self::paper_era()
        }
    }

    /// Near-zero costs: isolates protocol behaviour from crypto cost in
    /// unit tests.
    pub fn free() -> Self {
        CostModel {
            rsa_sign: SimDuration::ZERO,
            rsa_verify: SimDuration::ZERO,
            ecdsa_sign: SimDuration::ZERO,
            ecdsa_verify: SimDuration::ZERO,
            dh_compute: SimDuration::ZERO,
            hash_attempt: SimDuration::ZERO,
            sym_per_packet: SimDuration::ZERO,
            sym_per_byte_ns: 0.0,
            hit_lookup: SimDuration::ZERO,
            lsi_translation: SimDuration::ZERO,
        }
    }

    /// Symmetric processing cost for a payload of `len` bytes.
    pub fn symmetric(&self, len: usize) -> SimDuration {
        self.sym_per_packet + SimDuration::from_nanos((len as f64 * self.sym_per_byte_ns) as u64)
    }

    /// Expected puzzle-solving cost at difficulty `k` given the actual
    /// attempt count from the solver.
    pub fn puzzle_attempts(&self, attempts: u64) -> SimDuration {
        SimDuration::from_nanos(self.hash_attempt.as_nanos().saturating_mul(attempts))
    }

    /// Sign cost for the given HI algorithm.
    pub fn sign(&self, alg: crate::identity::HiAlgorithm) -> SimDuration {
        match alg {
            crate::identity::HiAlgorithm::Rsa => self.rsa_sign,
            crate::identity::HiAlgorithm::Ecdsa => self.ecdsa_sign,
        }
    }

    /// Verify cost for the given HI algorithm.
    pub fn verify(&self, alg: crate::identity::HiAlgorithm) -> SimDuration {
        match alg {
            crate::identity::HiAlgorithm::Rsa => self.rsa_verify,
            crate::identity::HiAlgorithm::Ecdsa => self.ecdsa_verify,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_era()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::HiAlgorithm;

    #[test]
    fn symmetric_scales_with_length() {
        let c = CostModel::paper_era();
        let small = c.symmetric(100);
        let large = c.symmetric(10_000);
        assert!(large > small);
        assert!(large.as_nanos() - c.sym_per_packet.as_nanos() >= 10_000 * 20);
    }

    #[test]
    fn asymmetric_dwarfs_symmetric() {
        // The paper's design argument: control-plane ops are the heavy
        // ones; the data plane is cheap per packet.
        let c = CostModel::paper_era();
        assert!(c.rsa_sign > c.symmetric(1500).saturating_mul(20));
        assert!(c.dh_compute > c.symmetric(1500).saturating_mul(20));
    }

    #[test]
    fn ecdsa_cheaper_to_sign_than_rsa() {
        // The ECC extension's selling point (§IV-B footnote).
        let c = CostModel::paper_era();
        assert!(c.sign(HiAlgorithm::Ecdsa) < c.sign(HiAlgorithm::Rsa));
    }

    #[test]
    fn free_model_is_free() {
        let c = CostModel::free();
        assert_eq!(c.symmetric(100_000), SimDuration::ZERO);
        assert_eq!(c.puzzle_attempts(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn puzzle_cost_linear_in_attempts() {
        let c = CostModel::paper_era();
        assert_eq!(
            c.puzzle_attempts(1000).as_nanos(),
            c.hash_attempt.as_nanos() * 1000
        );
    }
}
