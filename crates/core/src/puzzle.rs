//! The HIP computational puzzle (RFC 5201 §4.1.2).
//!
//! The responder includes `(K, I)` in R1; the initiator must find `J`
//! such that the lowest `K` bits of `SHA-256(I | HIT-I | HIT-R | J)` are
//! zero. Verification costs one hash; solving costs 2^K hashes in
//! expectation — the asymmetry that lets a loaded server shed DoS load
//! by raising K (§IV-B of the paper).

use crate::identity::Hit;
use sim_crypto::sha256::{sha256_multi, Sha256};

/// Maximum difficulty we accept (2^26 hashes ≈ seconds of work).
pub const MAX_K: u8 = 26;

/// A puzzle's fixed prefix `(I | HIT-I | HIT-R)` absorbed into a SHA-256
/// midstate once, so each candidate `J` costs a single clone + 8-byte
/// update + finalize instead of re-buffering all four segments.
struct Midstate(Sha256);

impl Midstate {
    fn new(i: u64, initiator: &Hit, responder: &Hit) -> Self {
        let mut h = Sha256::new();
        h.update(&i.to_be_bytes());
        h.update(&initiator.0);
        h.update(&responder.0);
        Midstate(h)
    }

    fn low64(&self, j: u64) -> u64 {
        let mut h = self.0.clone();
        h.update(&j.to_be_bytes());
        let digest = h.finalize();
        // The check uses the low-order 64 bits (Ltrunc in the RFC).
        u64::from_be_bytes(digest[24..32].try_into().expect("8 bytes"))
    }
}

fn puzzle_hash(i: u64, initiator: &Hit, responder: &Hit, j: u64) -> u64 {
    let digest = sha256_multi(&[&i.to_be_bytes(), &initiator.0, &responder.0, &j.to_be_bytes()]);
    u64::from_be_bytes(digest[24..32].try_into().expect("8 bytes"))
}

/// Checks whether `j` solves the puzzle `(i, k)` for this HIT pair.
pub fn verify(i: u64, k: u8, initiator: &Hit, responder: &Hit, j: u64) -> bool {
    if k == 0 {
        return true;
    }
    if k > 63 {
        return false;
    }
    let mask = (1u64 << k) - 1;
    puzzle_hash(i, initiator, responder, j) & mask == 0
}

/// Solves the puzzle by brute force, counting attempts.
///
/// Starts from `j0` (pass something random for realistic behaviour,
/// or 0 for deterministic tests). Returns `(j, attempts)`.
///
/// # Panics
/// Panics if `k > MAX_K` — a defence against absurd difficulty values
/// arriving off the wire.
pub fn solve(i: u64, k: u8, initiator: &Hit, responder: &Hit, j0: u64) -> (u64, u64) {
    assert!(k <= MAX_K, "puzzle difficulty {k} exceeds MAX_K");
    if k == 0 {
        return (j0, 1);
    }
    let midstate = Midstate::new(i, initiator, responder);
    let mask = (1u64 << k) - 1;
    let mut j = j0;
    let mut attempts = 0u64;
    loop {
        attempts += 1;
        if midstate.low64(j) & mask == 0 {
            return (j, attempts);
        }
        j = j.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits() -> (Hit, Hit) {
        (Hit([0xaa; 16]), Hit([0xbb; 16]))
    }

    #[test]
    fn solve_then_verify() {
        let (hi, hr) = hits();
        for k in [0u8, 1, 4, 8, 12] {
            let (j, attempts) = solve(0x1234, k, &hi, &hr, 0);
            assert!(verify(0x1234, k, &hi, &hr, j), "k={k}");
            assert!(attempts >= 1);
        }
    }

    #[test]
    fn difficulty_scales_attempts() {
        let (hi, hr) = hits();
        // Average attempts over a few puzzles grows roughly as 2^K.
        let avg = |k: u8| -> f64 {
            let total: u64 = (0..16u64).map(|i| solve(i, k, &hi, &hr, i * 7919).1).sum();
            total as f64 / 16.0
        };
        let a8 = avg(8);
        let a12 = avg(12);
        assert!(
            a12 > a8 * 4.0,
            "k=12 should need ≫ attempts than k=8 (got {a8:.0} vs {a12:.0})"
        );
    }

    #[test]
    fn wrong_j_rejected() {
        let (hi, hr) = hits();
        let (j, _) = solve(7, 12, &hi, &hr, 0);
        assert!(!verify(7, 12, &hi, &hr, j.wrapping_add(1)) || {
            // j+1 could also be a solution with ~2^-12 probability; accept
            // either but make sure verification is not vacuous:
            !verify(7, 12, &hi, &hr, j.wrapping_add(2)) || !verify(7, 12, &hi, &hr, j.wrapping_add(3))
        });
    }

    #[test]
    fn solution_binds_hits() {
        let (hi, hr) = hits();
        let (j, _) = solve(7, 12, &hi, &hr, 0);
        let other = Hit([0xcc; 16]);
        // The same J almost surely fails for a different HIT pair.
        let cross = verify(7, 12, &other, &hr, j) && verify(7, 12, &hi, &other, j);
        assert!(!cross, "solution must be bound to the HIT pair");
    }

    #[test]
    fn k_zero_always_passes() {
        let (hi, hr) = hits();
        assert!(verify(1, 0, &hi, &hr, 999));
    }

    #[test]
    fn oversized_k_rejected_by_verify() {
        let (hi, hr) = hits();
        assert!(!verify(1, 64, &hi, &hr, 0));
    }

    #[test]
    #[should_panic]
    fn oversized_k_panics_solver() {
        let (hi, hr) = hits();
        let _ = solve(1, MAX_K + 1, &hi, &hr, 0);
    }

    /// Reference brute-force using the non-midstate hash path, for
    /// proving the midstate solver bit-identical.
    fn solve_reference(i: u64, k: u8, hi: &Hit, hr: &Hit, j0: u64) -> (u64, u64) {
        let mut j = j0;
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            if verify(i, k, hi, hr, j) {
                return (j, attempts);
            }
            j = j.wrapping_add(1);
        }
    }

    #[test]
    fn midstate_solver_matches_reference_exactly() {
        let (hi, hr) = hits();
        for (i, k, j0) in [
            (0x1234u64, 8u8, 0u64),
            (7, 12, 0),
            (99, 10, 0xdead_beef),
            (0, 1, u64::MAX - 3), // exercises wrapping j
            (42, 0, 17),
        ] {
            let fast = solve(i, k, &hi, &hr, j0);
            let slow = solve_reference(i, k, &hi, &hr, j0);
            assert_eq!(fast, slow, "i={i} k={k} j0={j0}: (j, attempts) must be identical");
        }
    }

    #[test]
    fn midstate_hash_matches_multi_hash() {
        let (hi, hr) = hits();
        let m = Midstate::new(0xfeed, &hi, &hr);
        for j in 0..64u64 {
            assert_eq!(m.low64(j), puzzle_hash(0xfeed, &hi, &hr, j));
        }
    }
}
