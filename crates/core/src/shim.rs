//! The HIP layer-3.5 shim: the protocol engine that plugs into a
//! [`netsim::Host`].
//!
//! Responsibilities (mirroring the HIPL daemon + kernel hooks the paper
//! deployed on its EC2/OpenNebula VMs):
//!
//! - intercept upper-layer packets addressed to HITs/LSIs;
//! - run the **Base Exchange** (I1 → R1 → I2 → R2, RFC 5201 §4.1) with
//!   real signatures, a real Diffie–Hellman agreement, real puzzles and
//!   pre-computed R1s for DoS resilience;
//! - derive KEYMAT and install **ESP-BEET** security associations;
//! - encrypt/decrypt the data plane, charging the cost model;
//! - handle **UPDATE** (mobility with return-routability echo, RFC
//!   5206), **CLOSE**, rendezvous registration and HIT-based firewall
//!   policy.

use crate::cost::CostModel;
use crate::esp::{EspError, EspSa, InnerMode};
use crate::firewall::{Action, Firewall};
use crate::identity::{HostIdentity, Hit, LsiMapper, PublicHi};
use crate::puzzle;
use crate::wire::{encode_locator, param_type, HipPacket, PacketType, Param};
use netsim::packet::{Packet, Payload};
use netsim::{L35Shim, ShimApi, SimDuration, SimTime};
use sim_crypto::dh::{DhGroup, DhKeyPair};
use sim_crypto::hmac::HmacKey;
use sim_crypto::kdf::keymat;
use std::any::Any;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

/// Shim configuration.
#[derive(Clone)]
pub struct HipConfig {
    /// DH group for the BEX (tests use the small group; the cost model,
    /// not the arithmetic, provides timing).
    pub dh_group: DhGroup,
    /// Puzzle difficulty advertised in R1.
    pub puzzle_k: u8,
    /// Virtual CPU costs.
    pub costs: CostModel,
    /// BEX/UPDATE retransmission interval.
    pub retransmit_timeout: SimDuration,
    /// Retransmissions before giving up.
    pub max_retransmits: u32,
    /// Number of pre-computed R1s (each with its own puzzle and DH key).
    pub r1_pool_size: usize,
    /// Rendezvous server to register with, if any.
    pub rvs: Option<IpAddr>,
}

impl Default for HipConfig {
    fn default() -> Self {
        HipConfig {
            dh_group: DhGroup::Test512,
            puzzle_k: 10,
            costs: CostModel::paper_era(),
            retransmit_timeout: SimDuration::from_millis(500),
            max_retransmits: 5,
            r1_pool_size: 8,
            rvs: None,
        }
    }
}

/// Counters exposed for tests, experiments and ops.
#[derive(Clone, Copy, Debug, Default)]
pub struct HipStats {
    /// Base exchanges this host started (I1 sent).
    pub bex_initiated: u64,
    /// I1s answered with an R1.
    pub bex_responded: u64,
    /// Associations fully established (either role).
    pub bex_completed: u64,
    /// Exchanges abandoned after retransmission exhaustion.
    pub bex_failed: u64,
    /// ESP data packets encapsulated.
    pub esp_out: u64,
    /// ESP data packets successfully decapsulated.
    pub esp_in: u64,
    /// Plaintext payload bytes protected outbound.
    pub esp_bytes_out: u64,
    /// Plaintext payload bytes recovered inbound.
    pub esp_bytes_in: u64,
    /// Inbound ESP rejected by the anti-replay window.
    pub drops_replay: u64,
    /// Packets rejected by signature/HMAC/ICV/puzzle checks.
    pub drops_auth: u64,
    /// Exchanges/packets refused by the HIT firewall.
    pub drops_firewall: u64,
    /// ESP for an unknown SPI or an SA-less association.
    pub drops_no_sa: u64,
    /// Mobility UPDATEs announced.
    pub updates_sent: u64,
    /// Mobility UPDATEs verified to completion.
    pub updates_completed: u64,
    /// Associations closed via CLOSE/CLOSE_ACK.
    pub closes: u64,
    /// Control packets retransmitted.
    pub retransmissions: u64,
    /// NOTIFY(stale SPI) packets sent for ESP with no matching SA.
    pub notifies_sent: u64,
    /// Associations torn down and re-negotiated after a peer reported
    /// our SPI stale (it crashed and lost its SAs).
    pub stale_spi_rebex: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AssocState {
    I1Sent,
    I2Sent,
    Established,
    Closing,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Initiator,
    Responder,
}

struct Rtx {
    bytes: bytes::Bytes,
    dst: IpAddr,
    tries: u32,
    deadline: SimTime,
    token: u64,
    /// Engine handle for the armed timer, cancelled when the reply
    /// arrives so acknowledged retransmissions never pop stale.
    engine_timer: netsim::TimerToken,
}

/// Peer-side mobility verification in progress.
struct PendingVerify {
    nonce: u64,
    new_locator: IpAddr,
    seq_ours: u32,
}

struct Association {
    /// Retained for diagnostics/debug formatting.
    #[allow(dead_code)]
    peer: Hit,
    state: AssocState,
    /// BEX role (determines KEYMAT key assignment at derivation time;
    /// retained for diagnostics afterwards).
    #[allow(dead_code)]
    role: Role,
    local_locator: IpAddr,
    peer_locator: IpAddr,
    dh: Option<DhKeyPair>,
    /// Puzzle values bound into KEYMAT.
    puzzle_i: u64,
    puzzle_j: u64,
    /// Cached HMAC transcripts for outbound/inbound control packets
    /// (ipad/opad absorbed once at KEYMAT time, cloned per packet).
    hmac_out: HmacKey,
    hmac_in: HmacKey,
    sa_out: Option<EspSa>,
    sa_in: Option<EspSa>,
    /// Our inbound SPI (sent to the peer during BEX).
    local_spi: u32,
    queued: Vec<Packet>,
    rtx: Option<Rtx>,
    update_seq: u32,
    /// Mobility: we moved and await the peer's echo.
    update_in_flight: bool,
    /// Mobility: peer moved; we sent an echo and await the response.
    pending_verify: Option<PendingVerify>,
    /// CLOSE nonce awaiting CLOSE_ACK.
    close_nonce: Option<u64>,
    peer_hi: Option<PublicHi>,
    /// Outbound SA keys derived at I2 time, installed when R2 arrives
    /// with the peer's SPI.
    pending_out_keys: Option<([u8; 16], [u8; 32])>,
    /// When the BEX started (I1 sent), for the `hip.bex` latency span.
    bex_started: SimTime,
    /// Per-SA packet counters, registered when the SA is installed.
    ctr_esp_out: Option<obs::CtrId>,
    ctr_esp_in: Option<obs::CtrId>,
}

/// A pre-computed R1 (signature covers the zero-receiver form).
struct R1Entry {
    params: Vec<Param>,
    dh: DhKeyPair,
    /// The puzzle I this entry issued (key of `active_puzzles`).
    #[allow(dead_code)]
    i: u64,
    k: u8,
}

/// Statically configured peer knowledge (the paper pre-configures HITs;
/// DNS/rendezvous provide the dynamic alternatives).
#[derive(Clone, Debug, Default)]
pub struct PeerInfo {
    /// Known locators, tried in order.
    pub locators: Vec<IpAddr>,
    /// Reach this peer's I1 through a rendezvous server instead.
    pub via_rvs: Option<IpAddr>,
}

/// The HIP shim.
pub struct HipShim {
    identity: HostIdentity,
    config: HipConfig,
    /// LSI allocation for legacy IPv4 applications.
    pub lsi: LsiMapper,
    my_lsi: Ipv4Addr,
    peers: HashMap<Hit, PeerInfo>,
    assocs: HashMap<Hit, Association>,
    spi_in: HashMap<u32, Hit>,
    /// The HIT-based packet filter.
    pub firewall: Firewall,
    r1_pool: Vec<R1Entry>,
    /// Puzzle I → pool index, for verifying I2 solutions statelessly.
    active_puzzles: HashMap<u64, usize>,
    next_timer: u64,
    timers: HashMap<u64, Hit>,
    /// Protocol counters.
    pub stats: HipStats,
    /// Registered with the rendezvous server?
    pub rvs_registered: bool,
    /// Monotonic registration sequence (RVS replay guard).
    reg_seq: u32,
    /// Last NOTIFY(stale SPI) per unknown SPI, for rate limiting.
    notify_limiter: HashMap<u32, SimTime>,
}

impl HipShim {
    /// Creates a shim around a host identity.
    pub fn new(identity: HostIdentity, config: HipConfig) -> Self {
        let mut lsi = LsiMapper::new();
        let my_lsi = lsi.lsi_for(identity.hit());
        HipShim {
            identity,
            config,
            lsi,
            my_lsi,
            peers: HashMap::new(),
            assocs: HashMap::new(),
            spi_in: HashMap::new(),
            firewall: Firewall::allow_all(),
            r1_pool: Vec::new(),
            active_puzzles: HashMap::new(),
            next_timer: 0,
            timers: HashMap::new(),
            stats: HipStats::default(),
            rvs_registered: false,
            reg_seq: 0,
            notify_limiter: HashMap::new(),
        }
    }

    /// This host's HIT.
    pub fn hit(&self) -> Hit {
        self.identity.hit()
    }

    /// This host's own LSI.
    pub fn lsi(&self) -> Ipv4Addr {
        self.my_lsi
    }

    /// The public host identity.
    pub fn public(&self) -> &PublicHi {
        self.identity.public()
    }

    /// Registers a peer (HIT → locators), returning the LSI local
    /// applications can use for it.
    pub fn add_peer(&mut self, hit: Hit, info: PeerInfo) -> Ipv4Addr {
        self.peers.insert(hit, info);
        self.lsi.lsi_for(hit)
    }

    /// Whether an association with `peer` is established.
    pub fn is_established(&self, peer: &Hit) -> bool {
        self.assocs.get(peer).is_some_and(|a| a.state == AssocState::Established)
    }

    /// The peer locator currently used for `peer` (tests/mobility).
    pub fn peer_locator(&self, peer: &Hit) -> Option<IpAddr> {
        self.assocs.get(peer).map(|a| a.peer_locator)
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn alloc_timer(&mut self, peer: Hit) -> u64 {
        self.next_timer += 1;
        self.timers.insert(self.next_timer, peer);
        self.next_timer
    }

    fn send_control(
        &mut self,
        api: &mut ShimApi,
        work: SimDuration,
        pkt: &HipPacket,
        src: IpAddr,
        dst: IpAddr,
    ) -> bytes::Bytes {
        let bytes = pkt.encode();
        let delay = api.charge_cpu(work);
        api.send_wire(delay, Packet::new(src, dst, Payload::HipControl(bytes.clone())));
        bytes
    }

    fn arm_rtx(&mut self, api: &mut ShimApi, peer: Hit, bytes: bytes::Bytes, dst: IpAddr, tries: u32) {
        let token = self.alloc_timer(peer);
        let deadline = api.now() + self.config.retransmit_timeout;
        let engine_timer = api.set_timer_cancellable(self.config.retransmit_timeout, token);
        if let Some(a) = self.assocs.get_mut(&peer) {
            if let Some(old) = a.rtx.replace(Rtx { bytes, dst, tries, deadline, token, engine_timer }) {
                api.cancel_timer(old.engine_timer);
            }
        }
    }

    /// Signs a packet's parameter list: appends HMAC (if `hmac_key`) and
    /// SIGNATURE in the right order and returns the finished packet.
    fn seal(
        &self,
        api: &mut ShimApi,
        ptype: PacketType,
        receiver: Hit,
        mut params: Vec<Param>,
        hmac_key: Option<&HmacKey>,
    ) -> HipPacket {
        if let Some(key) = hmac_key {
            let unsealed = HipPacket::new(ptype, self.hit(), receiver, params.clone());
            let covered = unsealed.bytes_before(param_type::HMAC);
            params.push(Param::Hmac(key.mac(&covered)));
        }
        let with_mac = HipPacket::new(ptype, self.hit(), receiver, params.clone());
        let covered = with_mac.bytes_before(param_type::HIP_SIGNATURE);
        let sig = self.identity.sign(&covered, api.rng());
        params.push(Param::Signature(sig));
        HipPacket::new(ptype, self.hit(), receiver, params)
    }

    /// Verifies HMAC (against `hmac_key`) and signature (against `hi`).
    fn verify_sealed(&self, pkt: &HipPacket, hi: &PublicHi, hmac_key: Option<&HmacKey>) -> bool {
        if let Some(key) = hmac_key {
            let Some(mac) = pkt.hmac() else { return false };
            let covered = pkt.bytes_before(param_type::HMAC);
            let expect = key.mac(&covered);
            if !sim_crypto::hmac::verify_mac(&expect, mac) {
                return false;
            }
        }
        let Some(sig) = pkt.signature() else { return false };
        let covered = pkt.bytes_before(param_type::HIP_SIGNATURE);
        hi.verify(&covered, sig)
    }

    /// KEYMAT → (hmac_out, hmac_in, sa_out_keys, sa_in_keys) by role.
    #[allow(clippy::type_complexity)]
    fn derive_keys(
        &self,
        kij: &[u8],
        peer: Hit,
        i: u64,
        j: u64,
        role: Role,
    ) -> (HmacKey, HmacKey, ([u8; 16], [u8; 32]), ([u8; 16], [u8; 32])) {
        let my = self.hit();
        let km = keymat(kij, &my.0, &peer.0, i, j, 160);
        // Control-packet HMAC keys become cached transcripts right here,
        // so every later seal/verify clones midstates instead of
        // re-deriving the key block.
        let hmac_i2r = HmacKey::new(&km[0..32]);
        let hmac_r2i = HmacKey::new(&km[32..64]);
        let enc_i2r: [u8; 16] = km[64..80].try_into().expect("slice");
        let auth_i2r: [u8; 32] = km[80..112].try_into().expect("slice");
        let enc_r2i: [u8; 16] = km[112..128].try_into().expect("slice");
        let auth_r2i: [u8; 32] = km[128..160].try_into().expect("slice");
        match role {
            Role::Initiator => (hmac_i2r, hmac_r2i, (enc_i2r, auth_i2r), (enc_r2i, auth_r2i)),
            Role::Responder => (hmac_r2i, hmac_i2r, (enc_r2i, auth_r2i), (enc_i2r, auth_i2r)),
        }
    }

    /// Builds the precomputed R1 pool.
    fn build_r1_pool(&mut self, api: &mut ShimApi) {
        for idx in 0..self.config.r1_pool_size {
            let dh = DhKeyPair::generate(self.config.dh_group, api.rng());
            let i = api.random_u64();
            let k = self.config.puzzle_k;
            let mut params = vec![
                Param::R1Counter(idx as u64),
                Param::Puzzle { k, lifetime: 120, opaque: idx as u16, i },
                Param::DiffieHellman { group: self.config.dh_group.group_id(), public: dh.public_bytes() },
                Param::HipTransform(vec![1]),
                Param::EspTransform(vec![1]),
                Param::HostId(self.identity.public().to_bytes()),
            ];
            // Signature over the zero-receiver form enables precomputation.
            let unsigned = HipPacket::new(PacketType::R1, self.hit(), Hit::NULL, params.clone());
            let covered = unsigned.bytes_before_with_zero_receiver(param_type::HIP_SIGNATURE);
            params.push(Param::Signature(self.identity.sign(&covered, api.rng())));
            self.active_puzzles.insert(i, idx);
            self.r1_pool.push(R1Entry { params, dh, i, k });
        }
    }

    /// Starts a BEX toward `peer` (queuing `first_packet` if given).
    fn initiate(&mut self, api: &mut ShimApi, peer: Hit, first_packet: Option<Packet>) {
        let Some(info) = self.peers.get(&peer).cloned() else {
            api.trace_state(|| format!("no locator for {peer:?}, dropping"));
            return;
        };
        let dst = match (info.locators.first(), info.via_rvs) {
            (Some(&loc), _) => loc,
            (None, Some(rvs)) => rvs,
            (None, None) => {
                api.trace_state(|| format!("peer {peer:?} unreachable"));
                return;
            }
        };
        let Some(src) = api.local_locator(&dst) else { return };
        let i1 = HipPacket::new(PacketType::I1, self.hit(), peer, vec![]);
        let bytes = self.send_control(api, self.config.costs.hit_lookup, &i1, src, dst);
        self.stats.bex_initiated += 1;
        let mut assoc = Association::new(peer, Role::Initiator, src, dst);
        assoc.state = AssocState::I1Sent;
        assoc.bex_started = api.now();
        if let Some(p) = first_packet {
            assoc.queued.push(p);
        }
        self.assocs.insert(peer, assoc);
        self.arm_rtx(api, peer, bytes, dst, 0);
        api.trace_state(|| format!("BEX: I1 -> {peer:?} via {dst}"));
    }

    // ------------------------------------------------------------------
    // Inbound control handling
    // ------------------------------------------------------------------

    fn on_i1(&mut self, api: &mut ShimApi, pkt: &HipPacket, wire: &Packet) {
        if self.firewall.check(&pkt.sender_hit) == Action::Deny {
            self.stats.drops_firewall += 1;
            api.metrics().add_name("hip.drop.firewall", 1);
            return;
        }
        if self.r1_pool.is_empty() {
            self.build_r1_pool(api);
        }
        // Rotate through the pool.
        let idx = (pkt.sender_hit.0[15] as usize) % self.r1_pool.len();
        let entry = &self.r1_pool[idx];
        let r1 = HipPacket::new(PacketType::R1, self.hit(), pkt.sender_hit, entry.params.clone());
        // Reply toward the FROM locator if the I1 was relayed by an RVS.
        let reply_to = pkt
            .find(|p| match p {
                Param::From(a) => Some(crate::wire::decode_locator(a)),
                _ => None,
            })
            .unwrap_or(wire.src);
        let Some(src) = api.local_locator(&reply_to) else { return };
        // Precomputed: only a table lookup is charged — this is the DoS
        // resilience property (§IV-B).
        self.send_control(api, self.config.costs.hit_lookup, &r1, src, reply_to);
        self.stats.bex_responded += 1;
    }

    fn on_r1(&mut self, api: &mut ShimApi, pkt: &HipPacket, wire: &Packet) {
        let peer = pkt.sender_hit;
        let Some(assoc) = self.assocs.get(&peer) else { return };
        if assoc.state != AssocState::I1Sent {
            return;
        }
        // Validate the host identity and signature.
        let Some(hi_bytes) = pkt.host_id() else { return };
        let Some(hi) = PublicHi::from_bytes(hi_bytes) else { return };
        if hi.hit() != peer {
            self.stats.drops_auth += 1;
            return;
        }
        let Some(sig) = pkt.signature() else { return };
        let covered = pkt.bytes_before_with_zero_receiver(param_type::HIP_SIGNATURE);
        if !hi.verify(&covered, sig) {
            self.stats.drops_auth += 1;
            return;
        }
        let Some((k, _lifetime, opaque, i)) = pkt.puzzle() else { return };
        if k > puzzle::MAX_K {
            self.stats.drops_auth += 1;
            return;
        }
        let Some((group_id, peer_dh_pub)) = pkt.diffie_hellman() else { return };
        let Some(group) = DhGroup::from_group_id(group_id) else { return };

        // Solve the puzzle (really).
        let j0 = api.random_u64();
        let (j, attempts) = puzzle::solve(i, k, &self.hit(), &peer, j0);
        api.metrics().observe_name("hip.puzzle.attempts", attempts);

        // DH: generate our ephemeral pair and compute the shared secret.
        let dh = DhKeyPair::generate(group, api.rng());
        let Some(kij) = dh.shared_secret(peer_dh_pub) else {
            self.stats.drops_auth += 1;
            return;
        };
        let (hmac_out, hmac_in, out_keys, in_keys) =
            self.derive_keys(&kij, peer, i, j, Role::Initiator);

        let local_spi = (api.random_u64() as u32) | 1;
        let params = vec![
            Param::Solution { k, opaque, i, j },
            Param::DiffieHellman { group: group_id, public: dh.public_bytes() },
            Param::HipTransform(vec![1]),
            Param::EspTransform(vec![1]),
            Param::EspInfo { old_spi: 0, new_spi: local_spi },
            Param::HostId(self.identity.public().to_bytes()),
        ];
        let i2 = self.seal(api, PacketType::I2, peer, params, Some(&hmac_out));

        // Total control-plane CPU: R1 verify + puzzle + 2 DH ops + I2 sign.
        let costs = &self.config.costs;
        let work = costs.verify(hi.algorithm())
            + costs.puzzle_attempts(attempts)
            + costs.dh_compute
            + costs.dh_compute
            + costs.sign(self.identity.algorithm());

        // R1 may arrive from a different locator than the I1 went to
        // (rendezvous case): follow the wire source.
        let peer_locator = wire.src;
        let Some(src) = api.local_locator(&peer_locator) else { return };
        let bytes = self.send_control(api, work, &i2, src, peer_locator);

        let my_hit = self.hit();
        let assoc = self.assocs.get_mut(&peer).expect("checked above");
        assoc.state = AssocState::I2Sent;
        assoc.peer_locator = peer_locator;
        assoc.local_locator = src;
        assoc.puzzle_i = i;
        assoc.puzzle_j = j;
        assoc.hmac_out = hmac_out;
        assoc.hmac_in = hmac_in;
        assoc.local_spi = local_spi;
        assoc.peer_hi = Some(hi);
        assoc.dh = Some(dh);
        // Inbound SA can be installed now (peer will use our SPI).
        assoc.sa_in = Some(EspSa::new(local_spi, in_keys.0, in_keys.1, peer.to_ip(), my_hit.to_ip()));
        if api.metrics().is_enabled() {
            assoc.ctr_esp_in = Some(api.metrics().counter(&format!("esp.rx{{spi={local_spi:08x}}}")));
        }
        // Outbound SA waits for the peer's SPI in R2; stash keys in the
        // assoc via a placeholder SA created on R2 using derived keys.
        assoc.pending_out_keys = Some(out_keys);
        self.spi_in.insert(local_spi, peer);
        self.arm_rtx(api, peer, bytes, peer_locator, 0);
        api.trace_state(|| format!("BEX: R1 ok, I2 -> {peer:?} (puzzle k={k}, {attempts} attempts)"));
    }

    fn on_i2(&mut self, api: &mut ShimApi, pkt: &HipPacket, wire: &Packet) {
        let peer = pkt.sender_hit;
        if self.firewall.check(&peer) == Action::Deny {
            self.stats.drops_firewall += 1;
            api.metrics().add_name("hip.drop.firewall", 1);
            return;
        }
        let Some((k, opaque, i, j)) = pkt.solution() else { return };
        let _ = opaque;
        // The puzzle must be one we issued (pool membership) and solved.
        let Some(&pool_idx) = self.active_puzzles.get(&i) else {
            self.stats.drops_auth += 1;
            return;
        };
        if self.r1_pool[pool_idx].k != k || !puzzle::verify(i, k, &peer, &self.hit(), j) {
            self.stats.drops_auth += 1;
            return;
        }
        let Some(hi_bytes) = pkt.host_id() else { return };
        let Some(hi) = PublicHi::from_bytes(hi_bytes) else { return };
        if hi.hit() != peer {
            self.stats.drops_auth += 1;
            return;
        }
        let Some((_group_id, peer_dh_pub)) = pkt.diffie_hellman() else { return };
        let Some(kij) = self.r1_pool[pool_idx].dh.shared_secret(peer_dh_pub) else {
            self.stats.drops_auth += 1;
            return;
        };
        let (hmac_out, hmac_in, out_keys, in_keys) =
            self.derive_keys(&kij, peer, i, j, Role::Responder);
        // HMAC then signature.
        if !self.verify_sealed(pkt, &hi, Some(&hmac_in)) {
            self.stats.drops_auth += 1;
            return;
        }
        let Some((_, peer_spi)) = pkt.esp_info() else { return };

        let local_spi = (api.random_u64() as u32) | 1;
        let params = vec![Param::EspInfo { old_spi: 0, new_spi: local_spi }];
        let r2 = self.seal(api, PacketType::R2, peer, params, Some(&hmac_out));

        let costs = &self.config.costs;
        let work = costs.hash_attempt // puzzle verification: one hash
            + costs.dh_compute
            + costs.verify(hi.algorithm())
            + costs.sign(self.identity.algorithm());
        let peer_locator = wire.src;
        let Some(src) = api.local_locator(&peer_locator) else { return };
        self.send_control(api, work, &r2, src, peer_locator);

        let mut assoc = Association::new(peer, Role::Responder, src, peer_locator);
        assoc.state = AssocState::Established;
        assoc.puzzle_i = i;
        assoc.puzzle_j = j;
        assoc.hmac_out = hmac_out;
        assoc.hmac_in = hmac_in;
        assoc.local_spi = local_spi;
        assoc.peer_hi = Some(hi);
        assoc.sa_in = Some(EspSa::new(local_spi, in_keys.0, in_keys.1, peer.to_ip(), self.hit().to_ip()));
        assoc.sa_out = Some(EspSa::new(peer_spi, out_keys.0, out_keys.1, self.hit().to_ip(), peer.to_ip()));
        if api.metrics().is_enabled() {
            assoc.ctr_esp_in = Some(api.metrics().counter(&format!("esp.rx{{spi={local_spi:08x}}}")));
            assoc.ctr_esp_out = Some(api.metrics().counter(&format!("esp.tx{{spi={peer_spi:08x}}}")));
        }
        self.spi_in.insert(local_spi, peer);
        // Make sure the peer has an LSI for legacy traffic.
        self.lsi.lsi_for(peer);
        self.peers.entry(peer).or_insert_with(|| PeerInfo { locators: vec![peer_locator], via_rvs: None });
        self.assocs.insert(peer, assoc);
        self.stats.bex_completed += 1;
        api.trace_state(|| format!("BEX: established (responder) with {peer:?}"));
    }

    fn on_r2(&mut self, api: &mut ShimApi, pkt: &HipPacket, _wire: &Packet) {
        let peer = pkt.sender_hit;
        let Some(assoc) = self.assocs.get_mut(&peer) else { return };
        if assoc.state != AssocState::I2Sent {
            return;
        }
        let Some(hi) = assoc.peer_hi.clone() else { return };
        let hmac_in = assoc.hmac_in.clone();
        if !self.verify_sealed(pkt, &hi, Some(&hmac_in)) {
            self.stats.drops_auth += 1;
            return;
        }
        let Some((_, peer_spi)) = pkt.esp_info() else { return };
        let costs = self.config.costs;
        let work = costs.verify(hi.algorithm());
        let delay = api.charge_cpu(work);

        let my_hit = self.hit();
        let assoc = self.assocs.get_mut(&peer).expect("present");
        let out_keys = assoc.pending_out_keys.take().expect("keys derived at I2");
        assoc.sa_out = Some(EspSa::new(peer_spi, out_keys.0, out_keys.1, my_hit.to_ip(), peer.to_ip()));
        assoc.state = AssocState::Established;
        if let Some(rtx) = assoc.rtx.take() {
            api.cancel_timer(rtx.engine_timer);
        }
        // The full base exchange span, I1 sent → R2 verified.
        let bex_ns = api.now().as_nanos().saturating_sub(assoc.bex_started.as_nanos());
        if api.metrics().is_enabled() {
            api.metrics().observe_name("hip.bex", bex_ns);
            assoc.ctr_esp_out = Some(api.metrics().counter(&format!("esp.tx{{spi={peer_spi:08x}}}")));
        }
        self.lsi.lsi_for(peer);
        self.stats.bex_completed += 1;
        api.trace_state(|| format!("BEX: established (initiator) with {peer:?}"));
        // Flush queued upper packets through the new SA.
        let queued = std::mem::take(&mut self.assocs.get_mut(&peer).expect("present").queued);
        for pkt in queued {
            self.encap_and_send(api, peer, pkt, delay);
        }
    }

    fn on_update(&mut self, api: &mut ShimApi, pkt: &HipPacket, wire: &Packet) {
        let peer = pkt.sender_hit;
        let Some(assoc) = self.assocs.get(&peer) else { return };
        if assoc.state != AssocState::Established {
            return;
        }
        let Some(hi) = assoc.peer_hi.clone() else { return };
        let hmac_in = assoc.hmac_in.clone();
        if !self.verify_sealed(pkt, &hi, Some(&hmac_in)) {
            self.stats.drops_auth += 1;
            return;
        }
        let verify_cost = self.config.costs.verify(hi.algorithm());
        let sign_cost = self.config.costs.sign(self.identity.algorithm());

        let locators = pkt.locators();
        let seq = pkt.seq();
        let ack = pkt.ack().map(<[u32]>::to_vec);
        let echo_req = pkt.find(|p| match p {
            Param::EchoRequest(n) => Some(*n),
            _ => None,
        });
        let echo_resp = pkt.find(|p| match p {
            Param::EchoResponse(n) => Some(*n),
            _ => None,
        });

        // Case 1: peer announces a new locator (it moved).
        if let (Some(new_loc), Some(peer_seq)) = (locators.first().copied(), seq) {
            let nonce = api.random_u64();
            let assoc = self.assocs.get_mut(&peer).expect("present");
            assoc.update_seq += 1;
            let our_seq = assoc.update_seq;
            assoc.pending_verify = Some(PendingVerify { nonce, new_locator: new_loc, seq_ours: our_seq });
            let hmac_out = assoc.hmac_out.clone();
            let params = vec![Param::Seq(our_seq), Param::Ack(vec![peer_seq]), Param::EchoRequest(nonce)];
            let reply = self.seal(api, PacketType::Update, peer, params, Some(&hmac_out));
            // Address verification: the echo goes to the *new* locator.
            let Some(src) = api.local_locator(&new_loc) else { return };
            self.send_control(api, verify_cost + sign_cost, &reply, src, new_loc);
            api.trace_state(|| format!("UPDATE: {peer:?} moved to {new_loc}, verifying"));
            return;
        }

        // Case 2: we moved; the peer echoes — answer from the new address.
        if let (Some(nonce), Some(peer_seq)) = (echo_req, seq) {
            let (hmac_out, dst, src) = {
                let assoc = self.assocs.get_mut(&peer).expect("present");
                if ack.as_deref().is_some_and(|a| a.contains(&assoc.update_seq)) {
                    if let Some(rtx) = assoc.rtx.take() {
                        api.cancel_timer(rtx.engine_timer);
                    }
                }
                // Return routability: the response must leave from the
                // locator we announced, proving we are reachable there.
                (assoc.hmac_out.clone(), assoc.peer_locator, assoc.local_locator)
            };
            let params = vec![Param::Ack(vec![peer_seq]), Param::EchoResponse(nonce)];
            let reply = self.seal(api, PacketType::Update, peer, params, Some(&hmac_out));
            self.send_control(api, verify_cost + sign_cost, &reply, src, dst);
            let assoc = self.assocs.get_mut(&peer).expect("present");
            assoc.update_in_flight = false;
            self.stats.updates_completed += 1;
            return;
        }

        // Case 3: echo response completes our verification of their move.
        if let Some(nonce) = echo_resp {
            let assoc = self.assocs.get_mut(&peer).expect("present");
            if let Some(pv) = &assoc.pending_verify {
                if pv.nonce == nonce && wire.src == pv.new_locator {
                    assoc.peer_locator = pv.new_locator;
                    if ack.as_deref().is_some_and(|a| a.contains(&pv.seq_ours)) {
                        assoc.pending_verify = None;
                    }
                    api.charge_cpu(verify_cost);
                    self.stats.updates_completed += 1;
                    api.trace_state(|| format!("UPDATE: verified {peer:?} at {}", wire.src));
                }
            }
        }
    }

    fn on_close(&mut self, api: &mut ShimApi, pkt: &HipPacket, wire: &Packet) {
        let peer = pkt.sender_hit;
        let Some(assoc) = self.assocs.get(&peer) else { return };
        let Some(hi) = assoc.peer_hi.clone() else { return };
        let hmac_in = assoc.hmac_in.clone();
        if !self.verify_sealed(pkt, &hi, Some(&hmac_in)) {
            self.stats.drops_auth += 1;
            return;
        }
        let nonce = pkt.find(|p| match p {
            Param::EchoRequest(n) => Some(*n),
            _ => None,
        });
        let hmac_out = assoc.hmac_out.clone();
        let mut params = Vec::new();
        if let Some(n) = nonce {
            params.push(Param::EchoResponse(n));
        }
        let ack = self.seal(api, PacketType::CloseAck, peer, params, Some(&hmac_out));
        let dst = wire.src;
        let Some(src) = api.local_locator(&dst) else { return };
        let costs = self.config.costs;
        self.send_control(api, costs.verify(hi.algorithm()) + costs.sign(self.identity.algorithm()), &ack, src, dst);
        if let Some(rtx) = self.teardown(&peer) {
            api.cancel_timer(rtx.engine_timer);
        }
        self.stats.closes += 1;
    }

    fn on_close_ack(&mut self, api: &mut ShimApi, pkt: &HipPacket) {
        let peer = pkt.sender_hit;
        let Some(assoc) = self.assocs.get(&peer) else { return };
        if assoc.state != AssocState::Closing {
            return;
        }
        let expected = assoc.close_nonce;
        let got = pkt.find(|p| match p {
            Param::EchoResponse(n) => Some(*n),
            _ => None,
        });
        if expected.is_some() && expected == got {
            if let Some(rtx) = self.teardown(&peer) {
                api.cancel_timer(rtx.engine_timer);
            }
            self.stats.closes += 1;
        }
    }

    /// Removes the association; returns its pending retransmission (if
    /// any) so the caller can cancel the engine timer.
    fn teardown(&mut self, peer: &Hit) -> Option<Rtx> {
        if let Some(mut a) = self.assocs.remove(peer) {
            self.spi_in.remove(&a.local_spi);
            a.rtx.take()
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    fn encap_and_send(&mut self, api: &mut ShimApi, peer: Hit, pkt: Packet, extra_delay: SimDuration) {
        if matches!(&pkt.payload, Payload::Tcp(seg) if seg.gso_mss > 0) {
            return self.encap_and_send_gso(api, peer, pkt, extra_delay);
        }
        let mode = if netsim::addr::is_lsi(&pkt.dst) { InnerMode::Lsi } else { InnerMode::Hit };
        let costs = self.config.costs;
        let Some(assoc) = self.assocs.get_mut(&peer) else { return };
        let Some(sa) = assoc.sa_out.as_mut() else {
            self.stats.drops_no_sa += 1;
            return;
        };
        let payload_len = pkt.payload.wire_len();
        let iv_seed = api.random_u64();
        let esp = sa.encapsulate(mode, &pkt.payload, iv_seed);
        let wire = Packet::new(assoc.local_locator, assoc.peer_locator, Payload::Esp(esp));
        let mut work = costs.symmetric(payload_len) + costs.hit_lookup;
        if mode == InnerMode::Lsi {
            work += costs.lsi_translation;
        }
        let delay = api.charge_cpu(work) + extra_delay;
        self.stats.esp_out += 1;
        self.stats.esp_bytes_out += payload_len as u64;
        if let Some(c) = assoc.ctr_esp_out {
            api.metrics().add(c, 1);
        }
        if api.metrics().is_enabled() {
            api.metrics().observe_name("esp.encrypt", work.as_nanos());
            api.metrics().observe_name("esp.out_bytes", payload_len as u64);
        }
        api.send_wire(delay, wire);
    }

    /// GSO fast path for TCP super-segments: one AES-CBC/HMAC pass over
    /// the whole burst, while everything the rest of the sim can observe
    /// — RNG draws, per-frame CPU charges, stats, metrics, and one wire
    /// packet per MTU frame with unchanged lengths — matches what
    /// per-MSS [`Self::encap_and_send`] calls would have produced.
    fn encap_and_send_gso(&mut self, api: &mut ShimApi, peer: Hit, pkt: Packet, extra_delay: SimDuration) {
        let Payload::Tcp(seg) = &pkt.payload else { return };
        let frames = netsim::packet::split_gso(seg);
        let mode = if netsim::addr::is_lsi(&pkt.dst) { InnerMode::Lsi } else { InnerMode::Hit };
        let costs = self.config.costs;
        let Some(assoc) = self.assocs.get_mut(&peer) else { return };
        let Some(sa) = assoc.sa_out.as_mut() else {
            // Unbatched mode would have seen one drop per frame.
            self.stats.drops_no_sa += frames.len() as u64;
            return;
        };
        // Unbatched sends draw one IV seed per frame; draw them all (the
        // batch uses the first) so the RNG stream stays identical.
        let iv_seed = api.random_u64();
        for _ in 1..frames.len() {
            let _ = api.random_u64();
        }
        let payloads: Vec<Payload> = frames.into_iter().map(Payload::Tcp).collect();
        let esps = sa.encapsulate_gso(mode, &payloads, iv_seed);
        let (local, remote) = (assoc.local_locator, assoc.peer_locator);
        let ctr = assoc.ctr_esp_out;
        for (payload, esp) in payloads.iter().zip(esps) {
            let payload_len = payload.wire_len();
            let mut work = costs.symmetric(payload_len) + costs.hit_lookup;
            if mode == InnerMode::Lsi {
                work += costs.lsi_translation;
            }
            let delay = api.charge_cpu(work) + extra_delay;
            self.stats.esp_out += 1;
            self.stats.esp_bytes_out += payload_len as u64;
            if let Some(c) = ctr {
                api.metrics().add(c, 1);
            }
            if api.metrics().is_enabled() {
                api.metrics().observe_name("esp.encrypt", work.as_nanos());
                api.metrics().observe_name("esp.out_bytes", payload_len as u64);
            }
            api.send_wire(delay, Packet::new(local, remote, Payload::Esp(esp)));
        }
    }

    fn on_esp(&mut self, api: &mut ShimApi, esp: &netsim::packet::EspPacket, wire: &Packet) {
        let Some(&peer) = self.spi_in.get(&esp.spi) else {
            self.stats.drops_no_sa += 1;
            // The sender believes this SPI is live — most likely we
            // crashed and lost the SA. Tell it so it can re-run BEX
            // instead of blackholing ESP forever; at most one NOTIFY per
            // SPI per sim-second so a blast of stale ESP costs one reply.
            self.notify_stale_spi(api, esp.spi, wire.src);
            return;
        };
        if self.firewall.check(&peer) == Action::Deny {
            self.stats.drops_firewall += 1;
            api.metrics().add_name("hip.drop.firewall", 1);
            return;
        }
        let costs = self.config.costs;
        let my_lsi = self.my_lsi;
        let peer_lsi = self.lsi.lsi_for(peer);
        let Some(assoc) = self.assocs.get_mut(&peer) else { return };
        let Some(sa) = assoc.sa_in.as_mut() else {
            self.stats.drops_no_sa += 1;
            return;
        };
        match sa.decapsulate(esp) {
            Ok((mode, payload)) => {
                let len = payload.wire_len();
                let inner = crate::esp::rebuild_inner(
                    sa,
                    mode,
                    payload,
                    IpAddr::V4(peer_lsi),
                    IpAddr::V4(my_lsi),
                );
                let mut work = costs.symmetric(len) + costs.hit_lookup;
                if mode == InnerMode::Lsi {
                    work += costs.lsi_translation;
                }
                let delay = api.charge_cpu(work);
                self.stats.esp_in += 1;
                self.stats.esp_bytes_in += len as u64;
                if let Some(c) = assoc.ctr_esp_in {
                    api.metrics().add(c, 1);
                }
                if api.metrics().is_enabled() {
                    api.metrics().observe_name("esp.decrypt", work.as_nanos());
                    api.metrics().observe_name("esp.in_bytes", len as u64);
                }
                api.deliver_upper(delay, inner);
            }
            Err(EspError::Replay) => {
                self.stats.drops_replay += 1;
                api.metrics().add_name("esp.drop.replay", 1);
            }
            Err(_) => {
                self.stats.drops_auth += 1;
                api.metrics().add_name("esp.drop.auth", 1);
            }
        }
    }

    /// Sends NOTIFY(stale SPI) to `dst`: ESP arrived for an SPI we have
    /// no SA for. Rate-limited to one per SPI per sim-second.
    fn notify_stale_spi(&mut self, api: &mut ShimApi, spi: u32, dst: IpAddr) {
        let now = api.now();
        if self
            .notify_limiter
            .get(&spi)
            .is_some_and(|t| now.since(*t) < SimDuration::from_secs(1))
        {
            return;
        }
        self.notify_limiter.insert(spi, now);
        let Some(src) = api.local_locator(&dst) else { return };
        // Unsigned by necessity: we lost the keys along with the SA. The
        // receiver applies its own off-path checks before acting.
        let notify = HipPacket::new(
            PacketType::Notify,
            self.hit(),
            Hit::NULL,
            vec![Param::EspInfo { old_spi: spi, new_spi: 0 }],
        );
        self.send_control(api, self.config.costs.hit_lookup, &notify, src, dst);
        self.stats.notifies_sent += 1;
        api.metrics().add_name("hip.notify.stale_spi", 1);
        api.trace_state(|| format!("NOTIFY: stale SPI {spi:08x} -> {dst}"));
    }

    /// Handles NOTIFY(stale SPI): the peer cannot decrypt what we send
    /// on `old_spi` — it crashed and lost its SAs. The NOTIFY is
    /// unauthenticated (the peer has no keys anymore), so it is only
    /// honored if it arrives from the exact locator of an established
    /// association *and* echoes the SPI we are currently sending on —
    /// two values an off-path attacker does not know. Tear the
    /// association down and re-run the base exchange.
    fn on_notify(&mut self, api: &mut ShimApi, pkt: &HipPacket, wire: &Packet) {
        let Some((old_spi, _)) = pkt.esp_info() else { return };
        let peer = self.assocs.iter().find_map(|(h, a)| {
            (a.state == AssocState::Established
                && a.peer_locator == wire.src
                && a.sa_out.as_ref().is_some_and(|sa| sa.spi == old_spi))
            .then_some(*h)
        });
        let Some(peer) = peer else { return };
        if let Some(rtx) = self.teardown(&peer) {
            api.cancel_timer(rtx.engine_timer);
        }
        self.stats.stale_spi_rebex += 1;
        api.metrics().add_name("hip.rebex.stale_spi", 1);
        api.trace_state(|| {
            format!("NOTIFY: peer {peer:?} lost SPI {old_spi:08x}, re-running BEX")
        });
        self.initiate(api, peer, None);
    }

    // ------------------------------------------------------------------
    // Public control operations
    // ------------------------------------------------------------------

    /// Announces a new local locator to all established peers (VM
    /// migration / mobility). Called by the cloud layer after moving the
    /// host's interface.
    pub fn relocate(&mut self, api: &mut ShimApi, new_locator: IpAddr) {
        let peers: Vec<Hit> =
            self.assocs.iter().filter(|(_, a)| a.state == AssocState::Established).map(|(h, _)| *h).collect();
        for peer in peers {
            let (hmac_out, dst, seq) = {
                let assoc = self.assocs.get_mut(&peer).expect("present");
                assoc.local_locator = new_locator;
                assoc.update_seq += 1;
                assoc.update_in_flight = true;
                (assoc.hmac_out.clone(), assoc.peer_locator, assoc.update_seq)
            };
            let params = vec![
                Param::Locator(vec![encode_locator(&new_locator)]),
                Param::Seq(seq),
            ];
            let update = self.seal(api, PacketType::Update, peer, params, Some(&hmac_out));
            let work = self.config.costs.sign(self.identity.algorithm());
            let bytes = self.send_control(api, work, &update, new_locator, dst);
            self.stats.updates_sent += 1;
            self.arm_rtx(api, peer, bytes, dst, 0);
        }
    }

    /// Gracefully closes the association with `peer`.
    pub fn close(&mut self, api: &mut ShimApi, peer: Hit) {
        let Some(assoc) = self.assocs.get_mut(&peer) else { return };
        if assoc.state != AssocState::Established {
            return;
        }
        let nonce = api.random_u64();
        assoc.close_nonce = Some(nonce);
        assoc.state = AssocState::Closing;
        let hmac_out = assoc.hmac_out.clone();
        let dst = assoc.peer_locator;
        let src = assoc.local_locator;
        let close = self.seal(
            api,
            PacketType::Close,
            peer,
            vec![Param::EchoRequest(nonce)],
            Some(&hmac_out),
        );
        let work = self.config.costs.sign(self.identity.algorithm());
        self.send_control(api, work, &close, src, dst);
    }
}

impl Association {
    fn new(peer: Hit, role: Role, local_locator: IpAddr, peer_locator: IpAddr) -> Self {
        Association {
            peer,
            state: AssocState::I1Sent,
            role,
            local_locator,
            peer_locator,
            dh: None,
            puzzle_i: 0,
            puzzle_j: 0,
            // Placeholders; overwritten when KEYMAT is derived (the
            // state machine never MACs before that).
            hmac_out: HmacKey::new(&[]),
            hmac_in: HmacKey::new(&[]),
            sa_out: None,
            sa_in: None,
            local_spi: 0,
            queued: Vec::new(),
            rtx: None,
            update_seq: 0,
            update_in_flight: false,
            pending_verify: None,
            close_nonce: None,
            peer_hi: None,
            pending_out_keys: None,
            bex_started: SimTime::ZERO,
            ctr_esp_out: None,
            ctr_esp_in: None,
        }
    }
}

impl L35Shim for HipShim {
    fn start(&mut self, api: &mut ShimApi) {
        api.register_virtual_addr(self.hit().to_ip());
        api.register_virtual_addr(IpAddr::V4(self.my_lsi));
        self.build_r1_pool(api);
        // Register with the rendezvous server, if configured.
        if let Some(rvs) = self.config.rvs {
            let Some(src) = api.local_locator(&rvs) else { return };
            // Monotonic SEQ: the RVS rejects any replayed registration
            // whose sequence does not exceed the last accepted one.
            self.reg_seq += 1;
            let reg_seq = self.reg_seq;
            let params = vec![
                Param::HostId(self.identity.public().to_bytes()),
                Param::Locator(vec![encode_locator(&src)]),
                Param::Seq(reg_seq),
            ];
            let reg = self.seal(api, PacketType::RegRequest, Hit::NULL, params, None);
            let work = self.config.costs.sign(self.identity.algorithm());
            self.send_control(api, work, &reg, src, rvs);
        }
    }

    fn handles_dst(&self, dst: &IpAddr) -> bool {
        netsim::addr::is_identity(dst)
    }

    fn outbound(&mut self, pkt: Packet, api: &mut ShimApi) {
        // Resolve the destination identity to a peer HIT.
        let peer = if let Some(hit) = Hit::from_ip(&pkt.dst) {
            hit
        } else if let IpAddr::V4(lsi) = pkt.dst {
            match self.lsi.hit_of(&lsi) {
                Some(h) => h,
                None => {
                    api.trace_state(|| format!("unknown LSI {lsi}"));
                    return;
                }
            }
        } else {
            return;
        };
        match self.assocs.get(&peer).map(|a| a.state) {
            Some(AssocState::Established) => {
                self.encap_and_send(api, peer, pkt, SimDuration::ZERO)
            }
            Some(_) => {
                if let Some(a) = self.assocs.get_mut(&peer) {
                    a.queued.push(pkt);
                }
            }
            None => self.initiate(api, peer, Some(pkt)),
        }
    }

    fn inbound(&mut self, pkt: Packet, api: &mut ShimApi) {
        match &pkt.payload {
            Payload::Esp(esp) => {
                let esp = esp.clone();
                self.on_esp(api, &esp, &pkt);
            }
            Payload::HipControl(bytes) => {
                let Some(hip) = HipPacket::decode(bytes) else {
                    self.stats.drops_auth += 1;
                    return;
                };
                // Control packets addressed to another HIT are not ours.
                if !hip.receiver_hit.is_null() && hip.receiver_hit != self.hit() {
                    return;
                }
                match hip.packet_type {
                    PacketType::I1 => self.on_i1(api, &hip, &pkt),
                    PacketType::R1 => self.on_r1(api, &hip, &pkt),
                    PacketType::I2 => self.on_i2(api, &hip, &pkt),
                    PacketType::R2 => self.on_r2(api, &hip, &pkt),
                    PacketType::Update => self.on_update(api, &hip, &pkt),
                    PacketType::Close => self.on_close(api, &hip, &pkt),
                    PacketType::CloseAck => self.on_close_ack(api, &hip),
                    PacketType::RegResponse => {
                        self.rvs_registered = true;
                    }
                    PacketType::Notify => self.on_notify(api, &hip, &pkt),
                    PacketType::RegRequest => {}
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut ShimApi) {
        let Some(peer) = self.timers.remove(&token) else { return };
        let now = api.now();
        let max = self.config.max_retransmits;
        let Some(assoc) = self.assocs.get_mut(&peer) else { return };
        let Some(rtx) = &assoc.rtx else { return };
        if rtx.token != token || now < rtx.deadline {
            return; // superseded
        }
        if assoc.state == AssocState::Established && !assoc.update_in_flight {
            assoc.rtx = None;
            return;
        }
        if rtx.tries >= max {
            // Give up.
            let state = assoc.state;
            self.stats.bex_failed += u64::from(state != AssocState::Established);
            // The fired timer is this association's own (token matched
            // above), so teardown's pending Rtx needs no cancel.
            self.teardown(&peer);
            api.trace_state(|| format!("BEX/UPDATE with {peer:?} failed after {max} retries"));
            api.metrics().add_name("hip.bex.exhausted", 1);
            // The peer is unreachable: fail TCP connections addressed to
            // its HIT or LSI so applications see an explicit connect
            // error instead of hanging on a silently dead exchange.
            let lsi = self.lsi.lsi_for(peer);
            api.notify_unreachable(peer.to_ip());
            api.notify_unreachable(IpAddr::V4(lsi));
            return;
        }
        let bytes = rtx.bytes.clone();
        let dst = rtx.dst;
        let tries = rtx.tries + 1;
        let src = assoc.local_locator;
        self.stats.retransmissions += 1;
        api.send_wire(SimDuration::ZERO, Packet::new(src, dst, Payload::HipControl(bytes.clone())));
        self.arm_rtx(api, peer, bytes, dst, tries);
    }

    fn on_crash(&mut self, api: &mut ShimApi) {
        // Lose all runtime protocol state: associations, SAs, the R1
        // pool and outstanding retransmissions. Identity, the peer
        // directory and LSI mappings survive — they model configuration
        // baked into the image, not state. `start` rebuilds the R1 pool
        // and re-registers with the RVS (reg_seq stays monotonic so the
        // replay guard holds across the restart).
        for a in self.assocs.values_mut() {
            if let Some(rtx) = a.rtx.take() {
                api.cancel_timer(rtx.engine_timer);
            }
        }
        self.assocs.clear();
        self.spi_in.clear();
        self.r1_pool.clear();
        self.active_puzzles.clear();
        self.timers.clear();
        self.notify_limiter.clear();
        self.rvs_registered = false;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
