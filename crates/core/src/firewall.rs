//! HIT-based access control.
//!
//! The paper (§IV-A) points out that with HIP, "tenant-to-tenant
//! authentication can be achieved transparently from applications by
//! employing access-control mechanisms operating at the system level —
//! for instance, all Linux-based systems support hosts.allow and
//! hosts.deny files". This module is that mechanism: first-match rules
//! over cryptographically-verified HITs, enforced by the shim before any
//! BEX state is created and on every inbound data packet.

use crate::identity::Hit;

/// Permit or refuse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Permit the exchange/packet.
    Allow,
    /// Refuse it (counted in [`Firewall::denied`]).
    Deny,
}

/// A single rule; `None` fields are wildcards.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Match on the remote peer's HIT.
    pub peer: Option<Hit>,
    /// What to do on a match.
    pub action: Action,
}

/// A first-match-wins rule chain with a default policy.
#[derive(Clone, Debug)]
pub struct Firewall {
    rules: Vec<Rule>,
    default: Action,
    /// Packets/exchanges denied (diagnostics).
    pub denied: u64,
}

impl Firewall {
    /// An allow-everything firewall (the default posture).
    pub fn allow_all() -> Self {
        Firewall { rules: Vec::new(), default: Action::Allow, denied: 0 }
    }

    /// A deny-by-default firewall: only explicitly allowed HITs may talk
    /// (the hosts.allow model for tenant isolation).
    pub fn deny_by_default() -> Self {
        Firewall { rules: Vec::new(), default: Action::Deny, denied: 0 }
    }

    /// Appends an allow rule for `peer`.
    pub fn allow(&mut self, peer: Hit) -> &mut Self {
        self.rules.push(Rule { peer: Some(peer), action: Action::Allow });
        self
    }

    /// Appends a deny rule for `peer`.
    pub fn deny(&mut self, peer: Hit) -> &mut Self {
        self.rules.push(Rule { peer: Some(peer), action: Action::Deny });
        self
    }

    /// Evaluates the chain for a peer HIT, counting denials.
    pub fn check(&mut self, peer: &Hit) -> Action {
        let action = self
            .rules
            .iter()
            .find(|r| r.peer.is_none() || r.peer.as_ref() == Some(peer))
            .map(|r| r.action)
            .unwrap_or(self.default);
        if action == Action::Deny {
            self.denied += 1;
        }
        action
    }

    /// Evaluation without mutating counters (for tests/diagnostics).
    pub fn peek(&self, peer: &Hit) -> Action {
        self.rules
            .iter()
            .find(|r| r.peer.is_none() || r.peer.as_ref() == Some(peer))
            .map(|r| r.action)
            .unwrap_or(self.default)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl Default for Firewall {
    fn default() -> Self {
        Firewall::allow_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(b: u8) -> Hit {
        Hit([b; 16])
    }

    #[test]
    fn allow_all_default() {
        let mut fw = Firewall::allow_all();
        assert_eq!(fw.check(&hit(1)), Action::Allow);
        assert_eq!(fw.denied, 0);
    }

    #[test]
    fn deny_by_default_blocks_unknown() {
        let mut fw = Firewall::deny_by_default();
        fw.allow(hit(1));
        assert_eq!(fw.check(&hit(1)), Action::Allow);
        assert_eq!(fw.check(&hit(2)), Action::Deny);
        assert_eq!(fw.denied, 1);
    }

    #[test]
    fn first_match_wins() {
        let mut fw = Firewall::allow_all();
        fw.deny(hit(3));
        fw.allow(hit(3)); // shadowed by the deny above
        assert_eq!(fw.check(&hit(3)), Action::Deny);
    }

    #[test]
    fn peek_does_not_count() {
        let mut fw = Firewall::deny_by_default();
        assert_eq!(fw.peek(&hit(9)), Action::Deny);
        assert_eq!(fw.denied, 0);
        fw.check(&hit(9));
        assert_eq!(fw.denied, 1);
    }
}
