//! # hip-core
//!
//! The Host Identity Protocol: the primary contribution of *"Secure
//! Networking for Virtual Machines in the Cloud"* (Komu et al., CLUSTER
//! 2012), implemented as a layer-3.5 shim for `netsim` hosts.
//!
//! - [`identity`] — Host Identifiers (RSA/ECDSA), ORCHID HITs, LSIs
//! - [`wire`] — control-packet TLV wire format (RFC 5201 §5)
//! - [`puzzle`] — the DoS-throttling computational puzzle
//! - [`shim`] — the protocol engine: base exchange, ESP SAs, UPDATE
//!   mobility, CLOSE, rendezvous registration
//! - [`esp`] — the ESP-BEET data plane with real AES/HMAC and
//!   anti-replay
//! - [`firewall`] — HIT-based access control (the hosts.allow model)
//! - [`midbox`] — the hypervisor-resident HIP middlebox firewall
//! - [`rendezvous`] — the RVS middlebox relaying I1s
//! - [`dns_ext`] — HIP resource records (RFC 5205)
//! - [`cost`] — the calibrated crypto cost model shared with `tls-sim`
//!
//! ## Quick start
//!
//! Install a [`shim::HipShim`] on two `netsim` hosts, `add_peer` each
//! other's HIT + locator, and have an application connect to the peer's
//! HIT (or LSI): the shim runs the base exchange and tunnels the TCP
//! stream through ESP transparently. See `examples/quickstart.rs` at
//! the workspace root.

#![warn(missing_docs)]

pub mod cost;
pub mod dns_ext;
pub mod esp;
pub mod firewall;
pub mod identity;
pub mod midbox;
pub mod puzzle;
pub mod rendezvous;
pub mod shim;
pub mod wire;

pub use cost::CostModel;
pub use esp::{EspError, EspSa, InnerMode};
pub use firewall::{Action, Firewall};
pub use identity::{HiAlgorithm, HostIdentity, Hit, LsiMapper, PublicHi};
pub use midbox::HipMidboxFirewall;
pub use rendezvous::RendezvousServer;
pub use shim::{HipConfig, HipShim, HipStats, PeerInfo};
pub use wire::{HipPacket, PacketType, Param};
