//! A HIP-aware middlebox firewall (§IV-A scenario II).
//!
//! "For both scenarios, a HIP-based firewall can be used; in the first
//! scenario, the firewall is installed at the end-host and in the second
//! scenario, the firewall is installed to middlebox such as the
//! hypervisor" — citing Lindqvist et al., *Enterprise network packet
//! filtering for mobile cryptographic identities*.
//!
//! The middlebox sits on the path (e.g. in the hypervisor's vSwitch) and
//! filters by *identity*, not by address:
//!
//! - HIP control packets are parsed; the (initiator, responder) HIT pair
//!   is checked against the policy. Denied pairs never complete a BEX.
//! - The box learns each association's SPIs from the ESP_INFO parameters
//!   in I2/R2, so it can attribute later ESP packets to a HIT pair and
//!   filter those too — without holding any keys (it sees only
//!   ciphertext, exactly like the real HIP firewall).
//! - Non-HIP traffic is subject to a separate default (the paper's
//!   middleboxes drop cleartext between tenants).

use crate::firewall::{Action, Firewall};
use crate::identity::Hit;
use crate::wire::{HipPacket, PacketType};
use netsim::engine::{Ctx, Node};
use netsim::link::LinkId;
use netsim::packet::{Packet, Payload};
use std::any::Any;
use std::collections::HashMap;

/// A stateful HIP middlebox firewall bridging two links.
pub struct HipMidboxFirewall {
    /// Diagnostics name.
    pub name: String,
    left: LinkId,
    right: LinkId,
    /// Identity policy applied to the *pair* (checked for both HITs).
    pub policy: Firewall,
    /// What to do with traffic that is neither HIP nor attributable ESP.
    pub default_other: Action,
    /// SPI → the HIT pair that negotiated it.
    spi_owner: HashMap<u32, (Hit, Hit)>,
    /// Base exchanges observed to completion.
    pub exchanges_seen: u64,
    /// Packets dropped by policy.
    pub dropped: u64,
    /// Packets forwarded.
    pub forwarded: u64,
}

impl HipMidboxFirewall {
    /// Creates a firewall bridging `left` and `right`. Wire the links
    /// after topology construction via [`Self::set_links`].
    pub fn new(name: &str, policy: Firewall) -> Self {
        HipMidboxFirewall {
            name: name.to_owned(),
            left: LinkId(usize::MAX),
            right: LinkId(usize::MAX),
            policy,
            default_other: Action::Allow,
            spi_owner: HashMap::new(),
            exchanges_seen: 0,
            dropped: 0,
            forwarded: 0,
        }
    }

    /// Wires the two bridged links (iface 0 ↔ left, iface 1 ↔ right).
    pub fn set_links(&mut self, left: LinkId, right: LinkId) {
        self.left = left;
        self.right = right;
    }

    /// The HIT pair currently attributed to `spi`, if learned.
    pub fn owner_of_spi(&self, spi: u32) -> Option<(Hit, Hit)> {
        self.spi_owner.get(&spi).copied()
    }

    fn pair_allowed(&mut self, a: &Hit, b: &Hit) -> bool {
        self.policy.check(a) == Action::Allow && self.policy.check(b) == Action::Allow
    }

    fn inspect(&mut self, pkt: &Packet) -> Action {
        match &pkt.payload {
            Payload::HipControl(bytes) => {
                let Some(hip) = HipPacket::decode(bytes) else {
                    // Unparseable HIP is hostile by definition here.
                    return Action::Deny;
                };
                if !self.pair_allowed(&hip.sender_hit, &hip.receiver_hit) {
                    return Action::Deny;
                }
                // Learn SPIs from ESP_INFO (I2 carries the initiator's,
                // R2 the responder's, UPDATE rekeys).
                if let Some((_, new_spi)) = hip.esp_info() {
                    if new_spi != 0 {
                        self.spi_owner.insert(new_spi, (hip.sender_hit, hip.receiver_hit));
                    }
                }
                if hip.packet_type == PacketType::R2 {
                    self.exchanges_seen += 1;
                }
                Action::Allow
            }
            Payload::Esp(esp) => match self.spi_owner.get(&esp.spi).copied() {
                Some((a, b)) => {
                    if self.pair_allowed(&a, &b) {
                        Action::Allow
                    } else {
                        Action::Deny
                    }
                }
                // ESP for an SA the box never saw negotiated: refuse —
                // this is the anti-bypass property of the HIP firewall.
                None => Action::Deny,
            },
            _ => self.default_other,
        }
    }
}

impl Node for HipMidboxFirewall {
    fn handle_packet(&mut self, iface: usize, pkt: Packet, ctx: &mut Ctx) {
        let out = if iface == 0 { self.right } else { self.left };
        match self.inspect(&pkt) {
            Action::Allow => {
                self.forwarded += 1;
                ctx.transmit(out, pkt);
            }
            Action::Deny => {
                self.dropped += 1;
                ctx.trace_drop(|| {
                    format!("{}: policy drop {} -> {} proto {}", self.name, pkt.src, pkt.dst, pkt.protocol())
                });
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Param;
    use bytes::Bytes;
    use netsim::packet::{v4, EspPacket};

    fn control(ptype: PacketType, from: Hit, to: Hit, params: Vec<Param>) -> Packet {
        let pkt = HipPacket::new(ptype, from, to, params);
        Packet::new(v4(10, 0, 0, 1), v4(10, 0, 0, 2), Payload::HipControl(pkt.encode()))
    }

    fn esp(spi: u32) -> Packet {
        Packet::new(
            v4(10, 0, 0, 1),
            v4(10, 0, 0, 2),
            Payload::Esp(EspPacket { spi, seq: 1, ciphertext: Bytes::from(vec![0; 48]), icv: Bytes::from(vec![0; 16]), gso: None }),
        )
    }

    #[test]
    fn learns_spis_and_attributes_esp() {
        let mut fw = HipMidboxFirewall::new("hv", Firewall::allow_all());
        let (a, b) = (Hit([1; 16]), Hit([2; 16]));
        assert_eq!(
            fw.inspect(&control(PacketType::I2, a, b, vec![Param::EspInfo { old_spi: 0, new_spi: 0x111 }])),
            Action::Allow
        );
        assert_eq!(
            fw.inspect(&control(PacketType::R2, b, a, vec![Param::EspInfo { old_spi: 0, new_spi: 0x222 }])),
            Action::Allow
        );
        assert_eq!(fw.exchanges_seen, 1);
        assert_eq!(fw.owner_of_spi(0x111), Some((a, b)));
        assert_eq!(fw.owner_of_spi(0x222), Some((b, a)));
        assert_eq!(fw.inspect(&esp(0x111)), Action::Allow);
        assert_eq!(fw.inspect(&esp(0x222)), Action::Allow);
    }

    #[test]
    fn unknown_spi_denied() {
        let mut fw = HipMidboxFirewall::new("hv", Firewall::allow_all());
        assert_eq!(fw.inspect(&esp(0xdead)), Action::Deny, "no BEX observed → no ESP");
    }

    #[test]
    fn denied_hit_cannot_even_start_a_bex() {
        let mut policy = Firewall::deny_by_default();
        let good = Hit([1; 16]);
        let peer = Hit([2; 16]);
        policy.allow(good);
        policy.allow(peer);
        let mut fw = HipMidboxFirewall::new("hv", policy);
        let evil = Hit([9; 16]);
        assert_eq!(fw.inspect(&control(PacketType::I1, evil, peer, vec![])), Action::Deny);
        assert_eq!(fw.inspect(&control(PacketType::I1, good, peer, vec![])), Action::Allow);
    }

    #[test]
    fn garbage_hip_control_denied() {
        let mut fw = HipMidboxFirewall::new("hv", Firewall::allow_all());
        let pkt = Packet::new(v4(1, 1, 1, 1), v4(2, 2, 2, 2), Payload::HipControl(Bytes::from_static(b"garbage")));
        assert_eq!(fw.inspect(&pkt), Action::Deny);
    }

    #[test]
    fn cleartext_policy_is_configurable() {
        let mut fw = HipMidboxFirewall::new("hv", Firewall::allow_all());
        let tcp = Packet::new(
            v4(10, 0, 0, 1),
            v4(10, 0, 0, 2),
            Payload::Tcp(netsim::packet::TcpSegment {
                src_port: 1,
                dst_port: 2,
                seq: 0,
                ack: 0,
                flags: netsim::packet::TcpFlags::SYN,
                window: 100,
                data: Bytes::new(),
                gso_mss: 0,
            }),
        );
        assert_eq!(fw.inspect(&tcp), Action::Allow);
        fw.default_other = Action::Deny;
        assert_eq!(fw.inspect(&tcp), Action::Deny, "tenant policy: no cleartext");
    }
}
