//! Host identities: the public-key names HIP gives to hosts.
//!
//! - **HI** (Host Identifier): an RSA or ECDSA public key (RFC 5201 §3).
//! - **HIT** (Host Identity Tag): a 128-bit ORCHID (RFC 4843) — the
//!   2001:10::/28 prefix followed by 100 bits of a SHA-256 hash of the
//!   HI. Applications use HITs exactly like IPv6 addresses.
//! - **LSI** (Local-Scope Identifier): a host-local IPv4 alias (1.0.0.0/8)
//!   for the HIT so unmodified IPv4 applications can use HIP (RFC 5338).
//!   The extra HIT↔LSI translation is what the paper blames for HIP's
//!   small deficit against SSL in its measurements.

use rand::rngs::StdRng;
use sim_crypto::ecdsa::{EcdsaKeyPair, EcdsaPublicKey, EcdsaSignature};
use sim_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use sim_crypto::sha256::sha256;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A Host Identity Tag: 128 bits, ORCHID-encoded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hit(pub [u8; 16]);

impl Hit {
    /// Derives the HIT from a serialized Host Identifier.
    pub fn from_hi_bytes(hi: &[u8]) -> Self {
        let h = sha256(hi);
        let mut b = [0u8; 16];
        // 28-bit ORCHID prefix 2001:0010::/28.
        b[0] = 0x20;
        b[1] = 0x01;
        b[2] = 0x00;
        b[3] = 0x10 | (h[0] & 0x0f);
        b[4..16].copy_from_slice(&h[1..13]);
        Hit(b)
    }

    /// The all-zero HIT (used as the unknown-responder placeholder).
    pub const NULL: Hit = Hit([0u8; 16]);

    /// As an IPv6 address for the application layer.
    pub fn to_ipv6(self) -> Ipv6Addr {
        Ipv6Addr::from(self.0)
    }

    /// As a generic `IpAddr`.
    pub fn to_ip(self) -> IpAddr {
        IpAddr::V6(self.to_ipv6())
    }

    /// Interprets an IPv6 address as a HIT (must be in the ORCHID range).
    pub fn from_ip(addr: &IpAddr) -> Option<Hit> {
        if !netsim::addr::is_hit(addr) {
            return None;
        }
        match addr {
            IpAddr::V6(v6) => Some(Hit(v6.octets())),
            IpAddr::V4(_) => None,
        }
    }

    /// True for the null placeholder.
    pub fn is_null(&self) -> bool {
        self.0 == [0u8; 16]
    }
}

impl fmt::Debug for Hit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HIT({})", self.to_ipv6())
    }
}

impl fmt::Display for Hit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ipv6())
    }
}

/// The signature algorithm of a host identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HiAlgorithm {
    /// RSA (HIP's default; algorithm id 5 in the HOST_ID parameter).
    Rsa,
    /// ECDSA P-256 (the ECC extension the paper cites; id 7).
    Ecdsa,
}

impl HiAlgorithm {
    /// Wire identifier.
    pub fn id(self) -> u8 {
        match self {
            HiAlgorithm::Rsa => 5,
            HiAlgorithm::Ecdsa => 7,
        }
    }

    /// From wire identifier.
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            5 => Some(HiAlgorithm::Rsa),
            7 => Some(HiAlgorithm::Ecdsa),
            _ => None,
        }
    }
}

/// The public half of a host identity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PublicHi {
    /// An RSA public key.
    Rsa(RsaPublicKey),
    /// An ECDSA P-256 public key.
    Ecdsa(EcdsaPublicKey),
}

impl PublicHi {
    /// Serializes as `algorithm (1) || key bytes` — the HOST_ID payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            PublicHi::Rsa(k) => {
                out.push(HiAlgorithm::Rsa.id());
                out.extend_from_slice(&k.to_bytes());
            }
            PublicHi::Ecdsa(k) => {
                out.push(HiAlgorithm::Ecdsa.id());
                out.extend_from_slice(&k.to_bytes());
            }
        }
        out
    }

    /// Parses the HOST_ID payload.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let (&alg, key) = data.split_first()?;
        match HiAlgorithm::from_id(alg)? {
            HiAlgorithm::Rsa => Some(PublicHi::Rsa(RsaPublicKey::from_bytes(key)?)),
            HiAlgorithm::Ecdsa => Some(PublicHi::Ecdsa(EcdsaPublicKey::from_bytes(key)?)),
        }
    }

    /// The HIT of this identity.
    pub fn hit(&self) -> Hit {
        Hit::from_hi_bytes(&self.to_bytes())
    }

    /// Verifies a signature produced by [`HostIdentity::sign`].
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        match self {
            PublicHi::Rsa(k) => k.verify(message, signature),
            PublicHi::Ecdsa(k) => match EcdsaSignature::from_bytes(signature) {
                Some(sig) => k.verify(message, &sig),
                None => false,
            },
        }
    }

    /// The algorithm in use.
    pub fn algorithm(&self) -> HiAlgorithm {
        match self {
            PublicHi::Rsa(_) => HiAlgorithm::Rsa,
            PublicHi::Ecdsa(_) => HiAlgorithm::Ecdsa,
        }
    }
}

/// A full host identity: key pair + cached HIT.
pub struct HostIdentity {
    keys: HiKeys,
    public: PublicHi,
    hit: Hit,
}

enum HiKeys {
    Rsa(RsaKeyPair),
    Ecdsa(EcdsaKeyPair),
}

impl HostIdentity {
    /// Generates an RSA host identity with a modulus of `bits` bits
    /// (the paper's HIPL deployment used RSA; 1024 was typical in 2012;
    /// tests use smaller keys for speed — timing comes from the cost
    /// model, not from this key's size).
    pub fn generate_rsa(bits: usize, rng: &mut StdRng) -> Self {
        let keys = RsaKeyPair::generate(bits, rng);
        let public = PublicHi::Rsa(keys.public().clone());
        let hit = public.hit();
        HostIdentity { keys: HiKeys::Rsa(keys), public, hit }
    }

    /// Generates an ECDSA P-256 host identity (the ECC extension).
    pub fn generate_ecdsa(rng: &mut StdRng) -> Self {
        let keys = EcdsaKeyPair::generate(rng);
        let public = PublicHi::Ecdsa(keys.public().clone());
        let hit = public.hit();
        HostIdentity { keys: HiKeys::Ecdsa(keys), public, hit }
    }

    /// The public identity.
    pub fn public(&self) -> &PublicHi {
        &self.public
    }

    /// This host's HIT.
    pub fn hit(&self) -> Hit {
        self.hit
    }

    /// The algorithm in use.
    pub fn algorithm(&self) -> HiAlgorithm {
        self.public.algorithm()
    }

    /// Signs `message` with the private key.
    pub fn sign(&self, message: &[u8], rng: &mut StdRng) -> Vec<u8> {
        match &self.keys {
            HiKeys::Rsa(k) => k.sign(message),
            HiKeys::Ecdsa(k) => k.sign(message, rng).to_bytes(),
        }
    }
}

/// Allocates Local-Scope Identifiers and maintains the HIT↔LSI mapping.
///
/// LSIs are host-local: two hosts may map the same peer to different
/// LSIs. Allocation is deterministic from the HIT with linear probing on
/// collision.
#[derive(Default)]
pub struct LsiMapper {
    by_lsi: std::collections::HashMap<Ipv4Addr, Hit>,
    by_hit: std::collections::HashMap<Hit, Ipv4Addr>,
}

impl LsiMapper {
    /// An empty mapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the LSI for `hit`, allocating one if needed.
    pub fn lsi_for(&mut self, hit: Hit) -> Ipv4Addr {
        if let Some(&lsi) = self.by_hit.get(&hit) {
            return lsi;
        }
        // Seed from the HIT tail; probe on collision. 1.0.0.0 and
        // 1.255.255.255 are avoided as pseudo network/broadcast.
        let base = u32::from_be_bytes([0, hit.0[13], hit.0[14], hit.0[15]]);
        for probe in 0u32.. {
            let v = (base.wrapping_add(probe)) & 0x00ff_ffff;
            if v == 0 || v == 0x00ff_ffff {
                continue;
            }
            let octets = v.to_be_bytes();
            let lsi = Ipv4Addr::new(1, octets[1], octets[2], octets[3]);
            if let std::collections::hash_map::Entry::Vacant(e) = self.by_lsi.entry(lsi) {
                e.insert(hit);
                self.by_hit.insert(hit, lsi);
                return lsi;
            }
        }
        unreachable!("LSI space exhausted")
    }

    /// Looks up the HIT behind an LSI.
    pub fn hit_of(&self, lsi: &Ipv4Addr) -> Option<Hit> {
        self.by_lsi.get(lsi).copied()
    }

    /// Looks up the LSI of a HIT without allocating.
    pub fn lsi_of(&self, hit: &Hit) -> Option<Ipv4Addr> {
        self.by_hit.get(hit).copied()
    }

    /// Number of allocated LSIs.
    pub fn len(&self) -> usize {
        self.by_lsi.len()
    }

    /// True when no LSIs have been allocated.
    pub fn is_empty(&self) -> bool {
        self.by_lsi.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn hit_is_orchid() {
        let mut r = rng();
        let id = HostIdentity::generate_rsa(512, &mut r);
        let ip = id.hit().to_ip();
        assert!(netsim::addr::is_hit(&ip), "{ip}");
        assert_eq!(Hit::from_ip(&ip), Some(id.hit()));
    }

    #[test]
    fn hit_depends_on_key() {
        let mut r = rng();
        let a = HostIdentity::generate_rsa(512, &mut r);
        let b = HostIdentity::generate_rsa(512, &mut r);
        assert_ne!(a.hit(), b.hit());
    }

    #[test]
    fn hit_matches_public_serialization() {
        let mut r = rng();
        let id = HostIdentity::generate_rsa(512, &mut r);
        let bytes = id.public().to_bytes();
        let parsed = PublicHi::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.hit(), id.hit());
        assert_eq!(&parsed, id.public());
    }

    #[test]
    fn rsa_sign_verify_through_identity() {
        let mut r = rng();
        let id = HostIdentity::generate_rsa(512, &mut r);
        let sig = id.sign(b"hip control packet", &mut r);
        assert!(id.public().verify(b"hip control packet", &sig));
        assert!(!id.public().verify(b"tampered", &sig));
    }

    #[test]
    fn ecdsa_identity_works() {
        let mut r = rng();
        let id = HostIdentity::generate_ecdsa(&mut r);
        assert_eq!(id.algorithm(), HiAlgorithm::Ecdsa);
        assert!(netsim::addr::is_hit(&id.hit().to_ip()));
        let sig = id.sign(b"msg", &mut r);
        assert!(id.public().verify(b"msg", &sig));
        let bytes = id.public().to_bytes();
        assert_eq!(PublicHi::from_bytes(&bytes).unwrap().hit(), id.hit());
    }

    #[test]
    fn public_hi_rejects_garbage() {
        assert!(PublicHi::from_bytes(&[]).is_none());
        assert!(PublicHi::from_bytes(&[99, 1, 2, 3]).is_none());
        assert!(PublicHi::from_bytes(&[5]).is_none());
    }

    #[test]
    fn lsi_allocation_is_stable_and_in_range() {
        let mut m = LsiMapper::new();
        let hit = Hit([7u8; 16]);
        let lsi = m.lsi_for(hit);
        assert_eq!(lsi.octets()[0], 1, "LSIs live in 1/8");
        assert_eq!(m.lsi_for(hit), lsi, "idempotent");
        assert_eq!(m.hit_of(&lsi), Some(hit));
        assert_eq!(m.lsi_of(&hit), Some(lsi));
    }

    #[test]
    fn lsi_collision_probes() {
        let mut m = LsiMapper::new();
        // Two HITs with identical tails collide on the seed LSI.
        let mut a = [0u8; 16];
        let mut b = [1u8; 16];
        a[13..16].copy_from_slice(&[9, 9, 9]);
        b[13..16].copy_from_slice(&[9, 9, 9]);
        let la = m.lsi_for(Hit(a));
        let lb = m.lsi_for(Hit(b));
        assert_ne!(la, lb);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn null_hit() {
        assert!(Hit::NULL.is_null());
        let mut r = rng();
        assert!(!HostIdentity::generate_rsa(512, &mut r).hit().is_null());
    }
}
