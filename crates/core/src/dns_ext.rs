//! HIP DNS extensions (RFC 5205): publishing and resolving HIP resource
//! records.
//!
//! The paper's future-work section emphasises HIPL's DNS machinery (a
//! DNS proxy translating HIP records to HITs/LSIs, tooling to publish
//! Host Identifiers, dynamic-DNS re-registration on relocation). We
//! provide the zone-side primitives here; the `netsim::dns` module
//! supplies the record container and the `websvc` crate's DNS server app
//! serves them.

use crate::identity::{Hit, PublicHi};
use netsim::dns::{Record, RecordType, Zone};
use std::net::IpAddr;

/// Publishes a host's full record set under `name`: A/AAAA records for
/// its locators plus the HIP RR carrying HIT + HI (+ optional RVS).
pub fn publish(
    zone: &mut Zone,
    name: &str,
    public: &PublicHi,
    locators: &[IpAddr],
    rendezvous: Vec<IpAddr>,
) {
    for loc in locators {
        match loc {
            IpAddr::V4(_) => zone.add(name, Record::A(*loc)),
            IpAddr::V6(_) => zone.add(name, Record::Aaaa(*loc)),
        }
    }
    zone.add(
        name,
        Record::Hip { hit: public.hit().0, host_identity: public.to_bytes(), rendezvous },
    );
}

/// Re-registers after relocation: drops all records for `name` and
/// publishes the new locator set (the dynamic-DNS flow the paper cites
/// for re-contact after simultaneous relocation).
pub fn republish(
    zone: &mut Zone,
    name: &str,
    public: &PublicHi,
    locators: &[IpAddr],
    rendezvous: Vec<IpAddr>,
) {
    zone.remove(name);
    publish(zone, name, public, locators, rendezvous);
}

/// A resolved HIP peer: everything a shim needs to `add_peer`.
#[derive(Clone, Debug)]
pub struct ResolvedPeer {
    /// The peer's verified Host Identity Tag.
    pub hit: Hit,
    /// The serialized Host Identity (public key).
    pub host_identity: Vec<u8>,
    /// Locators from A/AAAA records.
    pub locators: Vec<IpAddr>,
    /// Rendezvous servers from the HIP RR.
    pub rendezvous: Vec<IpAddr>,
}

/// Resolves `name` from a zone into HIP peer information, verifying
/// that the advertised HIT matches the advertised Host Identity (a
/// forged HIP RR with a mismatched key is rejected).
pub fn resolve(zone: &Zone, name: &str) -> Option<ResolvedPeer> {
    let mut hit = None;
    let mut host_identity = Vec::new();
    let mut rendezvous = Vec::new();
    for rec in zone.lookup(name, RecordType::Hip) {
        if let Record::Hip { hit: h, host_identity: hi, rendezvous: rvs } = rec {
            // Integrity: HIT must be derived from the HI.
            let public = PublicHi::from_bytes(&hi)?;
            if public.hit().0 != h {
                return None;
            }
            hit = Some(Hit(h));
            host_identity = hi;
            rendezvous = rvs;
        }
    }
    let hit = hit?;
    let mut locators = Vec::new();
    for rec in zone.lookup(name, RecordType::A) {
        if let Record::A(a) = rec {
            locators.push(a);
        }
    }
    for rec in zone.lookup(name, RecordType::Aaaa) {
        if let Record::Aaaa(a) = rec {
            locators.push(a);
        }
    }
    Some(ResolvedPeer { hit, host_identity, locators, rendezvous })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::HostIdentity;
    use netsim::packet::v4;
    use rand::SeedableRng;

    fn identity() -> HostIdentity {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        HostIdentity::generate_rsa(512, &mut rng)
    }

    #[test]
    fn publish_then_resolve() {
        let id = identity();
        let mut zone = Zone::new();
        publish(&mut zone, "web1.cloud", id.public(), &[v4(10, 0, 0, 5)], vec![v4(10, 0, 0, 9)]);
        let peer = resolve(&zone, "web1.cloud").expect("resolves");
        assert_eq!(peer.hit, id.hit());
        assert_eq!(peer.locators, vec![v4(10, 0, 0, 5)]);
        assert_eq!(peer.rendezvous, vec![v4(10, 0, 0, 9)]);
        assert_eq!(PublicHi::from_bytes(&peer.host_identity).unwrap().hit(), id.hit());
    }

    #[test]
    fn forged_hit_rejected() {
        let id = identity();
        let mut zone = Zone::new();
        // An attacker publishes their key under a victim's HIT.
        zone.add(
            "victim.cloud",
            Record::Hip { hit: [9; 16], host_identity: id.public().to_bytes(), rendezvous: vec![] },
        );
        assert!(resolve(&zone, "victim.cloud").is_none());
    }

    #[test]
    fn republish_replaces_locators() {
        let id = identity();
        let mut zone = Zone::new();
        publish(&mut zone, "vm.cloud", id.public(), &[v4(10, 0, 0, 5)], vec![]);
        republish(&mut zone, "vm.cloud", id.public(), &[v4(10, 0, 1, 7)], vec![]);
        let peer = resolve(&zone, "vm.cloud").unwrap();
        assert_eq!(peer.locators, vec![v4(10, 0, 1, 7)], "old locator gone");
    }

    #[test]
    fn missing_name_resolves_to_none() {
        assert!(resolve(&Zone::new(), "nope").is_none());
    }
}
