//! HIP control-packet wire format (RFC 5201 §5).
//!
//! Packets are genuinely serialized to bytes: the HMAC and signature
//! parameters are computed over these exact bytes, parsed back on the
//! far side, and verified against the re-serialized content — so a
//! tampered bit anywhere really does break verification, like on a real
//! wire.
//!
//! Layout (simplified from RFC 5201 §5.1, checksum omitted — the
//! simulator's links don't corrupt bits):
//!
//! ```text
//! type (1) | version (1) | controls (2) | sender HIT (16) | receiver HIT (16)
//! then parameters, each: type (2) | length (2) | value | pad to 8
//! ```
//!
//! Parameters must appear sorted by type number; HMAC (61505) and
//! HIP_SIGNATURE (61697) therefore come last, and each covers exactly
//! the bytes that precede it.

use crate::identity::Hit;
use bytes::Bytes;

/// HIP packet types (RFC 5201 §5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PacketType {
    /// Initiator's trigger (header only; DoS-cheap for the responder).
    I1,
    /// Responder's challenge: puzzle + DH + Host Identity, pre-computable.
    R1,
    /// Initiator's answer: solution + DH + SPI + identity, HMAC + signed.
    I2,
    /// Responder's conclusion: SPI, HMAC + signed. SAs now live.
    R2,
    /// Mobility/rekey (RFC 5206).
    Update,
    /// Asynchronous error/status notification.
    Notify,
    /// Association teardown request.
    Close,
    /// Teardown acknowledgement.
    CloseAck,
    /// Simplified rendezvous registration request (see `rendezvous`).
    RegRequest,
    /// Simplified rendezvous registration response.
    RegResponse,
}

impl PacketType {
    /// Wire value.
    pub fn id(self) -> u8 {
        match self {
            PacketType::I1 => 1,
            PacketType::R1 => 2,
            PacketType::I2 => 3,
            PacketType::R2 => 4,
            PacketType::Update => 16,
            PacketType::Notify => 17,
            PacketType::Close => 18,
            PacketType::CloseAck => 19,
            PacketType::RegRequest => 20,
            PacketType::RegResponse => 21,
        }
    }

    /// From wire value.
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            1 => PacketType::I1,
            2 => PacketType::R1,
            3 => PacketType::I2,
            4 => PacketType::R2,
            16 => PacketType::Update,
            17 => PacketType::Notify,
            18 => PacketType::Close,
            19 => PacketType::CloseAck,
            20 => PacketType::RegRequest,
            21 => PacketType::RegResponse,
            _ => return None,
        })
    }
}

/// Parameter type numbers (RFC 5201 §5.2 where applicable).
pub mod param_type {
    /// SPIs for the ESP SAs.
    pub const ESP_INFO: u16 = 65;
    /// Generation counter of a pre-computed R1.
    pub const R1_COUNTER: u16 = 128;
    /// Locator set for mobility/multihoming.
    pub const LOCATOR: u16 = 193;
    /// The computational puzzle.
    pub const PUZZLE: u16 = 257;
    /// A puzzle solution.
    pub const SOLUTION: u16 = 321;
    /// Update sequence number.
    pub const SEQ: u16 = 385;
    /// Acknowledged update sequence numbers.
    pub const ACK: u16 = 449;
    /// Diffie-Hellman public value.
    pub const DIFFIE_HELLMAN: u16 = 513;
    /// Offered/chosen HIP transform suites.
    pub const HIP_TRANSFORM: u16 = 577;
    /// The sender's Host Identity.
    pub const HOST_ID: u16 = 705;
    /// Echo request nonce.
    pub const ECHO_REQUEST: u16 = 897;
    /// Echo response nonce.
    pub const ECHO_RESPONSE: u16 = 961;
    /// Offered/chosen ESP transform suites.
    pub const ESP_TRANSFORM: u16 = 4095;
    /// Rendezvous: original source locator.
    pub const FROM: u16 = 65498;
    /// Keyed MAC over the preceding bytes.
    pub const HMAC: u16 = 61505;
    /// Public-key signature over the preceding bytes.
    pub const HIP_SIGNATURE: u16 = 61697;
    /// Rendezvous: relayed via this server.
    pub const VIA_RVS: u16 = 65502;
}

/// A decoded HIP parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Param {
    /// SPIs for the ESP SAs: `(old_spi, new_spi)` (old = 0 during BEX).
    EspInfo {
        /// SPI being replaced (0 during the base exchange).
        old_spi: u32,
        /// Newly allocated inbound SPI of the sender.
        new_spi: u32,
    },
    /// Generation counter of the R1 (anti-replay for precomputed R1s).
    R1Counter(u64),
    /// Locators for mobility/multihoming (16-byte-padded addresses;
    /// IPv4 uses the v4-mapped form).
    Locator(Vec<[u8; 16]>),
    /// The puzzle: difficulty K, lifetime, opaque tag, random I.
    Puzzle {
        /// Difficulty: lowest K bits of the hash must be zero.
        k: u8,
        /// Puzzle lifetime in seconds (advisory).
        lifetime: u8,
        /// Responder-chosen opaque tag echoed in the solution.
        opaque: u16,
        /// The random puzzle value.
        i: u64,
    },
    /// The solution: echoed K/opaque/I plus the solving J.
    Solution {
        /// Echoed difficulty.
        k: u8,
        /// Echoed opaque tag.
        opaque: u16,
        /// Echoed puzzle value.
        i: u64,
        /// The value that solves the puzzle.
        j: u64,
    },
    /// Update sequence number.
    Seq(u32),
    /// Acknowledged update sequence numbers.
    Ack(Vec<u32>),
    /// DH group id + public value.
    DiffieHellman {
        /// Group identifier (RFC 5201 §5.2.6).
        group: u8,
        /// The public value, fixed-length for the group.
        public: Vec<u8>,
    },
    /// Offered/chosen HIP transform suite ids (1 = AES-CBC+HMAC-SHA256).
    HipTransform(Vec<u16>),
    /// The sender's serialized Host Identity.
    HostId(Vec<u8>),
    /// Echo request nonce (address verification, replay protection).
    EchoRequest(u64),
    /// Echo response nonce.
    EchoResponse(u64),
    /// Offered/chosen ESP transform suite ids.
    EspTransform(Vec<u16>),
    /// Rendezvous: the original source locator of a relayed I1.
    From([u8; 16]),
    /// Rendezvous: packet travelled via this RVS.
    ViaRvs([u8; 16]),
    /// HMAC-SHA-256 over the preceding bytes (keyed with KEYMAT).
    Hmac([u8; 32]),
    /// Public-key signature over the preceding bytes.
    Signature(Vec<u8>),
    /// A parameter we do not understand (type, raw value): RFC 5201
    /// requires unrecognized non-critical parameters to be skipped.
    Unknown(u16, Vec<u8>),
}

impl Param {
    /// The wire type number.
    pub fn type_code(&self) -> u16 {
        use param_type::*;
        match self {
            Param::EspInfo { .. } => ESP_INFO,
            Param::R1Counter(_) => R1_COUNTER,
            Param::Locator(_) => LOCATOR,
            Param::Puzzle { .. } => PUZZLE,
            Param::Solution { .. } => SOLUTION,
            Param::Seq(_) => SEQ,
            Param::Ack(_) => ACK,
            Param::DiffieHellman { .. } => DIFFIE_HELLMAN,
            Param::HipTransform(_) => HIP_TRANSFORM,
            Param::HostId(_) => HOST_ID,
            Param::EchoRequest(_) => ECHO_REQUEST,
            Param::EchoResponse(_) => ECHO_RESPONSE,
            Param::EspTransform(_) => ESP_TRANSFORM,
            Param::From(_) => FROM,
            Param::ViaRvs(_) => VIA_RVS,
            Param::Hmac(_) => HMAC,
            Param::Signature(_) => HIP_SIGNATURE,
            Param::Unknown(t, _) => *t,
        }
    }

    fn encode_value(&self) -> Vec<u8> {
        match self {
            Param::EspInfo { old_spi, new_spi } => {
                let mut v = old_spi.to_be_bytes().to_vec();
                v.extend_from_slice(&new_spi.to_be_bytes());
                v
            }
            Param::R1Counter(c) => c.to_be_bytes().to_vec(),
            Param::Locator(locs) => {
                let mut v = Vec::with_capacity(locs.len() * 16);
                for l in locs {
                    v.extend_from_slice(l);
                }
                v
            }
            Param::Puzzle { k, lifetime, opaque, i } => {
                let mut v = vec![*k, *lifetime];
                v.extend_from_slice(&opaque.to_be_bytes());
                v.extend_from_slice(&i.to_be_bytes());
                v
            }
            Param::Solution { k, opaque, i, j } => {
                let mut v = vec![*k, 0];
                v.extend_from_slice(&opaque.to_be_bytes());
                v.extend_from_slice(&i.to_be_bytes());
                v.extend_from_slice(&j.to_be_bytes());
                v
            }
            Param::Seq(s) => s.to_be_bytes().to_vec(),
            Param::Ack(acks) => acks.iter().flat_map(|a| a.to_be_bytes()).collect(),
            Param::DiffieHellman { group, public } => {
                let mut v = vec![*group];
                v.extend_from_slice(public);
                v
            }
            Param::HipTransform(suites) | Param::EspTransform(suites) => {
                suites.iter().flat_map(|s| s.to_be_bytes()).collect()
            }
            Param::HostId(hi) => hi.clone(),
            Param::EchoRequest(n) | Param::EchoResponse(n) => n.to_be_bytes().to_vec(),
            Param::From(a) | Param::ViaRvs(a) => a.to_vec(),
            Param::Hmac(m) => m.to_vec(),
            Param::Signature(s) => s.clone(),
            Param::Unknown(_, v) => v.clone(),
        }
    }

    fn decode(type_code: u16, value: &[u8]) -> Option<Param> {
        use param_type::*;
        Some(match type_code {
            ESP_INFO => {
                if value.len() != 8 {
                    return None;
                }
                Param::EspInfo {
                    old_spi: u32::from_be_bytes(value[..4].try_into().ok()?),
                    new_spi: u32::from_be_bytes(value[4..8].try_into().ok()?),
                }
            }
            R1_COUNTER => Param::R1Counter(u64::from_be_bytes(value.try_into().ok()?)),
            LOCATOR => {
                if !value.len().is_multiple_of(16) {
                    return None;
                }
                Param::Locator(
                    value.chunks(16).map(|c| <[u8; 16]>::try_from(c).unwrap()).collect(),
                )
            }
            PUZZLE => {
                if value.len() != 12 {
                    return None;
                }
                Param::Puzzle {
                    k: value[0],
                    lifetime: value[1],
                    opaque: u16::from_be_bytes(value[2..4].try_into().ok()?),
                    i: u64::from_be_bytes(value[4..12].try_into().ok()?),
                }
            }
            SOLUTION => {
                if value.len() != 20 {
                    return None;
                }
                Param::Solution {
                    k: value[0],
                    opaque: u16::from_be_bytes(value[2..4].try_into().ok()?),
                    i: u64::from_be_bytes(value[4..12].try_into().ok()?),
                    j: u64::from_be_bytes(value[12..20].try_into().ok()?),
                }
            }
            SEQ => Param::Seq(u32::from_be_bytes(value.try_into().ok()?)),
            ACK => {
                if !value.len().is_multiple_of(4) {
                    return None;
                }
                Param::Ack(
                    value.chunks(4).map(|c| u32::from_be_bytes(c.try_into().unwrap())).collect(),
                )
            }
            DIFFIE_HELLMAN => {
                let (&group, public) = value.split_first()?;
                Param::DiffieHellman { group, public: public.to_vec() }
            }
            HIP_TRANSFORM | ESP_TRANSFORM => {
                if !value.len().is_multiple_of(2) {
                    return None;
                }
                let suites =
                    value.chunks(2).map(|c| u16::from_be_bytes(c.try_into().unwrap())).collect();
                if type_code == HIP_TRANSFORM {
                    Param::HipTransform(suites)
                } else {
                    Param::EspTransform(suites)
                }
            }
            HOST_ID => Param::HostId(value.to_vec()),
            ECHO_REQUEST => Param::EchoRequest(u64::from_be_bytes(value.try_into().ok()?)),
            ECHO_RESPONSE => Param::EchoResponse(u64::from_be_bytes(value.try_into().ok()?)),
            FROM => Param::From(value.try_into().ok()?),
            VIA_RVS => Param::ViaRvs(value.try_into().ok()?),
            HMAC => Param::Hmac(value.try_into().ok()?),
            HIP_SIGNATURE => Param::Signature(value.to_vec()),
            _ => Param::Unknown(type_code, value.to_vec()),
        })
    }
}

/// A HIP control packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HipPacket {
    /// Which message of the protocol this is.
    pub packet_type: PacketType,
    /// The sender's Host Identity Tag.
    pub sender_hit: Hit,
    /// The intended receiver's HIT (null in I1-to-RVS and registrations).
    pub receiver_hit: Hit,
    /// TLV parameters, kept sorted in wire order.
    pub params: Vec<Param>,
}

/// Current protocol version byte.
const VERSION: u8 = 1;

impl HipPacket {
    /// Creates a packet; parameters are sorted into wire order.
    pub fn new(packet_type: PacketType, sender: Hit, receiver: Hit, mut params: Vec<Param>) -> Self {
        params.sort_by_key(Param::type_code);
        HipPacket { packet_type, sender_hit: sender, receiver_hit: receiver, params }
    }

    /// Serializes the full packet.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(128);
        out.push(self.packet_type.id());
        out.push(VERSION);
        out.extend_from_slice(&[0u8, 0u8]); // controls
        out.extend_from_slice(&self.sender_hit.0);
        out.extend_from_slice(&self.receiver_hit.0);
        for p in &self.params {
            let value = p.encode_value();
            out.extend_from_slice(&p.type_code().to_be_bytes());
            out.extend_from_slice(&(value.len() as u16).to_be_bytes());
            out.extend_from_slice(&value);
            // Pad to an 8-byte boundary.
            let pad = (8 - (4 + value.len()) % 8) % 8;
            out.extend(std::iter::repeat_n(0u8, pad));
        }
        Bytes::from(out)
    }

    /// Parses a packet. Returns `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<HipPacket> {
        if data.len() < 36 {
            return None;
        }
        let packet_type = PacketType::from_id(data[0])?;
        if data[1] != VERSION {
            return None;
        }
        let sender_hit = Hit(data[4..20].try_into().ok()?);
        let receiver_hit = Hit(data[20..36].try_into().ok()?);
        let mut params = Vec::new();
        let mut off = 36;
        while off < data.len() {
            if off + 4 > data.len() {
                return None;
            }
            let tc = u16::from_be_bytes(data[off..off + 2].try_into().ok()?);
            let len = u16::from_be_bytes(data[off + 2..off + 4].try_into().ok()?) as usize;
            if off + 4 + len > data.len() {
                return None;
            }
            params.push(Param::decode(tc, &data[off + 4..off + 4 + len])?);
            let pad = (8 - (4 + len) % 8) % 8;
            off += 4 + len + pad;
        }
        Some(HipPacket { packet_type, sender_hit, receiver_hit, params })
    }

    /// The bytes covered by the HMAC parameter: everything before it.
    /// (Also the signature coverage when no HMAC is present.)
    pub fn bytes_before(&self, type_code: u16) -> Vec<u8> {
        let truncated = HipPacket {
            packet_type: self.packet_type,
            sender_hit: self.sender_hit,
            receiver_hit: self.receiver_hit,
            params: self.params.iter().filter(|p| p.type_code() < type_code).cloned().collect(),
        };
        truncated.encode().to_vec()
    }

    /// Like [`Self::bytes_before`] but with the receiver HIT zeroed —
    /// the R1 signature coverage, allowing R1 pre-computation before the
    /// initiator (and hence the receiver HIT field) is known.
    pub fn bytes_before_with_zero_receiver(&self, type_code: u16) -> Vec<u8> {
        let truncated = HipPacket {
            packet_type: self.packet_type,
            sender_hit: self.sender_hit,
            receiver_hit: Hit::NULL,
            params: self.params.iter().filter(|p| p.type_code() < type_code).cloned().collect(),
        };
        truncated.encode().to_vec()
    }

    /// First parameter matching `pred`.
    pub fn find<'a, T>(&'a self, pred: impl Fn(&'a Param) -> Option<T>) -> Option<T> {
        self.params.iter().find_map(pred)
    }

    /// The puzzle parameter, if present.
    pub fn puzzle(&self) -> Option<(u8, u8, u16, u64)> {
        self.find(|p| match p {
            Param::Puzzle { k, lifetime, opaque, i } => Some((*k, *lifetime, *opaque, *i)),
            _ => None,
        })
    }

    /// The solution parameter, if present.
    pub fn solution(&self) -> Option<(u8, u16, u64, u64)> {
        self.find(|p| match p {
            Param::Solution { k, opaque, i, j } => Some((*k, *opaque, *i, *j)),
            _ => None,
        })
    }

    /// The DH parameter, if present.
    pub fn diffie_hellman(&self) -> Option<(u8, &[u8])> {
        self.find(|p| match p {
            Param::DiffieHellman { group, public } => Some((*group, public.as_slice())),
            _ => None,
        })
    }

    /// The HOST_ID parameter, if present.
    pub fn host_id(&self) -> Option<&[u8]> {
        self.find(|p| match p {
            Param::HostId(hi) => Some(hi.as_slice()),
            _ => None,
        })
    }

    /// The ESP_INFO parameter, if present.
    pub fn esp_info(&self) -> Option<(u32, u32)> {
        self.find(|p| match p {
            Param::EspInfo { old_spi, new_spi } => Some((*old_spi, *new_spi)),
            _ => None,
        })
    }

    /// The HMAC parameter, if present.
    pub fn hmac(&self) -> Option<&[u8; 32]> {
        self.find(|p| match p {
            Param::Hmac(m) => Some(m),
            _ => None,
        })
    }

    /// The signature parameter, if present.
    pub fn signature(&self) -> Option<&[u8]> {
        self.find(|p| match p {
            Param::Signature(s) => Some(s.as_slice()),
            _ => None,
        })
    }

    /// The SEQ parameter, if present.
    pub fn seq(&self) -> Option<u32> {
        self.find(|p| match p {
            Param::Seq(s) => Some(*s),
            _ => None,
        })
    }

    /// The ACK parameter, if present.
    pub fn ack(&self) -> Option<&[u32]> {
        self.find(|p| match p {
            Param::Ack(a) => Some(a.as_slice()),
            _ => None,
        })
    }

    /// Locators, decoded to `IpAddr`s.
    pub fn locators(&self) -> Vec<std::net::IpAddr> {
        self.find(|p| match p {
            Param::Locator(l) => Some(l.iter().map(decode_locator).collect()),
            _ => None,
        })
        .unwrap_or_default()
    }
}

/// Encodes an address into the 16-byte locator form (v4-mapped for IPv4).
pub fn encode_locator(addr: &std::net::IpAddr) -> [u8; 16] {
    match addr {
        std::net::IpAddr::V6(v6) => v6.octets(),
        std::net::IpAddr::V4(v4) => {
            let mut b = [0u8; 16];
            b[10] = 0xff;
            b[11] = 0xff;
            b[12..16].copy_from_slice(&v4.octets());
            b
        }
    }
}

/// Decodes a 16-byte locator back into an address.
pub fn decode_locator(b: &[u8; 16]) -> std::net::IpAddr {
    if b[..10] == [0u8; 10] && b[10] == 0xff && b[11] == 0xff {
        std::net::IpAddr::V4(std::net::Ipv4Addr::new(b[12], b[13], b[14], b[15]))
    } else {
        std::net::IpAddr::V6(std::net::Ipv6Addr::from(*b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{v4, v6};

    fn hits() -> (Hit, Hit) {
        (Hit([1; 16]), Hit([2; 16]))
    }

    fn sample_params() -> Vec<Param> {
        vec![
            Param::Signature(vec![9; 64]),
            Param::Puzzle { k: 10, lifetime: 37, opaque: 0xbeef, i: 0x1122334455667788 },
            Param::DiffieHellman { group: 4, public: vec![5; 192] },
            Param::HostId(vec![5, 1, 2, 3]),
            Param::HipTransform(vec![1, 2]),
            Param::EspInfo { old_spi: 0, new_spi: 0xdeadbeef },
            Param::Hmac([7; 32]),
            Param::Seq(42),
            Param::Ack(vec![41, 42]),
            Param::EchoRequest(777),
            Param::Locator(vec![encode_locator(&v4(10, 0, 0, 1))]),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::I2, a, b, sample_params());
        let bytes = pkt.encode();
        let parsed = HipPacket::decode(&bytes).expect("decodes");
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn params_sorted_by_type_code() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::I2, a, b, sample_params());
        let codes: Vec<u16> = pkt.params.iter().map(Param::type_code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
        // HMAC before SIGNATURE, both after everything else.
        assert!(codes.ends_with(&[param_type::HMAC, param_type::HIP_SIGNATURE]));
    }

    #[test]
    fn decode_rejects_truncation() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::R1, a, b, sample_params());
        let bytes = pkt.encode();
        for cut in [1, 10, 35, bytes.len() - 5] {
            assert!(HipPacket::decode(&bytes[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_type_and_version() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::I1, a, b, vec![]);
        let mut bytes = pkt.encode().to_vec();
        bytes[0] = 200; // unknown type
        assert!(HipPacket::decode(&bytes).is_none());
        bytes[0] = 1;
        bytes[1] = 9; // bad version
        assert!(HipPacket::decode(&bytes).is_none());
    }

    #[test]
    fn unknown_params_preserved() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::Update, a, b, vec![Param::Unknown(999, vec![1, 2, 3])]);
        let parsed = HipPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(parsed.params, vec![Param::Unknown(999, vec![1, 2, 3])]);
    }

    #[test]
    fn hmac_coverage_excludes_hmac_and_signature() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::I2, a, b, sample_params());
        let covered = pkt.bytes_before(param_type::HMAC);
        let parsed = HipPacket::decode(&covered).unwrap();
        assert!(parsed.hmac().is_none());
        assert!(parsed.signature().is_none());
        assert!(parsed.puzzle().is_some());
        // Signature coverage includes the HMAC.
        let sig_covered = pkt.bytes_before(param_type::HIP_SIGNATURE);
        let parsed = HipPacket::decode(&sig_covered).unwrap();
        assert!(parsed.hmac().is_some());
        assert!(parsed.signature().is_none());
    }

    #[test]
    fn zero_receiver_coverage_for_r1_precomputation() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::R1, a, b, sample_params());
        let cov = pkt.bytes_before_with_zero_receiver(param_type::HIP_SIGNATURE);
        let parsed = HipPacket::decode(&cov).unwrap();
        assert_eq!(parsed.receiver_hit, Hit::NULL);
        assert_eq!(parsed.sender_hit, a);
        // Two packets differing only in receiver HIT share the coverage.
        let pkt2 = HipPacket::new(PacketType::R1, a, Hit([9; 16]), sample_params());
        assert_eq!(cov, pkt2.bytes_before_with_zero_receiver(param_type::HIP_SIGNATURE));
    }

    #[test]
    fn locator_encoding_both_families() {
        let a4 = v4(192, 168, 1, 1);
        let a6 = v6([0x2001, 0x10, 0, 0, 0, 0, 0, 1]);
        assert_eq!(decode_locator(&encode_locator(&a4)), a4);
        assert_eq!(decode_locator(&encode_locator(&a6)), a6);
    }

    #[test]
    fn accessors() {
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::I2, a, b, sample_params());
        assert_eq!(pkt.puzzle().unwrap().0, 10);
        assert_eq!(pkt.diffie_hellman().unwrap().0, 4);
        assert_eq!(pkt.esp_info().unwrap().1, 0xdeadbeef);
        assert_eq!(pkt.seq(), Some(42));
        assert_eq!(pkt.ack().unwrap(), &[41, 42]);
        assert_eq!(pkt.locators(), vec![v4(10, 0, 0, 1)]);
        assert_eq!(pkt.host_id().unwrap(), &[5, 1, 2, 3]);
    }

    #[test]
    fn padding_alignment() {
        // Every parameter boundary lands on an 8-byte offset.
        let (a, b) = hits();
        let pkt = HipPacket::new(PacketType::I2, a, b, sample_params());
        let bytes = pkt.encode();
        assert_eq!((bytes.len() - 36) % 8, 0);
    }
}
