//! The HIP rendezvous server (RFC 5204).
//!
//! Mobile hosts register their HIT → locator binding; initiators that
//! only know a peer's HIT (and its RVS) send their I1 to the RVS, which
//! relays it to the registered locator with a FROM parameter carrying
//! the initiator's source address. The responder then answers the
//! initiator *directly* — the RVS touches only the first packet, as the
//! paper's §II-B describes for simultaneous relocation.
//!
//! Registration here is a single signed `REG_REQUEST` rather than the
//! RFC's full BEX-with-REG-parameters: the security property exercised
//! (binding is signed by the key that owns the HIT) is the same, and
//! DESIGN.md records the simplification.

use crate::identity::{Hit, PublicHi};
use crate::wire::{encode_locator, param_type, HipPacket, PacketType, Param};
use std::collections::HashMap as SeqMap;
use netsim::engine::{Ctx, Node};
use netsim::link::LinkId;
use netsim::packet::{Packet, Payload};
use std::any::Any;
use std::collections::HashMap;
use std::net::IpAddr;

/// A rendezvous server node.
pub struct RendezvousServer {
    /// The server's locator.
    pub addr: IpAddr,
    link: LinkId,
    registrations: HashMap<Hit, IpAddr>,
    /// Highest registration sequence accepted per HIT (replay guard: a
    /// captured REG_REQUEST cannot re-bind the HIT to a stale locator).
    reg_seq: SeqMap<Hit, u32>,
    /// I1 packets relayed (diagnostics).
    pub relayed: u64,
    /// Registrations rejected for bad signatures (diagnostics).
    pub rejected: u64,
}

impl RendezvousServer {
    /// Creates a server at `addr` attached to `link`.
    pub fn new(addr: IpAddr, link: LinkId) -> Self {
        RendezvousServer { addr, link, registrations: HashMap::new(), reg_seq: SeqMap::new(), relayed: 0, rejected: 0 }
    }

    /// Current registration for a HIT (tests).
    pub fn registration(&self, hit: &Hit) -> Option<IpAddr> {
        self.registrations.get(hit).copied()
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// True when no HITs are registered.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }

    fn on_reg_request(&mut self, hip: &HipPacket, wire: &Packet, ctx: &mut Ctx) {
        // The registration must be signed by the key that owns the HIT.
        let Some(hi_bytes) = hip.host_id() else { return };
        let Some(hi) = PublicHi::from_bytes(hi_bytes) else { return };
        if hi.hit() != hip.sender_hit {
            self.rejected += 1;
            return;
        }
        let Some(sig) = hip.signature() else {
            self.rejected += 1;
            return;
        };
        let covered = hip.bytes_before(param_type::HIP_SIGNATURE);
        if !hi.verify(&covered, sig) {
            self.rejected += 1;
            ctx.trace_drop(|| format!("rvs: bad registration signature from {:?}", hip.sender_hit));
            return;
        }
        // Replay guard: the signed SEQ must strictly increase per HIT.
        let seq = hip.seq().unwrap_or(0);
        if let Some(&last) = self.reg_seq.get(&hip.sender_hit) {
            if seq <= last {
                self.rejected += 1;
                ctx.trace_drop(|| {
                    format!("rvs: stale registration seq {seq} (have {last}) from {:?}", hip.sender_hit)
                });
                return;
            }
        }
        self.reg_seq.insert(hip.sender_hit, seq);
        let locator = hip
            .locators()
            .first()
            .copied()
            .unwrap_or(wire.src);
        self.registrations.insert(hip.sender_hit, locator);
        let resp = HipPacket::new(PacketType::RegResponse, hip.sender_hit, hip.sender_hit, vec![]);
        ctx.transmit(self.link, Packet::new(self.addr, wire.src, Payload::HipControl(resp.encode())));
        ctx.trace_state(|| format!("rvs: registered {:?} at {locator}", hip.sender_hit));
    }

    fn on_i1(&mut self, hip: &HipPacket, wire: &Packet, ctx: &mut Ctx) {
        let Some(&locator) = self.registrations.get(&hip.receiver_hit) else {
            ctx.trace_drop(|| format!("rvs: no registration for {:?}", hip.receiver_hit));
            return;
        };
        // Relay with FROM (initiator's locator) and VIA_RVS (ours).
        let mut params = hip.params.clone();
        params.push(Param::From(encode_locator(&wire.src)));
        params.push(Param::ViaRvs(encode_locator(&self.addr)));
        let relayed = HipPacket::new(PacketType::I1, hip.sender_hit, hip.receiver_hit, params);
        self.relayed += 1;
        ctx.transmit(self.link, Packet::new(self.addr, locator, Payload::HipControl(relayed.encode())));
    }
}

impl Node for RendezvousServer {
    fn handle_packet(&mut self, _iface: usize, pkt: Packet, ctx: &mut Ctx) {
        let Payload::HipControl(bytes) = &pkt.payload else { return };
        let Some(hip) = HipPacket::decode(bytes) else { return };
        match hip.packet_type {
            PacketType::RegRequest => self.on_reg_request(&hip, &pkt, ctx),
            PacketType::I1 => self.on_i1(&hip, &pkt, ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::HostIdentity;
    use crate::wire::decode_locator;
    use netsim::packet::v4;
    use rand::SeedableRng;

    fn make_signed_reg(id: &HostIdentity, locator: IpAddr, rng: &mut rand::rngs::StdRng) -> HipPacket {
        let mut params = vec![
            Param::HostId(id.public().to_bytes()),
            Param::Locator(vec![encode_locator(&locator)]),
        ];
        let unsigned = HipPacket::new(PacketType::RegRequest, id.hit(), Hit::NULL, params.clone());
        let covered = unsigned.bytes_before(param_type::HIP_SIGNATURE);
        params.push(Param::Signature(id.sign(&covered, rng)));
        HipPacket::new(PacketType::RegRequest, id.hit(), Hit::NULL, params)
    }

    #[test]
    fn registration_requires_valid_signature() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let id = HostIdentity::generate_rsa(512, &mut rng);
        let mut sim = netsim::Sim::new(1);
        struct Sink;
        impl Node for Sink {
            fn handle_packet(&mut self, _: usize, _: Packet, _: &mut Ctx) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let sink = sim.world.add_node(Box::new(Sink));
        let rvs_addr = v4(10, 0, 0, 9);
        let rvs = sim.world.add_node(Box::new(RendezvousServer::new(rvs_addr, LinkId(0))));
        sim.world.connect(
            netsim::Endpoint { node: rvs, iface: 0 },
            netsim::Endpoint { node: sink, iface: 0 },
            netsim::LinkParams::datacenter(),
        );

        let good = make_signed_reg(&id, v4(10, 0, 0, 5), &mut rng);
        let bad = {
            // Tamper with the advertised locator after signing.
            let mut params = good.params.clone();
            for p in &mut params {
                if let Param::Locator(l) = p {
                    l[0] = encode_locator(&v4(66, 6, 6, 6));
                }
            }
            HipPacket::new(PacketType::RegRequest, id.hit(), Hit::NULL, params)
        };
        sim.schedule(
            netsim::SimDuration::ZERO,
            netsim::Event::PacketArrive {
                node: rvs,
                iface: 0,
                pkt: Packet::new(v4(10, 0, 0, 5), rvs_addr, Payload::HipControl(good.encode())),
            },
        );
        sim.schedule(
            netsim::SimDuration::ZERO,
            netsim::Event::PacketArrive {
                node: rvs,
                iface: 0,
                pkt: Packet::new(v4(10, 0, 0, 5), rvs_addr, Payload::HipControl(bad.encode())),
            },
        );
        assert!(sim.run_to_quiescence(100).is_quiescent());
        let server = sim.world.node::<RendezvousServer>(rvs).unwrap();
        assert_eq!(server.len(), 1);
        assert_eq!(server.registration(&id.hit()), Some(v4(10, 0, 0, 5)));
        assert_eq!(server.rejected, 1);
    }

    #[test]
    fn i1_relayed_with_from_param() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let responder = HostIdentity::generate_rsa(512, &mut rng);
        let initiator_hit = Hit([3; 16]);

        struct Capture {
            got: Vec<Packet>,
        }
        impl Node for Capture {
            fn handle_packet(&mut self, _: usize, pkt: Packet, _: &mut Ctx) {
                self.got.push(pkt);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = netsim::Sim::new(2);
        let cap = sim.world.add_node(Box::new(Capture { got: vec![] }));
        let rvs_addr = v4(10, 0, 0, 9);
        let rvs = sim.world.add_node(Box::new(RendezvousServer::new(rvs_addr, LinkId(0))));
        sim.world.connect(
            netsim::Endpoint { node: rvs, iface: 0 },
            netsim::Endpoint { node: cap, iface: 0 },
            netsim::LinkParams::datacenter(),
        );
        // Register the responder.
        let reg = make_signed_reg(&responder, v4(10, 0, 0, 7), &mut rng);
        sim.schedule(
            netsim::SimDuration::ZERO,
            netsim::Event::PacketArrive {
                node: rvs,
                iface: 0,
                pkt: Packet::new(v4(10, 0, 0, 7), rvs_addr, Payload::HipControl(reg.encode())),
            },
        );
        // Initiator's I1 toward the responder HIT arrives at the RVS.
        let i1 = HipPacket::new(PacketType::I1, initiator_hit, responder.hit(), vec![]);
        sim.schedule(
            netsim::SimDuration::from_millis(1),
            netsim::Event::PacketArrive {
                node: rvs,
                iface: 0,
                pkt: Packet::new(v4(192, 0, 2, 33), rvs_addr, Payload::HipControl(i1.encode())),
            },
        );
        assert!(sim.run_to_quiescence(100).is_quiescent());
        let capture = sim.world.node::<Capture>(cap).unwrap();
        let relayed = capture
            .got
            .iter()
            .filter_map(|p| match &p.payload {
                Payload::HipControl(b) => HipPacket::decode(b),
                _ => None,
            })
            .find(|h| h.packet_type == PacketType::I1)
            .expect("I1 relayed");
        assert_eq!(relayed.receiver_hit, responder.hit());
        let from = relayed
            .find(|p| match p {
                Param::From(a) => Some(decode_locator(a)),
                _ => None,
            })
            .expect("FROM parameter present");
        assert_eq!(from, v4(192, 0, 2, 33));
        assert_eq!(sim.world.node::<RendezvousServer>(rvs).unwrap().relayed, 1);
    }
}
