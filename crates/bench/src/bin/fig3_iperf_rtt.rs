//! Regenerates **Figure 3**: iperf TCP bandwidth and ICMP RTT between
//! two EC2 VMs for LSI(IPv4), Teredo, IPv4, HIT(IPv4), HIT(Teredo) and
//! LSI(Teredo) connectivity (20 echo requests for the RTT series, as in
//! the paper).
//!
//! Usage: `cargo run -p bench --release --bin fig3_iperf_rtt [--quick] [--trace-out <path>]`

use bench::fig3::{rtt_obs, run_all_cells, Fig3Mode};
use bench::report::{bar, manifest, table, trace_out, write_csv, write_manifest};
use netsim::SimDuration;
use std::time::Instant;

fn main() {
    let seed = 42u64;
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { SimDuration::from_secs(3) } else { SimDuration::from_secs(10) };
    eprintln!(
        "fig3: iperf ({}s transfer) + 20-ping RTT across 6 modes (parallel)...",
        duration.as_secs_f64()
    );
    let wall_start = Instant::now();
    let cells = run_all_cells(seed, duration, 20);
    let wall = wall_start.elapsed().as_secs_f64();
    let points: Vec<_> = cells.iter().map(|c| c.point).collect();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mode.label().to_string(),
                format!("{:.1}", p.mbits),
                format!("{:.2}", p.rtt_ms),
                format!("{}/20", p.pings_received),
            ]
        })
        .collect();
    println!("\nFigure 3 — iperf bandwidth and ICMP RTT between two EC2 VMs:");
    println!("{}", table(&["mode", "iperf Mbit/s", "RTT ms", "pings"], &rows));
    if let Ok(path) = write_csv("fig3_iperf_rtt", &["mode", "iperf_mbits", "rtt_ms", "pings"], &rows) {
        eprintln!("wrote {}", path.display());
    }
    for c in &cells {
        let mut m = manifest("fig3_iperf_rtt", c.point.mode.label(), seed);
        m.num("iperf_secs", duration.as_secs_f64())
            .num("ping_count", 20)
            .num("iperf_mbits", format!("{:.2}", c.point.mbits))
            .num("rtt_ms", format!("{:.3}", c.point.rtt_ms));
        match write_manifest(m, wall, c.dispatched, &c.metrics) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("manifest write failed: {e}"),
        }
    }

    let max_bw = points.iter().map(|p| p.mbits).fold(0.0, f64::max);
    let max_rtt = points.iter().map(|p| p.rtt_ms).fold(0.0, f64::max);
    println!("bandwidth:");
    for p in &points {
        println!("  {:>12} | {} {:.1}", p.mode.label(), bar(p.mbits, max_bw, 36), p.mbits);
    }
    println!("RTT:");
    for p in &points {
        println!("  {:>12} | {} {:.2}", p.mode.label(), bar(p.rtt_ms, max_rtt, 36), p.rtt_ms);
    }
    println!("\npaper (Fig. 3): plain IPv4 is the fastest path; HIT(IPv4) close behind;");
    println!("\"LSI translation is slower than with HITs due to some extra processing");
    println!("overhead, while Teredo has the worst latency\" — the Teredo modes pay the");
    println!("external relay detour in both bandwidth and RTT.");
    let _ = Fig3Mode::ALL;

    if let Some(path) = trace_out() {
        eprintln!("tracing an LSI(IPv4) RTT run for {}...", path.display());
        let (_, _, _, trace) = rtt_obs(Fig3Mode::LsiIpv4, seed ^ 1, 20, 200_000);
        match trace.write_jsonl(&path) {
            Ok(()) => eprintln!(
                "wrote {} trace records to {} ({} dropped at cap)",
                trace.entries().len(),
                path.display(),
                trace.truncated()
            ),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}
