//! Datapath batching benchmark: events dispatched per megabyte moved.
//!
//! A single bulk TCP flow between two EC2-style VMs (the Figure 3
//! topology, minus Teredo), run once per GSO mode and once per
//! scenario:
//!
//! - **basic** — plain TCP over IPv4.
//! - **hip** — TCP over HIP/ESP with HIT addressing (every frame
//!   encrypted; batched frames share one AES-CBC/HMAC pass).
//!
//! [`GsoMode::Off`] is the per-MSS reference datapath, [`GsoMode::Exact`]
//! is the default batched datapath (bit-identical event schedule by
//! construction — the interesting wins are the single-pass crypto and
//! same-tick dispatch coalescing), and [`GsoMode::Merged`] is the
//! opt-in GRO mode that delivers surviving frame runs as one arrival,
//! collapsing the event count.
//!
//! The headline acceptance number: Merged mode must dispatch at least
//! 2x fewer events per MB than Off on the basic bulk scenario. Event
//! counts are deterministic (same seed, same schedule), so the
//! assertion is immune to wall-clock noise.
//!
//! Writes `results/datapath_perf.json` plus a run manifest, and prints
//! a perf-trajectory table against the previously committed JSON.
//!
//! Usage: `cargo run -p bench --release --bin datapath_perf [-- --quick]`

use bench::datapath::bulk_transfer;
use bench::report::{manifest, table, write_manifest};
use netsim::tcp::GsoMode;
use std::time::Instant;

const SEED: u64 = 42;

fn mode_name(gso: GsoMode) -> &'static str {
    match gso {
        GsoMode::Off => "off",
        GsoMode::Exact => "exact",
        GsoMode::Merged => "merged",
    }
}

/// One (scenario, mode) measurement.
struct Row {
    scenario: &'static str,
    gso: GsoMode,
    bytes: u64,
    dispatched: u64,
    packet_events: u64,
    coalesced_runs: u64,
    coalesced_events: u64,
    wall: f64,
    goodput_mbits: f64,
    metrics: obs::MetricsRegistry,
}

impl Row {
    fn events_per_mb(&self) -> f64 {
        self.dispatched as f64 / (self.bytes as f64 / 1e6)
    }
}

/// Runs one bulk transfer and collects its counters.
fn run(hip: bool, gso: GsoMode, bytes: u64) -> Row {
    let start = Instant::now();
    let out = bulk_transfer(hip, gso, bytes, SEED);
    let wall = start.elapsed().as_secs_f64();
    Row {
        scenario: if hip { "hip" } else { "basic" },
        gso,
        bytes,
        dispatched: out.stats.dispatched,
        packet_events: out.metrics.counter_value("engine.ev.packet").unwrap_or(0),
        coalesced_runs: out.stats.coalesced_runs,
        coalesced_events: out.stats.coalesced_events,
        wall,
        goodput_mbits: out.goodput_mbits,
        metrics: out.metrics,
    }
}

/// Pulls `"key": <number>` out of a flat JSON blob (the previous run's
/// results file) without a JSON dependency.
fn json_num(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let bytes: u64 = if quick { 2 * 1024 * 1024 } else { 10 * 1024 * 1024 };
    let reps = if quick { 1 } else { 2 };

    // Read the committed baseline *before* overwriting it.
    let prev = std::fs::read_to_string("results/datapath_perf.json").ok();
    let prev_engine = std::fs::read_to_string("results/engine_perf.json").ok();

    println!(
        "datapath batching: single bulk flow, {} MB, basic + hip, gso off/exact/merged",
        bytes / (1024 * 1024)
    );

    let mut rows: Vec<Row> = Vec::new();
    for hip in [false, true] {
        for gso in [GsoMode::Off, GsoMode::Exact, GsoMode::Merged] {
            // Wall time is best-of-N on a shared machine; the event
            // counters are deterministic and identical across reps.
            let mut best = run(hip, gso, bytes);
            for _ in 1..reps {
                let again = run(hip, gso, bytes);
                assert_eq!(again.dispatched, best.dispatched, "same seed must replay identically");
                if again.wall < best.wall {
                    best = again;
                }
            }
            rows.push(best);
        }
    }

    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                mode_name(r.gso).to_string(),
                format!("{:.1}", r.bytes as f64 / 1e6),
                r.dispatched.to_string(),
                r.packet_events.to_string(),
                format!("{:.0}", r.events_per_mb()),
                format!("{}/{}", r.coalesced_runs, r.coalesced_events),
                format!("{:.3}", r.wall),
                format!("{:.1}", r.goodput_mbits),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "scenario", "gso", "MB", "events", "pkt events", "ev/MB", "coalesced r/e",
                "wall s", "Mbit/s"
            ],
            &display
        )
    );

    let pick = |scenario: &str, gso: GsoMode| -> &Row {
        rows.iter().find(|r| r.scenario == scenario && r.gso == gso).expect("row exists")
    };

    // Acceptance: batching must collapse the event count on bulk flows.
    let basic_off = pick("basic", GsoMode::Off);
    let basic_merged = pick("basic", GsoMode::Merged);
    let reduction = basic_off.events_per_mb() / basic_merged.events_per_mb();
    println!(
        "basic bulk: {:.0} ev/MB unbatched vs {:.0} ev/MB merged — {reduction:.1}x fewer events",
        basic_off.events_per_mb(),
        basic_merged.events_per_mb()
    );
    assert!(
        reduction >= 2.0,
        "merged GSO/GRO must dispatch >= 2x fewer events per MB than the per-MSS \
         datapath (got {reduction:.2}x)"
    );
    // Exact mode replays Off's event schedule bit-for-bit; its win is
    // one crypto pass per batch + same-tick dispatch coalescing.
    let basic_exact = pick("basic", GsoMode::Exact);
    assert_eq!(
        basic_exact.dispatched, basic_off.dispatched,
        "Exact GSO must preserve the unbatched event schedule"
    );
    assert_eq!(
        pick("hip", GsoMode::Exact).dispatched,
        pick("hip", GsoMode::Off).dispatched,
        "Exact GSO must preserve the unbatched event schedule over ESP too"
    );
    // Same-tick coalescing shows up where arrivals share a timestamp:
    // ESP frames charged the same CPU delay land back-to-back. (On the
    // plain path, link serialization spaces every frame apart.)
    assert!(
        pick("hip", GsoMode::Exact).coalesced_events > 0,
        "same-tick coalescing must batch at least some back-to-back arrivals"
    );

    // Perf trajectory vs the committed baseline.
    let mut traj: Vec<Vec<String>> = Vec::new();
    let mut trend = |name: &str, baseline: Option<f64>, now: f64, better_low: bool| {
        let delta = baseline.map_or("first run".to_string(), |b| {
            if b == 0.0 {
                "n/a".to_string()
            } else {
                let pct = (now / b - 1.0) * 100.0;
                let verdict = if pct.abs() < 0.05 {
                    "(equal)"
                } else if (pct < 0.0) == better_low {
                    "(better)"
                } else {
                    "(worse)"
                };
                format!("{pct:+.1}% {verdict}")
            }
        });
        traj.push(vec![
            name.to_string(),
            baseline.map_or("-".to_string(), |b| format!("{b:.0}")),
            format!("{now:.0}"),
            delta,
        ]);
    };
    trend(
        "basic merged ev/MB",
        prev.as_deref().and_then(|t| json_num(t, "basic_merged_events_per_mb")),
        basic_merged.events_per_mb(),
        true,
    );
    trend(
        "basic off ev/MB",
        prev.as_deref().and_then(|t| json_num(t, "basic_off_events_per_mb")),
        basic_off.events_per_mb(),
        true,
    );
    trend(
        "hip exact ev/MB",
        prev.as_deref().and_then(|t| json_num(t, "hip_exact_events_per_mb")),
        pick("hip", GsoMode::Exact).events_per_mb(),
        true,
    );
    println!("perf trajectory vs committed results/:");
    println!("{}", table(&["metric", "baseline", "now", "delta"], &traj));
    if let Some(eps) = prev_engine.as_deref().and_then(|t| json_num(t, "events_per_sec")) {
        println!("(committed engine_perf baseline: {eps:.0} events/sec end-to-end)");
    }

    std::fs::create_dir_all("results").expect("mkdir results");
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"scenario\": \"{}\", \"gso\": \"{}\", \"bytes\": {}, \
                 \"dispatched_events\": {}, \"packet_events\": {}, \
                 \"events_per_mb\": {:.1}, \"coalesced_runs\": {}, \
                 \"coalesced_events\": {}, \"wall_seconds\": {:.4}, \
                 \"goodput_mbits\": {:.2}}}",
                r.scenario,
                mode_name(r.gso),
                r.bytes,
                r.dispatched,
                r.packet_events,
                r.events_per_mb(),
                r.coalesced_runs,
                r.coalesced_events,
                r.wall,
                r.goodput_mbits,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bulk_bytes\": {bytes},\n  \"rows\": [\n{}\n  ],\n  \
         \"basic_off_events_per_mb\": {:.1},\n  \
         \"basic_exact_events_per_mb\": {:.1},\n  \
         \"basic_merged_events_per_mb\": {:.1},\n  \
         \"hip_off_events_per_mb\": {:.1},\n  \
         \"hip_exact_events_per_mb\": {:.1},\n  \
         \"merged_event_reduction\": {reduction:.2}\n}}\n",
        row_json.join(",\n"),
        basic_off.events_per_mb(),
        basic_exact.events_per_mb(),
        basic_merged.events_per_mb(),
        pick("hip", GsoMode::Off).events_per_mb(),
        pick("hip", GsoMode::Exact).events_per_mb(),
    );
    std::fs::write("results/datapath_perf.json", json).expect("write results/datapath_perf.json");
    println!("wrote results/datapath_perf.json");

    let mut merged_metrics = obs::MetricsRegistry::new();
    let mut total_wall = 0.0;
    let mut total_dispatched = 0;
    for r in &rows {
        merged_metrics.merge(&r.metrics);
        total_wall += r.wall;
        total_dispatched += r.dispatched;
    }
    let mut m = manifest("datapath_perf", if quick { "quick" } else { "default" }, SEED);
    m.num("bulk_bytes", bytes)
        .num("basic_off_events_per_mb", format!("{:.1}", basic_off.events_per_mb()))
        .num("basic_merged_events_per_mb", format!("{:.1}", basic_merged.events_per_mb()))
        .num("merged_event_reduction", format!("{reduction:.2}"));
    match write_manifest(m, total_wall, total_dispatched, &merged_metrics) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("manifest write failed: {e}"),
    }
}
