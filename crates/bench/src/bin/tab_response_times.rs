//! Regenerates the §V-B response-time comparison: httperf at 120
//! requests/second against a single web server + database (MySQL query
//! cache enabled). The paper reports mean response times of
//! **116.4 ms (Basic), 132.2 ms (HIP), 128.3 ms (SSL)**.
//!
//! Also reports per-stage latency quantiles per scenario and writes one
//! run manifest per scenario under `results/`.
//!
//! Usage: `cargo run -p bench --release --bin tab_response_times [--quick] [--trace-out <path>]`

use bench::report::{manifest, stage_table, table, trace_out, write_csv, write_manifest};
use bench::tab_rt::{run_all_cells, run_cell, PAPER_RATE};
use netsim::SimDuration;
use std::time::Instant;
use websvc::Scenario;

const STAGES: [&str; 7] = [
    "hip.bex",
    "esp.encrypt",
    "esp.decrypt",
    "tcp.connect",
    "web.render",
    "db.service",
    "client.latency",
];

fn main() {
    let seed = 42u64;
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick {
        (SimDuration::from_secs(5), SimDuration::from_secs(20))
    } else {
        (SimDuration::from_secs(10), SimDuration::from_secs(60))
    };
    eprintln!(
        "tab_rt: httperf at {PAPER_RATE} req/s, 3 scenarios ({}s + {}s each; parallel)...",
        warmup.as_secs_f64(),
        measure.as_secs_f64()
    );
    let wall_start = Instant::now();
    let cells = run_all_cells(PAPER_RATE, seed, warmup, measure);
    let wall = wall_start.elapsed().as_secs_f64();
    let rows: Vec<_> = cells.iter().map(|c| c.row).collect();
    let paper = [("Basic", 116.4), ("HIP", 132.2), ("SSL", 128.3)];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper_ms = paper
                .iter()
                .find(|(n, _)| *n == r.scenario.label())
                .map(|(_, v)| format!("{v:.1}"))
                .unwrap_or_default();
            vec![
                r.scenario.label().to_string(),
                format!("{}", r.completed),
                format!("{:.1}", r.mean_ms),
                format!("{:.1}", r.stddev_ms),
                format!("{:.1}", r.p99_ms),
                paper_ms,
            ]
        })
        .collect();
    println!("\nResponse times at {PAPER_RATE} req/s (single web server, query cache ON):");
    println!(
        "{}",
        table(
            &["scenario", "completed", "mean ms", "stddev ms", "p99 ms", "paper mean ms"],
            &table_rows
        )
    );
    if let Ok(path) = write_csv(
        "tab_response_times",
        &["scenario", "completed", "mean_ms", "stddev_ms", "p99_ms", "paper_mean_ms"],
        &table_rows,
    ) {
        eprintln!("wrote {}", path.display());
    }
    for c in &cells {
        println!("per-stage latency, {}:", c.row.scenario.label());
        match stage_table(&c.metrics, &STAGES) {
            Some(t) => println!("{t}"),
            None => println!("  (no stage histograms recorded)"),
        }
        let mut m = manifest("tab_response_times", c.row.scenario.label(), seed);
        m.num("rate", PAPER_RATE)
            .num("warmup_secs", warmup.as_secs_f64())
            .num("measure_secs", measure.as_secs_f64())
            .num("completed", c.row.completed);
        match write_manifest(m, wall, c.dispatched, &c.metrics) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("manifest write failed: {e}"),
        }
    }
    println!("paper: \"the response times and standard deviations were largely");
    println!("comparable... the performance degradation of HIP in comparison with");
    println!("SSL was largely due to the LSIs, used mainly for legacy compatibility\".");
    println!("The reproduction preserves the ordering Basic < SSL < HIP; absolute");
    println!("values differ (our base path is leaner than the paper's full LAMP stack).");

    if let Some(path) = trace_out() {
        eprintln!("tracing a representative HIP run for {}...", path.display());
        let cell = run_cell(
            Scenario::HipLsi,
            PAPER_RATE,
            seed,
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            200_000,
        );
        match cell.trace.write_jsonl(&path) {
            Ok(()) => eprintln!(
                "wrote {} trace records to {} ({} dropped at cap)",
                cell.trace.entries().len(),
                path.display(),
                cell.trace.truncated()
            ),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}
