//! Regenerates the §V-B response-time comparison: httperf at 120
//! requests/second against a single web server + database (MySQL query
//! cache enabled). The paper reports mean response times of
//! **116.4 ms (Basic), 132.2 ms (HIP), 128.3 ms (SSL)**.
//!
//! Usage: `cargo run -p bench --release --bin tab_response_times [--quick]`

use bench::report::{table, write_csv};
use bench::tab_rt::{run_all, PAPER_RATE};
use netsim::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick {
        (SimDuration::from_secs(5), SimDuration::from_secs(20))
    } else {
        (SimDuration::from_secs(10), SimDuration::from_secs(60))
    };
    eprintln!(
        "tab_rt: httperf at {PAPER_RATE} req/s, 3 scenarios ({}s + {}s each; parallel)...",
        warmup.as_secs_f64(),
        measure.as_secs_f64()
    );
    let rows = run_all(PAPER_RATE, 42, warmup, measure);
    let paper = [("Basic", 116.4), ("HIP", 132.2), ("SSL", 128.3)];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper_ms = paper
                .iter()
                .find(|(n, _)| *n == r.scenario.label())
                .map(|(_, v)| format!("{v:.1}"))
                .unwrap_or_default();
            vec![
                r.scenario.label().to_string(),
                format!("{}", r.completed),
                format!("{:.1}", r.mean_ms),
                format!("{:.1}", r.stddev_ms),
                format!("{:.1}", r.p99_ms),
                paper_ms,
            ]
        })
        .collect();
    println!("\nResponse times at {PAPER_RATE} req/s (single web server, query cache ON):");
    println!(
        "{}",
        table(
            &["scenario", "completed", "mean ms", "stddev ms", "p99 ms", "paper mean ms"],
            &table_rows
        )
    );
    if let Ok(path) = write_csv(
        "tab_response_times",
        &["scenario", "completed", "mean_ms", "stddev_ms", "p99_ms", "paper_mean_ms"],
        &table_rows,
    ) {
        eprintln!("wrote {}", path.display());
    }
    println!("paper: \"the response times and standard deviations were largely");
    println!("comparable... the performance degradation of HIP in comparison with");
    println!("SSL was largely due to the LSIs, used mainly for legacy compatibility\".");
    println!("The reproduction preserves the ordering Basic < SSL < HIP; absolute");
    println!("values differ (our base path is leaner than the paper's full LAMP stack).");
}
