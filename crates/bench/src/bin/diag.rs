//! Scratch diagnostic: CPU accounting under each scenario.

use cloudsim::Flavor;
use netsim::{SimDuration, SimTime};
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::JmeterApp;
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

fn tab_rt() {
    use websvc::loadgen::HttperfApp;
    for scenario in [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl] {
        let cfg = RubisConfig::tab_rt(scenario, 42);
        let (users, items) = (cfg.users, cfg.items);
        let mut dep = deploy_rubis(cfg);
        let gen_host = dep.topo.add_external_host("httperf", Flavor::Dedicated);
        let mut app = HttperfApp::new(dep.frontend, 120.0, WorkloadMix::read_only(), users, items);
        app.measure_from = SimTime::ZERO + SimDuration::from_secs(10);
        let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
        dep.topo.sim.run_until(SimTime::ZERO + SimDuration::from_secs(40));
        let gen = dep.topo.host(gen_host).app::<HttperfApp>(idx).unwrap();
        let web = dep.topo.host(dep.webs[0]);
        println!(
            "TAB {:8} completed={} mean={:.1}ms sd={:.1} web_busy={:.1}% errors={}",
            scenario.label(),
            gen.completed,
            gen.latency.mean(),
            gen.latency.stddev(),
            web.core.cpu.busy_time().as_secs_f64() / 40.0 * 100.0,
            gen.errors,
        );
    }
}

fn main() {
    tab_rt();
    for scenario in [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl] {
        let cfg = RubisConfig::fig2(scenario, 42);
        let (users, items) = (cfg.users, cfg.items);
        let mut dep = deploy_rubis(cfg);
        let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
        let mut app = JmeterApp::new(dep.frontend, 50, WorkloadMix::default(), users, items);
        app.measure_from = SimTime::ZERO + SimDuration::from_secs(8);
        let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
        dep.topo.sim.run_until(SimTime::ZERO + SimDuration::from_secs(16));
        let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).unwrap();
        println!(
            "{:8} completed={} ({:.0} req/s) mean_lat={:.1}ms",
            scenario.label(),
            gen.completed,
            gen.completed as f64 / 8.0,
            gen.latency.mean()
        );
        for (i, w) in dep.webs.iter().enumerate() {
            let h = dep.topo.host(*w);
            let webapp = h.app::<websvc::webserver::WebServerApp>(0).unwrap();
            println!(
                "  web{i}: busy={:.2}s credits={:?} reqs={} resp={}",
                h.core.cpu.busy_time().as_secs_f64(),
                h.core.cpu.credits(),
                webapp.stats.requests,
                webapp.stats.responses,
            );
            if let Some(shim) = h.shim::<hip_core::HipShim>() {
                println!(
                    "    hip: esp_in={} esp_out={} bytes_in={} bytes_out={}",
                    shim.stats.esp_in, shim.stats.esp_out, shim.stats.esp_bytes_in, shim.stats.esp_bytes_out
                );
            }
        }
        let db = dep.topo.host(dep.db);
        println!(
            "  db: busy={:.2}s queries={}",
            db.core.cpu.busy_time().as_secs_f64(),
            db.app::<websvc::db::DbServerApp>(0).unwrap().stats.queries
        );
        if let Some(lb) = dep.lb {
            let h = dep.topo.host(lb);
            println!("  lb: busy={:.2}s", h.core.cpu.busy_time().as_secs_f64());
        }
    }
}
