//! TCP loss-recovery stress tool: sweeps thousands of seeds over a
//! 15%-loss link and verifies TCP's exactly-once, in-order delivery
//! contract on every one. Pass a seed argument to re-run one world with
//! packet tracing.
//!
//! Usage: `cargo run -p bench --release --bin tcploss_scan [seed] [--trace-out <path>]`
//!
//! Writes a run manifest to `results/tcploss_scan-scan.json`; with a
//! debug seed, `--trace-out` exports that run's typed trace as JSONL.
use bench::report::{manifest, trace_out, write_manifest};
use netsim::host::{App, AppEvent, Host, HostApi};
use netsim::link::{Endpoint, LinkParams};
use netsim::packet::v4;
use netsim::tcp::TcpEvent;
use netsim::{Sim, SimDuration, SimTime};
use std::any::Any;
use std::net::IpAddr;

struct Sender { target: IpAddr, data: Vec<u8> }
impl App for Sender {
    fn start(&mut self, api: &mut HostApi) { api.tcp_connect(self.target, 7).unwrap(); }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Connected(s)) = ev {
            let d = self.data.clone();
            api.tcp_send(s, &d);
            api.tcp_close(s);
        }
    }
    fn as_any(&self) -> &dyn Any { self }
    fn as_any_mut(&mut self) -> &mut dyn Any { self }
}
struct Receiver { got: Vec<u8> }
impl App for Receiver {
    fn start(&mut self, api: &mut HostApi) { api.tcp_listen(7); }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Data(s)) | AppEvent::Tcp(TcpEvent::PeerClosed(s)) => self.got.extend(api.tcp_recv(s)),
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any { self }
    fn as_any_mut(&mut self) -> &mut dyn Any { self }
}

fn main() {
    let debug_seed: Option<u64> = std::env::args().nth(1).and_then(|a| a.parse().ok());
    let trace_path = trace_out();
    let wall_start = std::time::Instant::now();
    let mut scanned = 0u64;
    let mut mismatches = 0u64;
    let mut total_events = 0u64;
    let mut total_metrics = obs::MetricsRegistry::new();
    for seed in debug_seed.map(|s| s..s+1).unwrap_or(0..2000u64) {
        let data: Vec<u8> = (0..5000u32).map(|i| ((i * 7 + seed as u32) % 251) as u8).collect();
        let mut sim = Sim::new(seed);
        if debug_seed.is_some() { sim.trace = netsim::trace::Trace::enabled(100000); }
        let mut ha = Host::new("a");
        ha.add_app(Box::new(Sender { target: v4(10,0,0,2), data: data.clone() }));
        let mut hb = Host::new("b");
        let recv = hb.add_app(Box::new(Receiver { got: vec![] }));
        let a = sim.world.add_node(Box::new(ha));
        let b = sim.world.add_node(Box::new(hb));
        let params = LinkParams::datacenter().with_loss(0.15).with_latency(SimDuration::from_micros(300)).with_jitter(SimDuration::from_micros(400));
        let link = sim.world.connect(Endpoint{node:a,iface:0},Endpoint{node:b,iface:0},params);
        sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![v4(10,0,0,1)]);
        sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![v4(10,0,0,2)]);
        sim.run_until(SimTime(400_000_000_000));
        let got = &sim.world.node::<Host>(b).unwrap().app::<Receiver>(recv).unwrap().got;
        if debug_seed.is_some() {
            for e in sim.trace.entries() {
                let tcp = matches!(e.data.pkt(), Some(p) if p.proto == 6);
                if tcp || e.kind == netsim::trace::TraceKind::Drop {
                    println!("{:>10.4} n{} {:?} {}", e.at.as_secs_f64(), e.node.0, e.kind, e.detail());
                }
            }
            if let Some(path) = &trace_path {
                match sim.trace.write_jsonl(path) {
                    Ok(()) => eprintln!(
                        "wrote {} trace records to {} ({} dropped at cap)",
                        sim.trace.entries().len(),
                        path.display(),
                        sim.trace.truncated()
                    ),
                    Err(e) => eprintln!("trace write failed: {e}"),
                }
            }
        }
        scanned += 1;
        if got != &data {
            mismatches += 1;
            let prefix = got.len() <= data.len() && data[..got.len()] == got[..];
            println!("seed {seed}: MISMATCH got {} of {} bytes, prefix_ok={prefix}", got.len(), data.len());
            if !prefix {
                let first_bad = got.iter().zip(&data).position(|(a,b)| a!=b);
                println!("  first differing byte at {:?}", first_bad);
            }
        }
        total_events += sim.stats().dispatched;
        total_metrics.merge(&sim.take_metrics());
    }
    println!("scan done");
    let mut m = manifest("tcploss_scan", "scan", debug_seed.unwrap_or(0));
    m.num("worlds", scanned).num("mismatches", mismatches);
    match write_manifest(m, wall_start.elapsed().as_secs_f64(), total_events, &total_metrics) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("manifest write failed: {e}"),
    }
}
