//! Crypto fast-path benchmark: measures the symmetric primitives the
//! data plane spends its cycles in, fast path against the retained
//! byte-wise/one-shot reference, so speedups (and regressions) are
//! visible across PRs.
//!
//! Four measurements:
//!
//! 1. **AES-128-CBC** — encrypt + decrypt MB/s, T-table fast path vs
//!    the byte-wise reference cipher (same `Aes128` key schedule, the
//!    thread-local reference switch selects the implementation).
//! 2. **AES-128-CTR** — keystream application MB/s, same comparison.
//! 3. **HMAC-SHA-256** — ops/s at ESP-typical message sizes (64 B
//!    control-packet scale, 1500 B MTU scale): per-SA cached
//!    [`HmacKey`] transcripts vs a fresh key absorption per MAC.
//! 4. **HIP puzzle** — solves/s at a fixed difficulty: midstate-reused
//!    solver vs re-hashing all four segments per candidate `J`.
//!
//! Every comparison first asserts the two paths produce identical
//! bytes, then reports the throughput ratio. Writes
//! `results/crypto_perf.json` plus a run manifest.
//!
//! Usage: `cargo run -p bench --release --bin crypto_perf [-- quick]`

use bench::report::{manifest, write_manifest};
use hip_core::identity::Hit;
use hip_core::puzzle;
use sim_crypto::aes::{set_reference_mode, Aes128};
use sim_crypto::hmac::{hmac_sha256, HmacKey};
use std::time::Instant;

/// xorshift64*: deterministic payload bytes without a RNG dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len).map(|_| (xorshift(&mut state) >> 32) as u8).collect()
}

/// Best-of-`reps` wall-clock for `f`, returning work-units per second.
/// The fastest pass is the least-interference estimate on a shared box.
fn best_rate(reps: usize, units: f64, mut f: impl FnMut()) -> f64 {
    let mut best = 0f64;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let secs = start.elapsed().as_secs_f64();
        best = best.max(units / secs);
    }
    best
}

struct Comparison {
    name: &'static str,
    unit: &'static str,
    fast: f64,
    reference: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.fast / self.reference
    }
    fn print(&self) {
        println!(
            "  {:<28} fast {:>12.1} {unit}  reference {:>12.1} {unit}  speedup {:.2}x",
            self.name,
            self.fast,
            self.reference,
            self.speedup(),
            unit = self.unit,
        );
    }
    fn json(&self) -> String {
        format!(
            "    \"{}\": {{ \"unit\": \"{}\", \"fast\": {:.1}, \"reference\": {:.1}, \"speedup\": {:.3} }}",
            self.name,
            self.unit,
            self.fast,
            self.reference,
            self.speedup()
        )
    }
}

/// AES mode throughput in MB/s, fast vs reference, with an equality
/// check on the produced bytes.
fn aes_comparison(
    name: &'static str,
    buf_len: usize,
    passes: usize,
    reps: usize,
    apply: impl Fn(&Aes128, &mut Vec<u8>),
) -> Comparison {
    let aes = Aes128::new(b"YELLOW SUBMARINE");
    let plaintext = pseudo_bytes(buf_len, 0xC0FF_EE00);
    let mb = (buf_len * passes) as f64 / 1e6;

    // Correctness gate: both paths must emit identical bytes.
    let mut fast_out = plaintext.clone();
    apply(&aes, &mut fast_out);
    set_reference_mode(true);
    let mut ref_out = plaintext.clone();
    apply(&aes, &mut ref_out);
    set_reference_mode(false);
    assert_eq!(fast_out, ref_out, "{name}: fast path and reference diverged");

    let fast = best_rate(reps, mb, || {
        for _ in 0..passes {
            let mut buf = plaintext.clone();
            apply(&aes, &mut buf);
            std::hint::black_box(&buf);
        }
    });
    set_reference_mode(true);
    let reference = best_rate(reps, mb, || {
        for _ in 0..passes {
            let mut buf = plaintext.clone();
            apply(&aes, &mut buf);
            std::hint::black_box(&buf);
        }
    });
    set_reference_mode(false);
    Comparison { name, unit: "MB/s", fast, reference }
}

/// HMAC ops/s at one message size: cached transcripts vs fresh keying.
fn hmac_comparison(name: &'static str, msg_len: usize, ops: usize, reps: usize) -> Comparison {
    let key_bytes = pseudo_bytes(32, 0x5ec2_e7b1);
    let msg = pseudo_bytes(msg_len, 0xDA7A);
    let key = HmacKey::new(&key_bytes);
    assert_eq!(key.mac(&msg), hmac_sha256(&key_bytes, &msg), "{name}: cached key diverged");

    let fast = best_rate(reps, ops as f64, || {
        for _ in 0..ops {
            std::hint::black_box(key.mac(std::hint::black_box(&msg)));
        }
    });
    let reference = best_rate(reps, ops as f64, || {
        for _ in 0..ops {
            std::hint::black_box(hmac_sha256(
                std::hint::black_box(&key_bytes),
                std::hint::black_box(&msg),
            ));
        }
    });
    Comparison { name, unit: "ops/s", fast, reference }
}

/// Brute-force puzzle solver that re-hashes every segment per attempt —
/// what `solve` did before midstate reuse.
fn solve_reference(i: u64, k: u8, hi: &Hit, hr: &Hit, j0: u64) -> (u64, u64) {
    let mut j = j0;
    let mut attempts = 0u64;
    loop {
        attempts += 1;
        if puzzle::verify(i, k, hi, hr, j) {
            return (j, attempts);
        }
        j = j.wrapping_add(1);
    }
}

fn puzzle_comparison(k: u8, puzzles: usize, reps: usize) -> Comparison {
    let hi = Hit([0xaa; 16]);
    let hr = Hit([0xbb; 16]);
    for i in 0..8u64 {
        assert_eq!(
            puzzle::solve(i, k, &hi, &hr, 0),
            solve_reference(i, k, &hi, &hr, 0),
            "puzzle i={i}: midstate solver diverged from reference"
        );
    }
    let fast = best_rate(reps, puzzles as f64, || {
        for i in 0..puzzles as u64 {
            std::hint::black_box(puzzle::solve(i, k, &hi, &hr, 0));
        }
    });
    let reference = best_rate(reps, puzzles as f64, || {
        for i in 0..puzzles as u64 {
            std::hint::black_box(solve_reference(i, k, &hi, &hr, 0));
        }
    });
    Comparison { name: "puzzle_k12", unit: "solves/s", fast, reference }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let reps = if quick { 2 } else { 3 };
    let (aes_passes, hmac_ops, puzzles) = if quick { (8, 20_000, 32) } else { (32, 100_000, 128) };

    let start = Instant::now();
    println!("crypto fast path vs reference ({})", if quick { "quick" } else { "default" });

    let iv = [0u8; 16];
    let comparisons = vec![
        aes_comparison("aes128_cbc_encrypt", 64 * 1024, aes_passes, reps, move |aes, buf| {
            *buf = aes.cbc_encrypt(&iv, buf);
        }),
        aes_comparison("aes128_cbc_decrypt", 64 * 1024, aes_passes, reps, {
            move |aes, buf| {
                // Bench the decrypt direction: pre-encrypt outside the
                // closure would skew the buffer, so round-trip and keep
                // only the decrypt inside the timed region via a
                // prepared ciphertext per call.
                let ct = aes.cbc_encrypt(&iv, buf);
                *buf = aes.cbc_decrypt(&iv, &ct).expect("valid padding");
            }
        }),
        aes_comparison("aes128_ctr", 64 * 1024, aes_passes, reps, move |aes, buf| {
            aes.ctr_apply(&iv, buf);
        }),
        hmac_comparison("hmac_sha256_64B", 64, hmac_ops, reps),
        hmac_comparison("hmac_sha256_1500B", 1500, hmac_ops / 4, reps),
        puzzle_comparison(12, puzzles, reps),
    ];
    for c in &comparisons {
        c.print();
    }
    let wall = start.elapsed().as_secs_f64();

    let cbc_speedup = comparisons[0].speedup();
    let hmac_short_speedup = comparisons[3].speedup();
    println!(
        "  gates: AES-CBC encrypt {cbc_speedup:.2}x (target >= 2.0x), \
         HMAC 64B {hmac_short_speedup:.2}x (target >= 1.3x)"
    );

    std::fs::create_dir_all("results").expect("mkdir results");
    let body: Vec<String> = comparisons.iter().map(Comparison::json).collect();
    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"comparisons\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "default" },
        body.join(",\n")
    );
    std::fs::write("results/crypto_perf.json", json).expect("write results/crypto_perf.json");
    println!("wrote results/crypto_perf.json");

    let mut m = manifest("crypto_perf", if quick { "quick" } else { "default" }, 0);
    for c in &comparisons {
        m.num(&format!("{}_fast", c.name), format!("{:.1}", c.fast))
            .num(&format!("{}_reference", c.name), format!("{:.1}", c.reference))
            .num(&format!("{}_speedup", c.name), format!("{:.3}", c.speedup()));
    }
    match write_manifest(m, wall, 0, &obs::MetricsRegistry::new()) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("manifest write failed: {e}"),
    }
}
