//! DoS ablation (§IV-B: "the BEX also includes a computational puzzle
//! that the server can use to delay clients when it is under heavy
//! load... The puzzle mechanism can also be useful against insider
//! attacks in the cloud").
//!
//! Two measurements:
//!
//! 1. **Asymmetry**: real wall-clock cost of solving a puzzle at
//!    difficulty K versus verifying one — the work an attacker must burn
//!    per forged I2 attempt versus what the responder spends rejecting it.
//! 2. **Flood resilience**: a responder under a garbage-I2 flood (1000
//!    packets/s of bogus solutions) while a legitimate client runs a BEX.
//!    Because the responder checks the puzzle *before* any expensive
//!    cryptography (and R1s are pre-computed), the flood costs it almost
//!    nothing and the legitimate exchange completes normally.
//!
//! Usage: `cargo run -p bench --release --bin ablation_dos [--trace-out <path>]`
//!
//! Writes a run manifest to `results/ablation_dos-flood.json`;
//! `--trace-out` exports the flood run's typed trace as JSONL.

use bench::report::{manifest, table, trace_out, write_manifest};
use hip_core::identity::{Hit, HostIdentity};
use hip_core::wire::{HipPacket, PacketType, Param};
use hip_core::{puzzle, HipConfig, HipShim, PeerInfo};
use netsim::engine::{Ctx, Node, TimerHandle, TimerOwner};
use netsim::host::{App, AppEvent, Host, HostApi};
use netsim::link::LinkId;
use netsim::packet::{v4, Packet, Payload};
use netsim::tcp::TcpEvent;
use netsim::{Endpoint, LinkParams, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;
use std::time::Instant;

/// Floods garbage I2 packets (random HITs, bogus puzzle solutions) at a
/// fixed rate.
struct I2Flooder {
    target: IpAddr,
    target_hit: Hit,
    link: LinkId,
    interval: SimDuration,
    sent: u64,
}

impl Node for I2Flooder {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.interval, TimerHandle { owner: TimerOwner::Node, token: 1 });
    }
    fn handle_packet(&mut self, _: usize, _: Packet, _: &mut Ctx) {}
    fn handle_timer(&mut self, _: TimerHandle, ctx: &mut Ctx) {
        self.sent += 1;
        let mut hit = [0u8; 16];
        let r = ctx.random_u64().to_be_bytes();
        hit[..8].copy_from_slice(&r);
        hit[0] = 0x20;
        hit[1] = 0x01;
        let forged = HipPacket::new(
            PacketType::I2,
            Hit(hit),
            self.target_hit,
            vec![
                Param::Solution { k: 10, opaque: 0, i: ctx.random_u64(), j: ctx.random_u64() },
                Param::DiffieHellman { group: 255, public: vec![2; 64] },
                Param::EspInfo { old_spi: 0, new_spi: 1 },
                Param::HostId(vec![5, 0, 0, 0, 4, 1, 2, 3, 4, 0, 0, 0, 1, 3]),
                Param::Signature(vec![0; 64]),
            ],
        );
        ctx.transmit(
            self.link,
            Packet::new(v4(66, 6, 6, 6), self.target, Payload::HipControl(forged.encode())),
        );
        ctx.set_timer(self.interval, TimerHandle { owner: TimerOwner::Node, token: 1 });
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Pinger {
    target: IpAddr,
    connected_at: Option<SimTime>,
}
impl App for Pinger {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_connect(self.target, 7).expect("source");
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Connected(_)) = ev {
            self.connected_at = Some(api.now());
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Listener;
impl App for Listener {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7);
    }
    fn on_event(&mut self, _: AppEvent, _: &mut HostApi) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    // ---- Part 1: puzzle asymmetry (real wall-clock). ----
    println!("puzzle asymmetry (attacker solve vs responder verify, real wall-clock):");
    let hi = Hit([0xaa; 16]);
    let hr = Hit([0xbb; 16]);
    let mut rows = Vec::new();
    for k in [0u8, 4, 8, 12, 16] {
        let t0 = Instant::now();
        let mut attempts_total = 0u64;
        let iters = 8u64;
        for i in 0..iters {
            let (_, attempts) = puzzle::solve(i * 7919 + 1, k, &hi, &hr, i);
            attempts_total += attempts;
        }
        let solve_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let (j, _) = puzzle::solve(42, k, &hi, &hr, 0);
        let t1 = Instant::now();
        let verify_iters = 10_000;
        for _ in 0..verify_iters {
            std::hint::black_box(puzzle::verify(42, k, &hi, &hr, j));
        }
        let verify_ns = t1.elapsed().as_secs_f64() * 1e9 / verify_iters as f64;
        rows.push(vec![
            k.to_string(),
            format!("{:.0}", attempts_total as f64 / iters as f64),
            format!("{solve_us:.1}"),
            format!("{verify_ns:.0}"),
            format!("{:.0}x", solve_us * 1000.0 / verify_ns),
        ]);
    }
    println!(
        "{}",
        table(&["K", "avg attempts", "solve µs", "verify ns", "asymmetry"], &rows)
    );

    // ---- Part 2: garbage-I2 flood against a live responder. ----
    println!("garbage-I2 flood: 1000 forged I2/s for 10 s against the responder");
    let mut key_rng = StdRng::seed_from_u64(1);
    let id_r = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_c = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_r, hit_c) = (id_r.hit(), id_c.hit());
    let (addr_r, addr_c, addr_x) = (v4(10, 0, 0, 1), v4(10, 0, 0, 2), v4(10, 0, 0, 3));

    let mut shim_r = HipShim::new(id_r, HipConfig::default());
    shim_r.add_peer(hit_c, PeerInfo { locators: vec![addr_c], via_rvs: None });
    let mut shim_c = HipShim::new(id_c, HipConfig::default());
    shim_c.add_peer(hit_r, PeerInfo { locators: vec![addr_r], via_rvs: None });

    let mut sim = Sim::new(2);
    let trace_path = trace_out();
    if trace_path.is_some() {
        sim.trace = netsim::trace::Trace::enabled(500_000);
    }
    let mut hr_host = Host::new("responder");
    hr_host.set_shim(Box::new(shim_r));
    hr_host.add_app(Box::new(Listener));
    let mut hc = Host::new("client");
    hc.set_shim(Box::new(shim_c));
    // The client starts its BEX mid-flood.
    hc.add_app(Box::new(Pinger { target: hit_r.to_ip(), connected_at: None }));

    let r = sim.world.add_node(Box::new(hr_host));
    let c = sim.world.add_node(Box::new(hc));
    let x = sim.world.add_node(Box::new(I2Flooder {
        target: addr_r,
        target_hit: hit_r,
        link: LinkId(0),
        interval: SimDuration::from_millis(1),
        sent: 0,
    }));
    let sw = sim.world.add_node(Box::new(netsim::router::Router::new("sw")));
    let lr = sim.world.connect(Endpoint { node: r, iface: 0 }, Endpoint { node: sw, iface: 0 }, LinkParams::datacenter());
    let lc = sim.world.connect(Endpoint { node: c, iface: 0 }, Endpoint { node: sw, iface: 1 }, LinkParams::datacenter());
    let lx = sim.world.connect(Endpoint { node: x, iface: 0 }, Endpoint { node: sw, iface: 2 }, LinkParams::datacenter());
    sim.world.node_mut::<Host>(r).expect("r").core.add_iface(lr, vec![addr_r]);
    sim.world.node_mut::<Host>(c).expect("c").core.add_iface(lc, vec![addr_c]);
    sim.world.node_mut::<I2Flooder>(x).expect("x").link = lx;
    {
        let router = sim.world.node_mut::<netsim::router::Router>(sw).expect("sw");
        router.add_iface(lr);
        router.add_iface(lc);
        router.add_iface(lx);
        router.add_route(addr_r, 32, 0);
        router.add_route(addr_c, 32, 1);
        router.add_route(addr_x, 32, 2);
    }
    let wall_start = Instant::now();
    sim.run_until(SimTime(10_000_000_000));
    let wall = wall_start.elapsed().as_secs_f64();

    let responder = sim.world.node::<Host>(r).expect("r");
    let stats = responder.shim::<HipShim>().expect("shim").stats;
    let flooded = sim.world.node::<I2Flooder>(x).expect("x").sent;
    let client = sim.world.node::<Host>(c).expect("c").app::<Pinger>(0).expect("pinger");
    println!("  forged I2s sent:          {flooded}");
    println!("  rejected by responder:    {} (puzzle/auth checks)", stats.drops_auth);
    println!("  responder CPU busy:       {:.1} ms over 10 s", responder.core.cpu.busy_time().as_millis_f64());
    println!("  legitimate BEX completed: {}", stats.bex_completed);
    match client.connected_at {
        Some(t) => println!("  legitimate client connected at t={:.3} s — unaffected", t.as_secs_f64()),
        None => println!("  legitimate client FAILED to connect"),
    }
    assert!(stats.bex_completed >= 1, "legitimate BEX must survive the flood");
    assert!(stats.drops_auth as f64 >= flooded as f64 * 0.9, "flood rejected");
    println!("\nthe responder rejects each forged I2 with one hash (puzzle check\nbefore any DH/RSA work) and answers I1s from a pre-computed R1 pool —\nthe DoS cost stays with the attacker, growing 2^K per attempt.");

    let dispatched = sim.stats().dispatched;
    let metrics = sim.take_metrics();
    let mut m = manifest("ablation_dos", "flood", 2);
    m.num("forged_i2s", flooded)
        .num("rejected", stats.drops_auth)
        .num("bex_completed", stats.bex_completed);
    match write_manifest(m, wall, dispatched, &metrics) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("manifest write failed: {e}"),
    }
    if let Some(path) = trace_path {
        match sim.trace.write_jsonl(&path) {
            Ok(()) => eprintln!(
                "wrote {} trace records to {} ({} dropped at cap)",
                sim.trace.entries().len(),
                path.display(),
                sim.trace.truncated()
            ),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}
