//! FIG-RESILIENCE: graceful degradation of Basic/HIP/SSL under faults.
//!
//! Subjects the FIG2 RUBiS deployment to a scripted fault storyline —
//! a web-VM crash + restart, a loss burst on the DB link, a partition
//! and heal — and reports the per-second goodput/error timeline, the
//! post-fault error rate, p99 latency, and time-to-recover for every
//! scenario. One run manifest per scenario lands under `results/`.
//!
//! Usage: `cargo run -p bench --release --bin fig_resilience [--quick]`

use bench::report::{bar, manifest, table, write_csv, write_manifest};
use bench::resilience::{run_sweep, timeline_json, Storyline, CLIENTS};
use std::time::Instant;

fn main() {
    let seed = 42u64;
    let quick = std::env::args().any(|a| a == "--quick");
    let story = if quick { Storyline::quick() } else { Storyline::standard() };
    eprintln!(
        "fig_resilience: 3 scenarios x {} clients, {}s storyline (crash@{}s, burst@{}s, partition@{}s; parallel)...",
        CLIENTS,
        story.end.as_secs_f64(),
        story.crash_at.as_secs_f64(),
        story.burst_at.as_secs_f64(),
        story.partition_at.as_secs_f64(),
    );
    let wall_start = Instant::now();
    let cells = run_sweep(seed, story);
    let wall = wall_start.elapsed().as_secs_f64();

    let fmt_ttr = |t: Option<u64>| t.map_or("never".to_string(), |s| format!("{s}s"));
    let mut rows = Vec::new();
    for c in &cells {
        let p = &c.point;
        rows.push(vec![
            p.scenario.label().to_string(),
            format!("{:.1}", p.baseline_goodput),
            p.ok_total.to_string(),
            p.err_total.to_string(),
            format!("{:.2}%", p.post_fault_error_rate * 100.0),
            format!("{:.1}", p.p99_ms),
            fmt_ttr(p.ttr_crash_s),
            fmt_ttr(p.ttr_burst_s),
            fmt_ttr(p.ttr_partition_s),
        ]);
    }
    println!("\nResilience under the fault storyline (crash / loss burst / partition):");
    println!(
        "{}",
        table(
            &["scenario", "base req/s", "ok", "err", "err rate", "p99 ms", "ttr crash", "ttr burst", "ttr part"],
            &rows
        )
    );
    if let Ok(path) = write_csv(
        "fig_resilience",
        &["scenario", "baseline", "ok", "err", "err_rate", "p99_ms", "ttr_crash", "ttr_burst", "ttr_partition"],
        &rows,
    ) {
        eprintln!("wrote {}", path.display());
    }

    // Failover machinery counters.
    let mut frows = Vec::new();
    for c in &cells {
        let p = &c.point;
        frows.push(vec![
            p.scenario.label().to_string(),
            p.proxy.ejections.to_string(),
            p.proxy.recoveries.to_string(),
            p.proxy.retries.to_string(),
            p.proxy.probes.to_string(),
            p.proxy.timeouts.to_string(),
            p.proxy.unavailable.to_string(),
            p.rebex.to_string(),
        ]);
    }
    println!("proxy failover + HIP recovery counters:");
    println!(
        "{}",
        table(&["scenario", "ejects", "recovers", "retries", "probes", "timeouts", "503s", "re-BEX"], &frows)
    );

    // Goodput timelines, one bar row per second.
    let max = cells
        .iter()
        .flat_map(|c| (0..c.timeline.len()).map(|b| c.timeline.at(b).0))
        .max()
        .unwrap_or(0) as f64;
    for c in &cells {
        println!("goodput timeline, {} (█ ≈ {:.0} req/s; !n = n errors):", c.point.scenario.label(), max / 30.0);
        for b in 0..c.timeline.len() {
            let (ok, err) = c.timeline.at(b);
            let marks = if err > 0 { format!("  !{err}") } else { String::new() };
            println!("  {:>3}s | {} {}{}", b, bar(ok as f64, max, 30), ok, marks);
        }
    }
    println!("\nExpected shape: goodput dips at each episode but never reaches zero");
    println!("(two of three web VMs keep serving through the crash and partition);");
    println!("the loss burst costs latency, not errors; HIP recovers the crashed");
    println!("peer via NOTIFY-triggered re-BEX without manual SA cleanup.");

    // Manifests: one per scenario, timeline embedded.
    for c in &cells {
        let p = &c.point;
        let mut m = manifest("fig_resilience", p.scenario.label(), seed);
        m.num("clients", CLIENTS)
            .num("storyline_secs", story.end.as_secs_f64())
            .num("baseline_goodput", format!("{:.3}", p.baseline_goodput))
            .num("ok_total", p.ok_total)
            .num("err_total", p.err_total)
            .num("post_fault_error_rate", format!("{:.5}", p.post_fault_error_rate))
            .num("p99_ms", format!("{:.3}", p.p99_ms))
            .str_field("ttr_crash", &fmt_ttr(p.ttr_crash_s))
            .str_field("ttr_burst", &fmt_ttr(p.ttr_burst_s))
            .str_field("ttr_partition", &fmt_ttr(p.ttr_partition_s))
            .num("proxy_ejections", p.proxy.ejections)
            .num("proxy_recoveries", p.proxy.recoveries)
            .num("proxy_retries", p.proxy.retries)
            .num("proxy_probes", p.proxy.probes)
            .num("proxy_unavailable", p.proxy.unavailable)
            .num("hip_rebex", p.rebex)
            .raw("timeline", timeline_json(&c.timeline));
        match write_manifest(m, wall, c.dispatched, &c.metrics) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("manifest write failed: {e}"),
        }
    }

    // Determinism invariant (asserted in CI): the same seed + storyline
    // must dispatch a bit-identical event count.
    let recheck = bench::resilience::run_cell(websvc::Scenario::HipLsi, seed, story);
    let first = cells.iter().find(|c| c.point.scenario == websvc::Scenario::HipLsi).expect("HIP cell");
    assert_eq!(
        recheck.dispatched, first.dispatched,
        "nondeterminism: same seed + fault plan dispatched a different event count"
    );
    eprintln!("determinism: re-run dispatched {} events, bit-identical ✓", recheck.dispatched);
}
