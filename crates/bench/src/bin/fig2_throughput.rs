//! Regenerates **Figure 2**: Basic, HIP and SSL throughput comparison
//! in Amazon with Rubis — average successful requests/second vs number
//! of concurrent clients {2, 3, 4, 6, 10, 20, 30, 50}.
//!
//! Alongside the figure it reports per-stage latency quantiles (HIP
//! BEX, ESP encrypt/decrypt, TCP connect, DB service, client response)
//! merged across each scenario's cells, and writes one run manifest per
//! scenario under `results/`.
//!
//! Usage: `cargo run -p bench --release --bin fig2_throughput [--quick] [--trace-out <path>]`

use bench::fig2::{run_cell, run_sweep_cells, CLIENT_COUNTS};
use bench::report::{bar, manifest, stage_table, table, trace_out, write_csv, write_manifest};
use netsim::SimDuration;
use std::time::Instant;
use websvc::Scenario;

/// Protocol stages reported per scenario (absent stages are skipped —
/// Basic has no BEX, SSL has no ESP).
const STAGES: [&str; 8] = [
    "hip.bex",
    "esp.encrypt",
    "esp.decrypt",
    "tcp.connect",
    "proxy.queue",
    "web.render",
    "db.service",
    "client.latency",
];

fn main() {
    let seed = 42u64;
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick {
        (SimDuration::from_secs(6), SimDuration::from_secs(6))
    } else {
        (SimDuration::from_secs(10), SimDuration::from_secs(20))
    };
    eprintln!(
        "fig2: sweeping 3 scenarios x {} client counts ({}s warmup + {}s measure each; parallel)...",
        CLIENT_COUNTS.len(),
        warmup.as_secs_f64(),
        measure.as_secs_f64()
    );
    let wall_start = Instant::now();
    let cells = run_sweep_cells(seed, warmup, measure);
    let wall = wall_start.elapsed().as_secs_f64();
    let points: Vec<_> = cells.iter().map(|c| c.point).collect();

    let scenarios = [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl];
    let mut rows = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let mut row = vec![clients.to_string()];
        for &s in &scenarios {
            let p = points
                .iter()
                .find(|p| p.scenario == s && p.clients == clients)
                .expect("point present");
            row.push(format!("{:.1}", p.throughput));
        }
        rows.push(row);
    }
    println!("\nFigure 2 — RUBiS throughput (requests/second) in the simulated EC2:");
    println!("{}", table(&["clients", "Basic", "HIP", "SSL"], &rows));
    if let Ok(path) = write_csv("fig2_throughput", &["clients", "basic", "hip", "ssl"], &rows) {
        eprintln!("wrote {}", path.display());
    }

    // Per-stage latency quantiles, merged across each scenario's cells.
    for &s in &scenarios {
        let mut merged = obs::MetricsRegistry::new();
        let mut events = 0u64;
        for c in cells.iter().filter(|c| c.point.scenario == s) {
            merged.merge(&c.metrics);
            events += c.dispatched;
        }
        println!("per-stage latency, {} (all client counts merged):", s.label());
        match stage_table(&merged, &STAGES) {
            Some(t) => println!("{t}"),
            None => println!("  (no stage histograms recorded)"),
        }
        let mut m = manifest("fig2_throughput", s.label(), seed);
        m.num("warmup_secs", warmup.as_secs_f64())
            .num("measure_secs", measure.as_secs_f64())
            .num("client_counts", CLIENT_COUNTS.len());
        match write_manifest(m, wall, events, &merged) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("manifest write failed: {e}"),
        }
    }

    // Terminal rendition of the figure.
    let max = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
    println!("throughput (each █ ≈ {:.0} req/s):", max / 40.0);
    for &s in &scenarios {
        println!("{:>6}:", s.label());
        for &clients in &CLIENT_COUNTS {
            let p = points.iter().find(|p| p.scenario == s && p.clients == clients).expect("point");
            println!("  {:>3} | {} {:.0}", clients, bar(p.throughput, max, 40), p.throughput);
        }
    }
    println!("\npaper (Fig. 2): Basic rises to ~250 req/s at 50 clients while HIP and");
    println!("SSL saturate in the ~150-160 range from ~20 clients on, HIP slightly");
    println!("below SSL (LSI translations). Compare shapes, not absolute values.");

    if let Some(path) = trace_out() {
        // A traced representative run (HIP, 4 clients, short window):
        // the full sweep is too chatty to trace end to end.
        eprintln!("tracing a representative HIP cell for {}...", path.display());
        let cell = run_cell(
            Scenario::HipLsi,
            4,
            seed,
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            200_000,
        );
        match cell.trace.write_jsonl(&path) {
            Ok(()) => eprintln!(
                "wrote {} trace records to {} ({} dropped at cap)",
                cell.trace.entries().len(),
                path.display(),
                cell.trace.truncated()
            ),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}
