//! Regenerates **Figure 2**: Basic, HIP and SSL throughput comparison
//! in Amazon with Rubis — average successful requests/second vs number
//! of concurrent clients {2, 3, 4, 6, 10, 20, 30, 50}.
//!
//! Usage: `cargo run -p bench --release --bin fig2_throughput [--quick]`

use bench::fig2::{run_sweep, CLIENT_COUNTS};
use bench::report::{bar, table, write_csv};
use netsim::SimDuration;
use websvc::Scenario;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick {
        (SimDuration::from_secs(6), SimDuration::from_secs(6))
    } else {
        (SimDuration::from_secs(10), SimDuration::from_secs(20))
    };
    eprintln!(
        "fig2: sweeping 3 scenarios x {} client counts ({}s warmup + {}s measure each; parallel)...",
        CLIENT_COUNTS.len(),
        warmup.as_secs_f64(),
        measure.as_secs_f64()
    );
    let points = run_sweep(42, warmup, measure);

    let scenarios = [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl];
    let mut rows = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let mut row = vec![clients.to_string()];
        for &s in &scenarios {
            let p = points
                .iter()
                .find(|p| p.scenario == s && p.clients == clients)
                .expect("point present");
            row.push(format!("{:.1}", p.throughput));
        }
        rows.push(row);
    }
    println!("\nFigure 2 — RUBiS throughput (requests/second) in the simulated EC2:");
    println!("{}", table(&["clients", "Basic", "HIP", "SSL"], &rows));
    if let Ok(path) = write_csv("fig2_throughput", &["clients", "basic", "hip", "ssl"], &rows) {
        eprintln!("wrote {}", path.display());
    }

    // Terminal rendition of the figure.
    let max = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
    println!("throughput (each █ ≈ {:.0} req/s):", max / 40.0);
    for &s in &scenarios {
        println!("{:>6}:", s.label());
        for &clients in &CLIENT_COUNTS {
            let p = points.iter().find(|p| p.scenario == s && p.clients == clients).expect("point");
            println!("  {:>3} | {} {:.0}", clients, bar(p.throughput, max, 40), p.throughput);
        }
    }
    println!("\npaper (Fig. 2): Basic rises to ~250 req/s at 50 clients while HIP and");
    println!("SSL saturate in the ~150-160 range from ~20 clients on, HIP slightly");
    println!("below SSL (LSI translations). Compare shapes, not absolute values.");
}
