//! Engine performance benchmark: measures the event-scheduler fast path
//! so speedups (and regressions) are visible across PRs.
//!
//! Two measurements:
//!
//! 1. **Scheduler microbench** — the classic "hold model": a queue
//!    pre-filled with pending events, then a long run of pop-one /
//!    push-one transactions with simulation-typical delays (mostly
//!    link/RTT scale, a tail of far-future timers). The calendar queue
//!    is compared against the reference `BinaryHeap` it replaced, on a
//!    bit-identical operation sequence.
//! 2. **End-to-end events/sec** — a mesh of echo ping-pong hosts run
//!    through the full `Sim` dispatch loop (timers, links, packets),
//!    reporting dispatched events per wall-clock second plus the
//!    `SimStats` counter block. The end-to-end run is measured twice,
//!    interleaved, with the metrics registry **on** and **off**: the
//!    same-seed runs must be bit-identical (identical `SimStats`), and
//!    the metrics-on run must stay within 5% of the metrics-off
//!    events/sec — observability must never perturb or slow the engine.
//!
//! Writes `results/engine_perf.json` plus a run manifest.
//!
//! Usage: `cargo run -p bench --release --bin engine_perf [-- quick] [--trace-out <path>]`

use bench::report::{manifest, trace_out, write_manifest};
use netsim::sched::CalendarQueue;
use netsim::{
    Ctx, Endpoint, LinkParams, Node, Packet, Payload, Sim, SimDuration, SimStats, SimTime,
    TimerHandle, TimerOwner,
};
use netsim::link::LinkId;
use netsim::packet::{v4, IcmpKind, IcmpMessage};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// xorshift64*: cheap deterministic deltas shared by both queues.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A simulation-shaped delay: mostly link/RTT scale, some millisecond
/// timers, a thin tail beyond the wheel horizon (forces overflow).
fn typical_delay(r: u64) -> u64 {
    match r % 100 {
        0..=79 => 1_000 + r % 100_000,        // 1 µs .. 101 µs
        80..=97 => 100_000 + r % 5_000_000,   // 0.1 ms .. 5.1 ms
        _ => 50_000_000 + r % 200_000_000,    // 50 ms .. 250 ms
    }
}

/// Hold-model transactions against any queue, via closures.
fn run_hold<Q>(
    queue: &mut Q,
    push: impl Fn(&mut Q, u64, u64),
    pop: impl Fn(&mut Q) -> Option<(u64, u64)>,
    prefill: usize,
    transactions: usize,
) -> f64 {
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut seq = 0u64;
    for _ in 0..prefill {
        let delay = typical_delay(xorshift(&mut rng));
        push(queue, delay, seq);
        seq += 1;
    }
    // Best of three timed passes: the sandbox is shared, so the fastest
    // pass is the least-interference estimate for both queues alike.
    let mut best = 0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..transactions {
            let (at, _) = pop(queue).expect("queue stays full");
            let delay = typical_delay(xorshift(&mut rng));
            push(queue, at + delay, seq);
            seq += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        best = best.max((2 * transactions) as f64 / secs); // pop + push per transaction
    }
    best
}

fn scheduler_microbench(prefill: usize, transactions: usize) -> (f64, f64) {
    let mut cal: CalendarQueue<()> = CalendarQueue::new();
    let cal_eps = run_hold(
        &mut cal,
        |q, at, seq| q.push(SimTime(at), seq, ()),
        |q| q.pop().map(|(t, s, ())| (t.0, s)),
        prefill,
        transactions,
    );
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let heap_eps = run_hold(
        &mut heap,
        |q, at, seq| q.push(Reverse((at, seq))),
        |q| q.pop().map(|Reverse((t, s))| (t, s)),
        prefill,
        transactions,
    );
    (cal_eps, heap_eps)
}

// ---------------------------------------------------------------------
// End-to-end: echo ping-pong mesh through the full dispatch loop.
// ---------------------------------------------------------------------

/// Pings its peer on a jittered interval; re-arms forever.
struct Pinger {
    link: LinkId,
    peer: std::net::IpAddr,
    me: std::net::IpAddr,
    interval: SimDuration,
    deadline: SimTime,
    sent: u64,
}

impl Node for Pinger {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.interval, TimerHandle { owner: TimerOwner::Node, token: 0 });
    }
    fn handle_packet(&mut self, _: usize, _: Packet, _: &mut Ctx) {}
    fn handle_timer(&mut self, _: TimerHandle, ctx: &mut Ctx) {
        if ctx.now >= self.deadline {
            return; // stop re-arming; the sim drains to quiescence
        }
        self.sent += 1;
        let pkt = Packet::new(
            self.me,
            self.peer,
            Payload::Icmp(IcmpMessage {
                kind: IcmpKind::EchoRequest,
                ident: 1,
                seq: self.sent as u16,
                payload_len: 56,
            }),
        );
        ctx.transmit(self.link, pkt);
        // Jitter the next period so timers spread across buckets.
        let jitter = ctx.random_u64() % 10_000;
        ctx.set_timer(
            self.interval + SimDuration::from_nanos(jitter),
            TimerHandle { owner: TimerOwner::Node, token: 0 },
        );
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Echoes every packet straight back.
struct Echoer {
    link: LinkId,
}

impl Node for Echoer {
    fn handle_packet(&mut self, _: usize, pkt: Packet, ctx: &mut Ctx) {
        let reply = Packet::new(pkt.dst, pkt.src, pkt.payload.clone());
        ctx.transmit(self.link, reply);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Outcome of one end-to-end run.
struct E2E {
    eps: f64,
    dispatched: u64,
    wall: f64,
    stats: SimStats,
    metrics: obs::MetricsRegistry,
    trace: netsim::trace::Trace,
}

fn end_to_end(pairs: usize, sim_seconds: u64, metrics_on: bool, trace_cap: usize) -> E2E {
    let mut sim = Sim::new(42);
    sim.set_metrics_enabled(metrics_on);
    if trace_cap > 0 {
        sim.trace = netsim::trace::Trace::enabled(trace_cap).with_timers(true);
    }
    let deadline = SimTime(sim_seconds * 1_000_000_000);
    for i in 0..pairs {
        let a_ip = v4(10, 1, (i / 250) as u8, (i % 250) as u8);
        let b_ip = v4(10, 2, (i / 250) as u8, (i % 250) as u8);
        let link = LinkId(i);
        let a = sim.world.add_node(Box::new(Pinger {
            link,
            peer: b_ip,
            me: a_ip,
            // Staggered rates: 20–120 µs periods.
            interval: SimDuration::from_nanos(20_000 + (i as u64 * 7919) % 100_000),
            deadline,
            sent: 0,
        }));
        let b = sim.world.add_node(Box::new(Echoer { link }));
        let lid = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        assert_eq!(lid.0, i, "links are allocated in pair order");
    }
    let start = Instant::now();
    let outcome = sim.run_to_quiescence(u64::MAX);
    let wall = start.elapsed().as_secs_f64();
    assert!(outcome.is_quiescent());
    let stats = sim.stats();
    let eps = stats.dispatched as f64 / wall;
    E2E {
        eps,
        dispatched: stats.dispatched,
        wall,
        stats,
        metrics: sim.take_metrics(),
        trace: std::mem::replace(&mut sim.trace, netsim::trace::Trace::disabled()),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let (prefill, transactions) = if quick { (20_000, 200_000) } else { (100_000, 2_000_000) };
    let (pairs, sim_secs) = if quick { (64, 1) } else { (256, 2) };

    println!("scheduler microbench (hold model, {prefill} pending, {transactions} transactions)");
    let (cal_eps, heap_eps) = scheduler_microbench(prefill, transactions);
    let ratio = cal_eps / heap_eps;
    println!("  calendar queue : {:>12.0} ops/s", cal_eps);
    println!("  binary heap    : {:>12.0} ops/s", heap_eps);
    println!("  speedup        : {ratio:.2}x");

    println!("end-to-end dispatch ({pairs} echo pairs, {sim_secs}s simulated)");
    // Interleaved best-of-3, metrics on vs off: interleaving cancels
    // out drift from sharing the machine with other work.
    let mut best_on: Option<E2E> = None;
    let mut best_off: Option<E2E> = None;
    for _ in 0..3 {
        let on = end_to_end(pairs, sim_secs, true, 0);
        let off = end_to_end(pairs, sim_secs, false, 0);
        if best_on.as_ref().is_none_or(|b| on.eps > b.eps) {
            best_on = Some(on);
        }
        if best_off.as_ref().is_none_or(|b| off.eps > b.eps) {
            best_off = Some(off);
        }
    }
    let on = best_on.expect("ran");
    let off = best_off.expect("ran");
    let (eps, dispatched, wall, stats) = (on.eps, on.dispatched, on.wall, on.stats);
    println!("  events         : {dispatched}");
    println!("  wall           : {wall:.3}s");
    println!("  events/sec     : {eps:>12.0} (metrics on)");
    println!("  events/sec     : {:>12.0} (metrics off)", off.eps);
    let overhead_pct = (off.eps / eps - 1.0) * 100.0;
    println!("  metrics overhead: {overhead_pct:.2}%");
    println!(
        "  stats          : scheduled={} dispatched={} cancelled={} stale={} wheel={} overflow={} migrations={}",
        stats.scheduled,
        stats.dispatched,
        stats.timers_cancelled,
        stats.stale_timer_pops,
        stats.queue_wheel_pushes,
        stats.queue_overflow_pushes,
        stats.queue_migrations
    );
    // Determinism: metrics must observe, never perturb. Same seed with
    // the registry on and off must give bit-identical engine behavior.
    assert_eq!(
        on.stats, off.stats,
        "metrics on vs off changed the event schedule — observability perturbed the run"
    );
    assert!(
        overhead_pct <= 5.0,
        "metrics-on run is {overhead_pct:.2}% slower than metrics-off (budget: 5%)"
    );
    println!("  metrics on/off : bit-identical SimStats, overhead within 5% budget");
    // Engine counters visible through the registry on the metrics-on run.
    let ev_pkts = on.metrics.counter_value("engine.ev.packet").unwrap_or(0);
    let ev_timers = on.metrics.counter_value("engine.ev.timer").unwrap_or(0);
    println!("  registry       : engine.ev.packet={ev_pkts} engine.ev.timer={ev_timers}");
    assert!(ev_pkts > 0 && ev_timers > 0, "engine counters must be populated when metrics are on");

    std::fs::create_dir_all("results").expect("mkdir results");
    let json = format!(
        "{{\n  \"microbench\": {{\n    \"pending\": {prefill},\n    \"transactions\": {transactions},\n    \"calendar_ops_per_sec\": {cal_eps:.0},\n    \"binary_heap_ops_per_sec\": {heap_eps:.0},\n    \"speedup\": {ratio:.3}\n  }},\n  \"end_to_end\": {{\n    \"pairs\": {pairs},\n    \"sim_seconds\": {sim_secs},\n    \"dispatched_events\": {dispatched},\n    \"wall_seconds\": {wall:.4},\n    \"events_per_sec\": {eps:.0},\n    \"events_per_sec_metrics_off\": {:.0},\n    \"metrics_overhead_pct\": {overhead_pct:.2},\n    \"scheduled\": {},\n    \"timers_cancelled\": {},\n    \"stale_timer_pops\": {},\n    \"queue_wheel_pushes\": {},\n    \"queue_overflow_pushes\": {},\n    \"queue_migrations\": {}\n  }}\n}}\n",
        off.eps,
        stats.scheduled,
        stats.timers_cancelled,
        stats.stale_timer_pops,
        stats.queue_wheel_pushes,
        stats.queue_overflow_pushes,
        stats.queue_migrations
    );
    std::fs::write("results/engine_perf.json", json).expect("write results/engine_perf.json");
    println!("wrote results/engine_perf.json");

    let mut m = manifest("engine_perf", if quick { "quick" } else { "default" }, 42);
    m.num("pairs", pairs)
        .num("sim_seconds", sim_secs)
        .num("events_per_sec", format!("{eps:.0}"))
        .num("events_per_sec_metrics_off", format!("{:.0}", off.eps))
        .num("metrics_overhead_pct", format!("{overhead_pct:.2}"))
        .num("calendar_ops_per_sec", format!("{cal_eps:.0}"))
        .num("binary_heap_ops_per_sec", format!("{heap_eps:.0}"));
    match write_manifest(m, wall, dispatched, &on.metrics) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("manifest write failed: {e}"),
    }

    if let Some(path) = trace_out() {
        // A small traced mesh (timer records on) keeps the JSONL readable.
        eprintln!("tracing a 4-pair mesh for {}...", path.display());
        let traced = end_to_end(4, 1, true, 500_000);
        match traced.trace.write_jsonl(&path) {
            Ok(()) => eprintln!(
                "wrote {} trace records to {} ({} dropped at cap)",
                traced.trace.entries().len(),
                path.display(),
                traced.trace.truncated()
            ),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}
