//! Figure 3: iperf TCP bandwidth and ICMP RTT between two EC2 VMs over
//! each addressing mode.
//!
//! "The experiments were conducted between two VMs inside Amazon EC2 in
//! order to measure inter-machine network throughput using HIT, LSI,
//! Teredo and plain IPv4-based connectivity... It should be noted that
//! EC2 does not support native IPv6-based connectivity" — hence the
//! Teredo modes tunnel IPv6-in-UDP through an *external* relay, whose
//! detour is what makes Teredo's RTT the worst of the set.

use cloudsim::{CloudKind, CloudTopology, Flavor};
use hip_core::identity::HostIdentity;
use hip_core::{CostModel, HipConfig, HipShim, PeerInfo};
use netsim::addr::teredo_address;
use netsim::link::LinkParams;
use netsim::teredo::{TeredoClient, TeredoRelay, TeredoServer, TEREDO_PORT};
use netsim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{IpAddr, Ipv4Addr};
use websvc::loadgen::{IperfClientApp, IperfServerApp, PingApp};

/// The six bars of Figure 3, in the paper's x-axis order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig3Mode {
    /// HIP with LSI addressing over IPv4 locators.
    LsiIpv4,
    /// Plain TCP over Teredo-tunneled IPv6.
    Teredo,
    /// Plain TCP over IPv4 (the baseline).
    Ipv4,
    /// HIP with HIT addressing over IPv4 locators.
    HitIpv4,
    /// HIP with HIT addressing over Teredo locators.
    HitTeredo,
    /// HIP with LSI addressing over Teredo locators.
    LsiTeredo,
}

impl Fig3Mode {
    /// All modes in the paper's order.
    pub const ALL: [Fig3Mode; 6] = [
        Fig3Mode::LsiIpv4,
        Fig3Mode::Teredo,
        Fig3Mode::Ipv4,
        Fig3Mode::HitIpv4,
        Fig3Mode::HitTeredo,
        Fig3Mode::LsiTeredo,
    ];

    /// The paper's bar label.
    pub fn label(self) -> &'static str {
        match self {
            Fig3Mode::LsiIpv4 => "LSI(IPv4)",
            Fig3Mode::Teredo => "Teredo",
            Fig3Mode::Ipv4 => "IPv4",
            Fig3Mode::HitIpv4 => "HIT(IPv4)",
            Fig3Mode::HitTeredo => "HIT(Teredo)",
            Fig3Mode::LsiTeredo => "LSI(Teredo)",
        }
    }

    fn uses_hip(self) -> bool {
        matches!(
            self,
            Fig3Mode::LsiIpv4 | Fig3Mode::HitIpv4 | Fig3Mode::HitTeredo | Fig3Mode::LsiTeredo
        )
    }

    fn uses_teredo(self) -> bool {
        matches!(self, Fig3Mode::Teredo | Fig3Mode::HitTeredo | Fig3Mode::LsiTeredo)
    }
}

/// One measured bar pair.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Point {
    /// Which addressing mode.
    pub mode: Fig3Mode,
    /// iperf goodput in Mbit/s.
    pub mbits: f64,
    /// Mean ICMP RTT over the ping run (ms).
    pub rtt_ms: f64,
    /// Echo replies received (of the requested count).
    pub pings_received: u16,
}

const TEREDO_SERVER_V4: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 201);
const TEREDO_RELAY_V4: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 202);
const IPERF_PORT: u16 = 5001;

/// The experiment environment for one mode.
struct Fig3World {
    topo: CloudTopology,
    a: cloudsim::VmHandle,
    b: cloudsim::VmHandle,
    /// What host A should address host B as in this mode.
    target_b: IpAddr,
}

fn build(mode: Fig3Mode, seed: u64) -> Fig3World {
    let mut topo = CloudTopology::new(seed);
    // The EC2 region sits close to the internet core in this experiment;
    // the Teredo infrastructure hangs off that core.
    topo.wan_params = LinkParams::wan().with_latency(SimDuration::from_millis(1));
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    // EC2 instance NICs of the era: ~150 Mbit/s usable between VMs.
    topo.set_cloud_link_params(
        cloud,
        LinkParams::datacenter().with_bandwidth(150_000_000),
    );
    let a = topo.launch_vm(cloud, "vm-a", Flavor::Small);
    let b = topo.launch_vm(cloud, "vm-b", Flavor::Small);

    // Teredo infrastructure on the public internet ("Teredo has more
    // free infrastructure available", §VII) — modest capacity, a few ms
    // away: the relay hairpin is the latency penalty.
    if mode.uses_teredo() {
        let (srv, srv_link) = topo.attach_infrastructure(
            Box::new(TeredoServer::new(TEREDO_SERVER_V4, netsim::LinkId(0))),
            IpAddr::V4(TEREDO_SERVER_V4),
            0,
        );
        topo.sim.world.node_mut::<TeredoServer>(srv).expect("server").set_link(srv_link);
        let (rly, rly_link) = topo.attach_infrastructure(
            Box::new(TeredoRelay::new(TEREDO_RELAY_V4, netsim::LinkId(0))),
            IpAddr::V4(TEREDO_RELAY_V4),
            0,
        );
        topo.sim.world.node_mut::<TeredoRelay>(rly).expect("relay").set_v4_link(rly_link);
        // The relay's access link: 30 Mbit/s, 5 ms — public relays are
        // shared, best-effort infrastructure.
        {
            let links = topo.sim.world.links_mut();
            links[rly_link.0].params.bandwidth_bps = 30_000_000;
            links[rly_link.0].params.latency = SimDuration::from_millis(5);
        }
        for vm in [a, b] {
            let IpAddr::V4(v4) = vm.addr else { unreachable!("VMs are IPv4") };
            topo.host_mut(vm).core.teredo =
                Some(TeredoClient::new(v4, TEREDO_SERVER_V4, TEREDO_RELAY_V4));
        }
    }

    // Locators the peers use for each other at the HIP level.
    let locator = |vm: &cloudsim::VmHandle| -> IpAddr {
        if mode.uses_teredo() {
            let IpAddr::V4(v4) = vm.addr else { unreachable!() };
            // No NAT between VM and relay: external address/port are the
            // VM's own, so the Teredo address is known a priori.
            IpAddr::V6(teredo_address(TEREDO_SERVER_V4, v4, TEREDO_PORT))
        } else {
            vm.addr
        }
    };

    let target_b = if mode.uses_hip() {
        let mut key_rng = StdRng::seed_from_u64(seed ^ 0x33);
        let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
        let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
        let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
        let cfg = HipConfig { costs: CostModel::paper_era(), ..HipConfig::default() };
        let mut shim_a = HipShim::new(id_a, cfg.clone());
        let lsi_b = shim_a.add_peer(hit_b, PeerInfo { locators: vec![locator(&b)], via_rvs: None });
        let mut shim_b = HipShim::new(id_b, cfg);
        shim_b.add_peer(hit_a, PeerInfo { locators: vec![locator(&a)], via_rvs: None });
        topo.host_mut(a).set_shim(Box::new(shim_a));
        topo.host_mut(b).set_shim(Box::new(shim_b));
        match mode {
            Fig3Mode::HitIpv4 | Fig3Mode::HitTeredo => hit_b.to_ip(),
            _ => IpAddr::V4(lsi_b),
        }
    } else {
        locator(&b)
    };

    Fig3World { topo, a, b, target_b }
}

/// Measures iperf goodput for `mode` over `duration` of transfer,
/// returning the run's metrics registry and dispatched-event count too.
pub fn iperf_obs(mode: Fig3Mode, seed: u64, duration: SimDuration) -> (f64, obs::MetricsRegistry, u64) {
    let mut w = build(mode, seed);
    let srv_idx = w.topo.host_mut(w.b).add_app(Box::new(IperfServerApp::new(IPERF_PORT)));
    let mut client = IperfClientApp::new((w.target_b, IPERF_PORT), duration);
    // Give Teredo qualification and the HIP BEX a second to settle.
    client.start_delay = SimDuration::from_secs(2);
    w.topo.host_mut(w.a).add_app(Box::new(client));
    let deadline = SimTime::ZERO + SimDuration::from_secs(4) + duration.saturating_mul(3);
    w.topo.sim.run_until(deadline);
    let srv = w.topo.host(w.b).app::<IperfServerApp>(srv_idx).expect("server");
    assert!(srv.bytes > 0, "{mode:?}: no bytes received");
    let mbits = srv.mbits_per_sec();
    let dispatched = w.topo.sim.stats().dispatched;
    (mbits, w.topo.sim.take_metrics(), dispatched)
}

/// Measures iperf goodput for `mode` over `duration` of transfer.
pub fn iperf(mode: Fig3Mode, seed: u64, duration: SimDuration) -> f64 {
    iperf_obs(mode, seed, duration).0
}

/// Measures mean ICMP RTT for `mode` over `count` echoes, returning the
/// run's metrics, dispatched-event count, and (when `trace_cap > 0`)
/// the typed trace.
pub fn rtt_obs(
    mode: Fig3Mode,
    seed: u64,
    count: u16,
    trace_cap: usize,
) -> ((f64, u16), obs::MetricsRegistry, u64, netsim::trace::Trace) {
    let mut w = build(mode, seed);
    if trace_cap > 0 {
        w.topo.sim.trace = netsim::trace::Trace::enabled(trace_cap);
    }
    let mut ping = PingApp::new(w.target_b, count, SimDuration::from_millis(200), 7);
    ping.start_delay = SimDuration::from_secs(2);
    let idx = w.topo.host_mut(w.a).add_app(Box::new(ping));
    w.topo.sim.run_until(SimTime::ZERO + SimDuration::from_secs(5) + SimDuration::from_millis(200 * count as u64));
    let app = w.topo.host(w.a).app::<PingApp>(idx).expect("ping");
    let out = (app.rtts.mean(), app.received);
    let dispatched = w.topo.sim.stats().dispatched;
    let trace = std::mem::replace(&mut w.topo.sim.trace, netsim::trace::Trace::disabled());
    (out, w.topo.sim.take_metrics(), dispatched, trace)
}

/// Measures mean ICMP RTT for `mode` over `count` echoes.
pub fn rtt(mode: Fig3Mode, seed: u64, count: u16) -> (f64, u16) {
    rtt_obs(mode, seed, count, 0).0
}

/// One Figure 3 bar with its observability outputs (iperf and RTT runs
/// merged into a single registry).
pub struct Fig3Cell {
    /// The measured bar pair.
    pub point: Fig3Point,
    /// Merged metrics from the iperf and RTT simulations.
    pub metrics: obs::MetricsRegistry,
    /// Combined dispatched-event count of both simulations.
    pub dispatched: u64,
}

/// Runs the complete Figure 3 (both series, all modes, in parallel).
/// Output is in `Fig3Mode::ALL` order.
pub fn run_all(seed: u64, iperf_duration: SimDuration, ping_count: u16) -> Vec<Fig3Point> {
    run_all_cells(seed, iperf_duration, ping_count).into_iter().map(|c| c.point).collect()
}

/// Like [`run_all`] but keeps each mode's merged metrics registry.
pub fn run_all_cells(seed: u64, iperf_duration: SimDuration, ping_count: u16) -> Vec<Fig3Cell> {
    crate::sweep::par_sweep(&Fig3Mode::ALL, |&mode| {
        let (mbits, mut metrics, d1) = iperf_obs(mode, seed, iperf_duration);
        let ((rtt_ms, received), rtt_metrics, d2, _) = rtt_obs(mode, seed ^ 1, ping_count, 0);
        metrics.merge(&rtt_metrics);
        Fig3Cell {
            point: Fig3Point { mode, mbits, rtt_ms, pings_received: received },
            metrics,
            dispatched: d1 + d2,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_beats_teredo_bandwidth() {
        let plain = iperf(Fig3Mode::Ipv4, 2, SimDuration::from_secs(3));
        let teredo = iperf(Fig3Mode::Teredo, 2, SimDuration::from_secs(3));
        assert!(plain > 50.0, "plain {plain:.1} Mbit/s");
        assert!(teredo < plain * 0.5, "teredo {teredo:.1} ≪ plain {plain:.1}");
    }

    #[test]
    fn hit_close_to_ipv4_lsi_slightly_lower() {
        let plain = iperf(Fig3Mode::Ipv4, 3, SimDuration::from_secs(3));
        let hit = iperf(Fig3Mode::HitIpv4, 3, SimDuration::from_secs(3));
        let lsi = iperf(Fig3Mode::LsiIpv4, 3, SimDuration::from_secs(3));
        assert!(hit > plain * 0.5, "hit {hit:.1} within range of plain {plain:.1}");
        assert!(hit <= plain, "crypto cannot beat cleartext");
        assert!(lsi <= hit, "lsi {lsi:.1} ≤ hit {hit:.1} (extra translations)");
    }

    #[test]
    fn teredo_has_worst_rtt() {
        let (plain, r1) = rtt(Fig3Mode::Ipv4, 4, 5);
        let (hit, r2) = rtt(Fig3Mode::HitIpv4, 4, 5);
        let (teredo, r3) = rtt(Fig3Mode::Teredo, 4, 5);
        assert_eq!((r1, r2, r3), (5, 5, 5), "all pings answered");
        assert!(plain <= hit, "plain {plain:.2} <= hit {hit:.2}");
        assert!(teredo > hit * 2.0, "teredo {teredo:.2} is the worst");
    }

    #[test]
    fn hip_over_teredo_works() {
        let (rtt_ms, received) = rtt(Fig3Mode::HitTeredo, 5, 5);
        assert_eq!(received, 5, "ESP-over-Teredo echoes all answered");
        assert!(rtt_ms > 1.0);
    }
}
