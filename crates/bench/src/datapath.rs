//! Single-flow bulk transfer harness for the datapath-batching
//! experiments: one TCP flow between two EC2-style VMs (the Figure 3
//! topology, minus Teredo), plain or over HIP/ESP, with a selectable
//! [`GsoMode`].
//!
//! Shared by the `datapath_perf` binary (events-per-MB accounting) and
//! the `tcp_bulk` Criterion bench (wall time per transfer).

use cloudsim::{CloudKind, CloudTopology, Flavor};
use hip_core::identity::HostIdentity;
use hip_core::{CostModel, HipConfig, HipShim, PeerInfo};
use netsim::link::LinkParams;
use netsim::tcp::GsoMode;
use netsim::{SimDuration, SimStats, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use websvc::loadgen::{BulkSendApp, IperfServerApp};

const PORT: u16 = 5001;

/// Counters from one completed bulk transfer.
pub struct BulkOutcome {
    /// Engine counters (dispatched, coalesced runs, ...).
    pub stats: SimStats,
    /// The run's metrics registry.
    pub metrics: obs::MetricsRegistry,
    /// Receiver-measured goodput in Mbit/s.
    pub goodput_mbits: f64,
}

/// Runs one `bytes`-sized bulk transfer to completion and returns its
/// counters. Panics if the receiver does not see every byte.
pub fn bulk_transfer(hip: bool, gso: GsoMode, bytes: u64, seed: u64) -> BulkOutcome {
    let mut topo = CloudTopology::new(seed);
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    // Same era-appropriate instance NIC as Figure 3: ~150 Mbit/s.
    topo.set_cloud_link_params(cloud, LinkParams::datacenter().with_bandwidth(150_000_000));
    let a = topo.launch_vm(cloud, "vm-a", Flavor::Small);
    let b = topo.launch_vm(cloud, "vm-b", Flavor::Small);

    let target = if hip {
        let mut key_rng = StdRng::seed_from_u64(seed ^ 0x33);
        let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
        let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
        let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
        let cfg = HipConfig { costs: CostModel::paper_era(), ..HipConfig::default() };
        let mut shim_a = HipShim::new(id_a, cfg.clone());
        shim_a.add_peer(hit_b, PeerInfo { locators: vec![b.addr], via_rvs: None });
        let mut shim_b = HipShim::new(id_b, cfg);
        shim_b.add_peer(hit_a, PeerInfo { locators: vec![a.addr], via_rvs: None });
        topo.host_mut(a).set_shim(Box::new(shim_a));
        topo.host_mut(b).set_shim(Box::new(shim_b));
        hit_b.to_ip()
    } else {
        b.addr
    };
    for vm in [a, b] {
        topo.host_mut(vm).core.tcp.config.gso = gso;
    }

    let srv_idx = topo.host_mut(b).add_app(Box::new(IperfServerApp::new(PORT)));
    let mut client = BulkSendApp::new((target, PORT), bytes);
    // Let the HIP base exchange settle before the flow starts.
    client.start_delay = SimDuration::from_secs(1);
    topo.host_mut(a).add_app(Box::new(client));

    topo.sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));

    let srv = topo.host(b).app::<IperfServerApp>(srv_idx).expect("server");
    assert_eq!(srv.bytes, bytes, "hip={hip} gso={gso:?}: transfer incomplete");
    let goodput_mbits = srv.mbits_per_sec();
    BulkOutcome { stats: topo.sim.stats(), metrics: topo.sim.take_metrics(), goodput_mbits }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three GSO modes all complete the same transfer; Exact keeps
    /// Off's event schedule, Merged shrinks it.
    #[test]
    fn bulk_transfer_modes_agree() {
        let off = bulk_transfer(false, GsoMode::Off, 512 * 1024, 7);
        let exact = bulk_transfer(false, GsoMode::Exact, 512 * 1024, 7);
        let merged = bulk_transfer(false, GsoMode::Merged, 512 * 1024, 7);
        assert_eq!(off.stats.dispatched, exact.stats.dispatched);
        assert!(merged.stats.dispatched < off.stats.dispatched / 2);
    }

    #[test]
    fn bulk_transfer_over_esp_completes() {
        let out = bulk_transfer(true, GsoMode::Exact, 256 * 1024, 9);
        assert!(out.goodput_mbits > 1.0);
    }
}
