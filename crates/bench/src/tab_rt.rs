//! The response-time experiment (§V-B):
//!
//! "The experiments involved testing the performance of a single web
//! server connected to a database server, where we used the httperf
//! client to generate requests at a high rate (120 request/sec)...
//! MySQL query caching was enabled... The mean response times for
//! Basic, HIP and SSL cases were 116.4 ms, 132.2 ms and 128.3 ms
//! respectively."

use cloudsim::Flavor;
use netsim::{SimDuration, SimTime};
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::HttperfApp;
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

/// The paper's request rate.
pub const PAPER_RATE: f64 = 120.0;

/// One scenario's measured response-time distribution.
#[derive(Clone, Copy, Debug)]
pub struct TabRtRow {
    /// Which security scenario.
    pub scenario: Scenario,
    /// Responses completed in the measurement window.
    pub completed: u64,
    /// Mean response time (ms).
    pub mean_ms: f64,
    /// Sample standard deviation (ms).
    pub stddev_ms: f64,
    /// 99th-percentile response time (ms).
    pub p99_ms: f64,
}

/// One scenario's row plus observability outputs: the simulation's
/// metrics registry, its dispatched-event count, and the trace (empty
/// unless `trace_cap > 0`).
pub struct TabRtCell {
    /// The measured row.
    pub row: TabRtRow,
    /// The run's full metrics registry.
    pub metrics: obs::MetricsRegistry,
    /// Events dispatched by this run's simulation.
    pub dispatched: u64,
    /// Typed trace of the run (disabled unless requested).
    pub trace: netsim::trace::Trace,
}

/// Runs the open-loop response-time measurement for one scenario,
/// keeping the metrics registry and (when `trace_cap > 0`) the trace.
pub fn run_cell(
    scenario: Scenario,
    rate: f64,
    seed: u64,
    warmup: SimDuration,
    measure: SimDuration,
    trace_cap: usize,
) -> TabRtCell {
    let cfg = RubisConfig::tab_rt(scenario, seed);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    if trace_cap > 0 {
        dep.topo.sim.trace = netsim::trace::Trace::enabled(trace_cap);
    }
    let gen_host = dep.topo.add_external_host("httperf", Flavor::Dedicated);
    let mut app = HttperfApp::new(dep.frontend, rate, WorkloadMix::read_only(), users, items);
    app.measure_from = SimTime::ZERO + warmup;
    let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime::ZERO + warmup + measure);
    let gen = dep.topo.host(gen_host).app::<HttperfApp>(idx).expect("generator");
    let row = TabRtRow {
        scenario,
        completed: gen.completed,
        mean_ms: gen.latency.mean(),
        stddev_ms: gen.latency.stddev(),
        p99_ms: gen.latency.percentile(99.0),
    };
    let dispatched = dep.topo.sim.stats().dispatched;
    TabRtCell {
        row,
        metrics: dep.topo.sim.take_metrics(),
        dispatched,
        trace: std::mem::replace(&mut dep.topo.sim.trace, netsim::trace::Trace::disabled()),
    }
}

/// Runs the open-loop response-time measurement for one scenario.
pub fn run(scenario: Scenario, rate: f64, seed: u64, warmup: SimDuration, measure: SimDuration) -> TabRtRow {
    run_cell(scenario, rate, seed, warmup, measure, 0).row
}

/// Runs all three scenarios (in parallel; independent simulations).
/// Output is in scenario order: Basic, HipLsi, Ssl.
pub fn run_all(rate: f64, seed: u64, warmup: SimDuration, measure: SimDuration) -> Vec<TabRtRow> {
    run_all_cells(rate, seed, warmup, measure).into_iter().map(|c| c.row).collect()
}

/// Like [`run_all`] but keeps each scenario's metrics and event count.
pub fn run_all_cells(rate: f64, seed: u64, warmup: SimDuration, measure: SimDuration) -> Vec<TabRtCell> {
    let scenarios = [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl];
    crate::sweep::par_sweep(&scenarios, |&s| run_cell(s, rate, seed, warmup, measure, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // Short windows for test speed; the bin uses longer ones.
        let rows = run_all(
            PAPER_RATE,
            5,
            SimDuration::from_secs(5),
            SimDuration::from_secs(15),
        );
        let mean = |s: Scenario| rows.iter().find(|r| r.scenario == s).expect("present").mean_ms;
        let basic = mean(Scenario::Basic);
        let hip = mean(Scenario::HipLsi);
        let ssl = mean(Scenario::Ssl);
        assert!(basic < ssl, "basic {basic:.1} < ssl {ssl:.1}");
        assert!(ssl < hip, "ssl {ssl:.1} < hip {hip:.1} (LSI translation penalty)");
        // All stable (no overload): comparable magnitudes.
        assert!(hip < basic * 3.0, "hip {hip:.1} not exploded vs basic {basic:.1}");
    }
}
