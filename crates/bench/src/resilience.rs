//! FIG-RESILIENCE: graceful degradation of Basic/HIP/SSL under faults.
//!
//! The paper's evaluation measures the three scenarios only in steady
//! state. This experiment subjects the same FIG2 RUBiS deployment
//! (jmeter → LB → 3 web VMs → DB) to a scripted fault storyline and
//! measures how each security stack degrades and recovers:
//!
//! 1. **Node crash** — one of the three web VMs crashes and restarts
//!    later. The proxy must eject it, retry stranded requests on the
//!    survivors, and probe it back into rotation; under HIP the proxy's
//!    ESP hits a stale SPI after the restart and must re-run the base
//!    exchange (triggered by the victim's NOTIFY).
//! 2. **Loss burst** — the DB access link drops packets for a few
//!    seconds; TCP retransmission should ride it out with a latency
//!    bump and no errors.
//! 3. **Partition + heal** — a web VM's access link is partitioned
//!    away, then heals; ejection and probing readmit it.
//!
//! Per scenario we report the per-second goodput/error timeline, the
//! post-fault error rate, p99 latency, and the **time-to-recover** for
//! each episode (first second where goodput is back at ≥ 80% of the
//! pre-fault baseline, sustained for two consecutive seconds).

use cloudsim::Flavor;
use netsim::{FaultAction, SimDuration, SimTime};
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::{JmeterApp, Timeline};
use websvc::proxy::ProxyApp;
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

/// Concurrent closed-loop clients driving the deployment.
pub const CLIENTS: usize = 10;

/// Goodput fraction of baseline that counts as "recovered".
pub const RECOVERY_FRACTION: f64 = 0.8;

/// The scripted fault storyline (all offsets from simulation start).
#[derive(Clone, Copy, Debug)]
pub struct Storyline {
    /// Steady-state window before the first fault; also the
    /// measurement start for latency stats.
    pub warmup: SimDuration,
    /// Web VM #0 crashes here ...
    pub crash_at: SimDuration,
    /// ... and restarts this much later.
    pub crash_outage: SimDuration,
    /// The DB access-link loss burst starts here ...
    pub burst_at: SimDuration,
    /// ... lasts this long ...
    pub burst_len: SimDuration,
    /// ... dropping packets with this probability.
    pub burst_loss: f64,
    /// Web VM #1 is partitioned away here ...
    pub partition_at: SimDuration,
    /// ... and healed this much later.
    pub partition_len: SimDuration,
    /// Total simulated time (leave tail room after the last heal).
    pub end: SimDuration,
}

impl Storyline {
    /// The standard storyline: 5 s steady state, an 8 s web-VM outage,
    /// a 5 s 30%-loss burst on the DB link, a 3 s partition, 35 s total.
    pub fn standard() -> Self {
        Storyline {
            warmup: SimDuration::from_secs(5),
            crash_at: SimDuration::from_secs(5),
            crash_outage: SimDuration::from_secs(8),
            burst_at: SimDuration::from_secs(16),
            burst_len: SimDuration::from_secs(5),
            burst_loss: 0.3,
            partition_at: SimDuration::from_secs(24),
            partition_len: SimDuration::from_secs(3),
            end: SimDuration::from_secs(35),
        }
    }

    /// A compressed storyline for CI (`--quick`): same episodes, ~half
    /// the wall-clock.
    pub fn quick() -> Self {
        Storyline {
            warmup: SimDuration::from_secs(3),
            crash_at: SimDuration::from_secs(3),
            crash_outage: SimDuration::from_secs(5),
            burst_at: SimDuration::from_secs(10),
            burst_len: SimDuration::from_secs(3),
            burst_loss: 0.3,
            partition_at: SimDuration::from_secs(15),
            partition_len: SimDuration::from_secs(2),
            end: SimDuration::from_secs(22),
        }
    }
}

/// One scenario's resilience measurements.
#[derive(Clone, Debug)]
pub struct ResiliencePoint {
    /// Which security scenario.
    pub scenario: Scenario,
    /// Pre-fault goodput (requests/second, mean over the warmup).
    pub baseline_goodput: f64,
    /// Successful (200) requests over the whole run.
    pub ok_total: u64,
    /// Errored requests over the whole run.
    pub err_total: u64,
    /// Errors / (ok + errors) from the first fault onward.
    pub post_fault_error_rate: f64,
    /// p99 response time (ms) over the measured window.
    pub p99_ms: f64,
    /// Seconds from the crash until goodput recovered (None = never).
    pub ttr_crash_s: Option<u64>,
    /// Seconds from burst onset until goodput recovered.
    pub ttr_burst_s: Option<u64>,
    /// Seconds from partition onset until goodput recovered.
    pub ttr_partition_s: Option<u64>,
    /// Proxy failover counters at the end of the run.
    pub proxy: websvc::proxy::ProxyStats,
    /// HIP base exchanges re-run after a stale-SPI NOTIFY (0 outside
    /// the HIP scenario).
    pub rebex: u64,
}

/// A point plus its raw observables.
pub struct ResilienceCell {
    /// The measured point.
    pub point: ResiliencePoint,
    /// Per-second goodput/error buckets.
    pub timeline: Timeline,
    /// The run's metrics registry.
    pub metrics: obs::MetricsRegistry,
    /// Events dispatched by the simulation.
    pub dispatched: u64,
}

/// Mean goodput over the warm, pre-fault buckets (bucket 0 is skipped:
/// it includes connection setup and, under HIP, the base exchanges).
pub fn baseline_goodput(tl: &Timeline, warmup_s: usize) -> f64 {
    if warmup_s <= 1 {
        return tl.at(0).0 as f64;
    }
    let sum: u64 = (1..warmup_s).map(|b| tl.at(b).0).sum();
    sum as f64 / (warmup_s - 1) as f64
}

/// Time-to-recover: seconds from `onset_s` until goodput first reaches
/// `RECOVERY_FRACTION` of `baseline` sustained for two consecutive
/// buckets. `None` when the timeline never recovers.
pub fn time_to_recover(tl: &Timeline, baseline: f64, onset_s: usize) -> Option<u64> {
    let threshold = RECOVERY_FRACTION * baseline;
    let last = tl.len();
    (onset_s..last.saturating_sub(1))
        .find(|&b| tl.at(b).0 as f64 >= threshold && tl.at(b + 1).0 as f64 >= threshold)
        .map(|b| (b - onset_s) as u64)
}

/// Runs one scenario through the storyline.
pub fn run_cell(scenario: Scenario, seed: u64, story: Storyline) -> ResilienceCell {
    let cfg = RubisConfig::fig2(scenario, seed);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    assert!(dep.webs.len() >= 2, "storyline needs at least two web VMs");
    let lb = dep.lb.expect("fig2 deployment has a load balancer");

    // Load.
    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let mut app = JmeterApp::new(dep.frontend, CLIENTS, WorkloadMix::default(), users, items);
    app.measure_from = SimTime::ZERO + story.warmup;
    let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));

    // The storyline.
    let (web0, web1, db) = (dep.webs[0], dep.webs[1], dep.db);
    dep.topo.crash_vm(web0, story.crash_at);
    dep.topo.restart_vm(web0, story.crash_at + story.crash_outage);
    dep.topo.loss_burst(db, story.burst_at, story.burst_loss, story.burst_len);
    dep.topo
        .sim
        .schedule_fault(story.partition_at, FaultAction::Partition { links: vec![web1.link] });
    dep.topo.sim.schedule_fault(
        story.partition_at + story.partition_len,
        FaultAction::Heal { links: vec![web1.link] },
    );

    dep.topo.sim.run_until(SimTime::ZERO + story.end);

    let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).expect("generator");
    let timeline = gen.timeline.clone();
    let p99_ms = gen.latency.percentile(99.0);
    let proxy = dep.topo.host(lb).app::<ProxyApp>(0).expect("proxy").stats;

    let warmup_s = (story.warmup.as_nanos() / 1_000_000_000) as usize;
    let first_fault_s = (story.crash_at.as_nanos() / 1_000_000_000) as usize;
    let baseline = baseline_goodput(&timeline, warmup_s);
    let (mut ok_total, mut err_total) = (0u64, 0u64);
    let (mut ok_post, mut err_post) = (0u64, 0u64);
    for b in 0..timeline.len() {
        let (ok, err) = timeline.at(b);
        ok_total += ok;
        err_total += err;
        if b >= first_fault_s {
            ok_post += ok;
            err_post += err;
        }
    }
    let post_total = ok_post + err_post;
    let post_fault_error_rate = if post_total > 0 { err_post as f64 / post_total as f64 } else { 0.0 };

    let sec = |d: SimDuration| (d.as_nanos() / 1_000_000_000) as usize;
    let ttr_crash_s = time_to_recover(&timeline, baseline, sec(story.crash_at));
    let ttr_burst_s = time_to_recover(&timeline, baseline, sec(story.burst_at));
    let ttr_partition_s = time_to_recover(&timeline, baseline, sec(story.partition_at));

    let dispatched = dep.topo.sim.stats().dispatched;
    let metrics = dep.topo.sim.take_metrics();
    let rebex = metrics.counter_value("hip.rebex.stale_spi").unwrap_or(0);

    ResilienceCell {
        point: ResiliencePoint {
            scenario,
            baseline_goodput: baseline,
            ok_total,
            err_total,
            post_fault_error_rate,
            p99_ms,
            ttr_crash_s,
            ttr_burst_s,
            ttr_partition_s,
            proxy,
            rebex,
        },
        timeline,
        metrics,
        dispatched,
    }
}

/// Runs the three scenarios in parallel (each cell is an independent
/// deterministic simulation); output order is Basic, HIP, SSL.
pub fn run_sweep(seed: u64, story: Storyline) -> Vec<ResilienceCell> {
    let scenarios = [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl];
    crate::sweep::par_sweep(&scenarios, |&s| run_cell(s, seed, story))
}

/// Serializes a timeline as a JSON array of `[ok, err]` pairs (index =
/// sim-second), for the run manifest.
pub fn timeline_json(tl: &Timeline) -> String {
    let mut out = String::from("[");
    for b in 0..tl.len() {
        let (ok, err) = tl.at(b);
        if b > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{ok},{err}]"));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(ok: &[u64]) -> Timeline {
        Timeline { ok: ok.to_vec(), err: vec![] }
    }

    #[test]
    fn ttr_finds_first_sustained_recovery() {
        // baseline 10, threshold 8: dip at 3..6, recovery at 6 (6,7 ≥ 8).
        let t = tl(&[9, 10, 11, 2, 1, 9, 9, 10]);
        assert_eq!(time_to_recover(&t, 10.0, 3), Some(2));
        // A lone spike does not count as recovery.
        let t = tl(&[9, 10, 11, 2, 9, 1, 9, 9]);
        assert_eq!(time_to_recover(&t, 10.0, 3), Some(3));
        // Never recovering yields None.
        let t = tl(&[9, 10, 11, 2, 2, 2]);
        assert_eq!(time_to_recover(&t, 10.0, 3), None);
    }

    #[test]
    fn baseline_skips_bucket_zero() {
        let t = tl(&[1, 10, 12, 14]);
        assert!((baseline_goodput(&t, 3) - 11.0).abs() < 1e-9);
        assert!((baseline_goodput(&t, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_json_shape() {
        let mut t = tl(&[3, 4]);
        t.err = vec![0, 2];
        assert_eq!(timeline_json(&t), "[[3,0],[4,2]]");
    }
}
