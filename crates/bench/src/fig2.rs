//! Figure 2: RUBiS throughput vs concurrent clients for Basic/HIP/SSL.
//!
//! "We generated requests with several concurrent clients continuously
//! generating random HTTP GET requests that resulted in queries to the
//! database server. Then we calculated the average throughput (the
//! number of successful requests served per second) for the three
//! scenarios. Database caching was not employed."

use cloudsim::Flavor;
use netsim::{SimDuration, SimTime};
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::JmeterApp;
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

/// The client counts on the paper's x-axis.
pub const CLIENT_COUNTS: [usize; 8] = [2, 3, 4, 6, 10, 20, 30, 50];

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Point {
    /// Which security scenario.
    pub scenario: Scenario,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Successful requests per second in the measurement window.
    pub throughput: f64,
    /// Mean response time (ms).
    pub mean_latency_ms: f64,
}

/// One cell plus its observability outputs: the metrics registry the
/// simulation filled (per-stage latency histograms, drop counters), the
/// dispatched-event count, and the trace (empty unless `trace_cap > 0`).
pub struct Fig2Cell {
    /// The measured point.
    pub point: Fig2Point,
    /// The cell's full metrics registry (mergeable across cells).
    pub metrics: obs::MetricsRegistry,
    /// Events dispatched by this cell's simulation.
    pub dispatched: u64,
    /// Typed trace of the run (disabled unless requested).
    pub trace: netsim::trace::Trace,
}

/// Runs one (scenario, clients) cell, returning metrics and (when
/// `trace_cap > 0`) the typed trace alongside the measured point.
pub fn run_cell(
    scenario: Scenario,
    clients: usize,
    seed: u64,
    warmup: SimDuration,
    measure: SimDuration,
    trace_cap: usize,
) -> Fig2Cell {
    let cfg = RubisConfig::fig2(scenario, seed);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    if trace_cap > 0 {
        dep.topo.sim.trace = netsim::trace::Trace::enabled(trace_cap);
    }
    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let mut app = JmeterApp::new(dep.frontend, clients, WorkloadMix::default(), users, items);
    app.measure_from = SimTime::ZERO + warmup;
    let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime::ZERO + warmup + measure);
    let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).expect("generator");
    let point = Fig2Point {
        scenario,
        clients,
        throughput: gen.completed as f64 / measure.as_secs_f64(),
        mean_latency_ms: gen.latency.mean(),
    };
    let dispatched = dep.topo.sim.stats().dispatched;
    Fig2Cell {
        point,
        metrics: dep.topo.sim.take_metrics(),
        dispatched,
        trace: std::mem::replace(&mut dep.topo.sim.trace, netsim::trace::Trace::disabled()),
    }
}

/// Runs one (scenario, clients) cell.
pub fn run_point(
    scenario: Scenario,
    clients: usize,
    seed: u64,
    warmup: SimDuration,
    measure: SimDuration,
) -> Fig2Point {
    run_cell(scenario, clients, seed, warmup, measure, 0).point
}

/// Runs the full sweep, parallelized across cells (each cell is an
/// independent deterministic simulation — this is where the workspace
/// uses threads, never inside a run). Output is ordered by
/// (scenario, clients), matching the cell grid.
pub fn run_sweep(seed: u64, warmup: SimDuration, measure: SimDuration) -> Vec<Fig2Point> {
    run_sweep_cells(seed, warmup, measure).into_iter().map(|c| c.point).collect()
}

/// Like [`run_sweep`] but keeps each cell's metrics registry and event
/// count, so the driver can merge per-scenario stage histograms.
pub fn run_sweep_cells(seed: u64, warmup: SimDuration, measure: SimDuration) -> Vec<Fig2Cell> {
    let scenarios = [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl];
    let cells: Vec<(Scenario, usize)> = scenarios
        .iter()
        .flat_map(|&s| CLIENT_COUNTS.iter().map(move |&c| (s, c)))
        .collect();
    crate::sweep::par_sweep(&cells, |&(s, c)| run_cell(s, c, seed, warmup, measure, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_has_sane_output() {
        let p = run_point(
            Scenario::Basic,
            4,
            1,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        );
        assert!(p.throughput > 10.0, "throughput {}", p.throughput);
        assert!(p.mean_latency_ms > 1.0);
    }

    #[test]
    fn sweep_is_deterministic_across_parallel_runs() {
        // The same seed must give identical results regardless of thread
        // scheduling (each cell is an isolated simulation).
        let short = SimDuration::from_millis(1500);
        let a = run_sweep_subset(9, short);
        let b = run_sweep_subset(9, short);
        assert_eq!(a, b);
    }

    fn run_sweep_subset(seed: u64, measure: SimDuration) -> Vec<(usize, u64)> {
        [2usize, 6]
            .iter()
            .map(|&c| {
                let p = run_point(Scenario::Basic, c, seed, SimDuration::from_millis(500), measure);
                (c, (p.throughput * 1000.0) as u64)
            })
            .collect()
    }
}
