//! The one parallel-sweep harness for the experiment drivers.
//!
//! Every figure/table driver runs a set of *independent deterministic
//! simulations* (one per parameter cell) and wants them spread across
//! cores. The three drivers used to carry their own hand-rolled
//! crossbeam loops; this module is the single shared implementation,
//! built on `std::thread::scope`.
//!
//! Determinism contract: the returned `Vec` is ordered by **input
//! index**, never by completion order, so a sweep's output is
//! byte-identical across runs regardless of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, fanned out over the available cores.
///
/// Results come back ordered by input index (slot `i` holds
/// `f(&items[i])`), so output ordering is independent of scheduling.
/// Panics in `f` propagate after the scope joins.
pub fn par_sweep<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("no poisoning") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("no poisoning").expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_sweep(&items, |&x| x * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = par_sweep(&[], |x: &u32| *x);
        assert!(none.is_empty());
        assert_eq!(par_sweep(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn deterministic_across_runs() {
        let items: Vec<usize> = (0..64).collect();
        let run = || {
            par_sweep(&items, |&i| {
                // Unequal work per item so completion order scrambles.
                let mut acc = i as u64;
                for _ in 0..(i * 1000) {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
        };
        assert_eq!(run(), run());
    }
}
