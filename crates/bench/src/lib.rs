//! # bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (§V), plus ablations. Each experiment is a library
//! function here and a binary under `src/bin/` that prints the same
//! rows/series the paper reports. DESIGN.md carries the experiment
//! index; EXPERIMENTS.md records paper-vs-measured.

#![warn(missing_docs)]

pub mod datapath;
pub mod fig2;
pub mod fig3;
pub mod report;
pub mod resilience;
pub mod sweep;
pub mod tab_rt;
