//! Small text-table helpers for the experiment binaries.

/// Renders an ASCII table: header row + data rows, columns padded.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Writes rows as a CSV file under `results/` (creating the directory),
/// so figures can be re-plotted externally. Returns the path written.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// A crude horizontal bar for terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    "█".repeat(filled.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
        assert!(t.contains("longer-name"));
    }

    #[test]
    fn bar_scaling() {
        assert_eq!(bar(50.0, 100.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 100.0, 10), "");
        assert_eq!(bar(200.0, 100.0, 10).chars().count(), 10, "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
