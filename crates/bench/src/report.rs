//! Small text-table helpers for the experiment binaries, plus the one
//! shared run-manifest / trace-export path every binary goes through:
//! [`manifest`] seeds an [`obs::RunManifest`] with provenance (seed,
//! git revision), [`write_manifest`] finishes it with wall-clock, event
//! count and the full metrics dump, and [`trace_out`] parses the
//! `--trace-out <path>` flag for structured JSONL trace export.

use obs::{Histogram, MetricsRegistry, RunManifest};
use std::path::{Path, PathBuf};

/// Renders an ASCII table: header row + data rows, columns padded.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Quotes a CSV cell per RFC 4180 when it contains a comma, quote or
/// line break (inner quotes doubled); plain cells pass through as-is.
pub fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Writes rows as a CSV file under `results/` (creating the directory),
/// so figures can be re-plotted externally. Cells are escaped with
/// [`csv_cell`]. Returns the path written.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    let join = |cells: &mut dyn Iterator<Item = &str>| -> String {
        cells.map(csv_cell).collect::<Vec<_>>().join(",")
    };
    out.push_str(&join(&mut headers.iter().copied()));
    out.push('\n');
    for row in rows {
        out.push_str(&join(&mut row.iter().map(String::as_str)));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// The short git revision of the working tree, or `"unknown"` when git
/// is unavailable (e.g. running from an exported tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Starts a run manifest for `bin`/`scenario` with the common
/// provenance fields every experiment records: seed and git revision.
pub fn manifest(bin: &str, scenario: &str, seed: u64) -> RunManifest {
    let mut m = RunManifest::new(bin, scenario);
    m.num("seed", seed).str_field("git_rev", &git_rev());
    m
}

/// Finishes a manifest with the run outcome — wall-clock seconds,
/// dispatched event count, and the full metrics dump — and writes it
/// under `results/`. Returns the path written.
pub fn write_manifest(
    mut m: RunManifest,
    wall_secs: f64,
    events: u64,
    metrics: &MetricsRegistry,
) -> std::io::Result<PathBuf> {
    m.num("wall_secs", format!("{wall_secs:.3}"))
        .num("events", events)
        .raw("metrics", metrics.to_json());
    m.write_to(Path::new("results"))
}

/// Parses `--trace-out <path>` (or `--trace-out=<path>`) from the
/// process arguments; when present the binary runs a traced
/// representative simulation and exports it as JSONL.
pub fn trace_out() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// One table/CSV row summarizing a nanosecond-valued latency histogram
/// in milliseconds: `[stage, count, p50, p90, p99, max]`.
pub fn hist_row_ms(stage: &str, h: &Histogram) -> Vec<String> {
    let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
    vec![
        stage.to_string(),
        h.count().to_string(),
        ms(h.quantile(0.50)),
        ms(h.quantile(0.90)),
        ms(h.quantile(0.99)),
        ms(h.max()),
    ]
}

/// Renders the per-stage latency-quantile table for the protocol stages
/// found in `metrics` (listed in `stages` order; absent stages are
/// skipped). Returns `None` when none of the stages were observed.
pub fn stage_table(metrics: &MetricsRegistry, stages: &[&str]) -> Option<String> {
    let rows: Vec<Vec<String>> = stages
        .iter()
        .filter_map(|s| metrics.hist_get(s).map(|h| hist_row_ms(s, h)))
        .filter(|r| r[1] != "0")
        .collect();
    if rows.is_empty() {
        return None;
    }
    Some(table(&["stage", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"], &rows))
}

/// A crude horizontal bar for terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    "█".repeat(filled.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
        assert!(t.contains("longer-name"));
    }

    #[test]
    fn csv_cells_are_escaped() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_cell("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_cell(""), "");
    }

    #[test]
    fn hist_row_converts_ns_to_ms() {
        let mut h = obs::Histogram::new();
        h.record(2_000_000); // 2 ms
        let row = hist_row_ms("stage", &h);
        assert_eq!(row[0], "stage");
        assert_eq!(row[1], "1");
        assert_eq!(row[2], "2.00");
    }

    #[test]
    fn stage_table_skips_absent_stages() {
        let mut m = obs::MetricsRegistry::new();
        m.observe_name("hip.bex", 5_000_000);
        let t = stage_table(&m, &["hip.bex", "esp.encrypt"]).expect("one stage present");
        assert!(t.contains("hip.bex"));
        assert!(!t.contains("esp.encrypt"));
        assert!(stage_table(&m, &["tcp.connect"]).is_none());
    }

    #[test]
    fn bar_scaling() {
        assert_eq!(bar(50.0, 100.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 100.0, 10), "");
        assert_eq!(bar(200.0, 100.0, 10).chars().count(), 10, "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
