//! Microbenchmarks of the from-scratch crypto primitives — the real
//! wall-clock costs underlying the simulator's calibrated cost model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use sim_crypto::aes::{reference, Aes128};
use sim_crypto::bigint::BigUint;
use sim_crypto::dh::{DhGroup, DhKeyPair};
use sim_crypto::hmac::{hmac_sha256, HmacKey};
use sim_crypto::rsa::RsaKeyPair;
use sim_crypto::sha256::sha256;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(1)
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [64usize, 1500, 16384] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| b.iter(|| sha256(std::hint::black_box(&data))));
        g.bench_function(format!("hmac_sha256/{size}"), |b| {
            b.iter(|| hmac_sha256(b"key", std::hint::black_box(&data)))
        });
        // The per-SA cached transcript path: ipad/opad absorbed once at
        // key-install time, cloned per MAC.
        let key = HmacKey::new(b"key");
        g.bench_function(format!("hmac_sha256_cached/{size}"), |b| {
            b.iter(|| key.mac(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut g = c.benchmark_group("aes");
    let aes = Aes128::new(b"0123456789abcdef");
    for size in [64usize, 1448, 16384] {
        let data = vec![0x5au8; size];
        let iv = [7u8; 16];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("cbc_encrypt/{size}"), |b| {
            b.iter(|| aes.cbc_encrypt(&iv, std::hint::black_box(&data)))
        });
        let ct = aes.cbc_encrypt(&iv, &data);
        g.bench_function(format!("cbc_decrypt/{size}"), |b| {
            b.iter(|| aes.cbc_decrypt(&iv, std::hint::black_box(&ct)).expect("valid"))
        });
    }
    // T-table fast path vs the retained byte-wise reference, single
    // block, so the per-round cost difference is directly visible.
    let mut block = [0x5au8; 16];
    g.bench_function("encrypt_block_ttable", |b| {
        b.iter(|| {
            aes.encrypt_block(std::hint::black_box(&mut block));
        })
    });
    g.bench_function("encrypt_block_reference", |b| {
        b.iter(|| {
            reference::encrypt_block(&aes, std::hint::black_box(&mut block));
        })
    });
    g.bench_function("decrypt_block_ttable", |b| {
        b.iter(|| {
            aes.decrypt_block(std::hint::black_box(&mut block));
        })
    });
    g.bench_function("decrypt_block_reference", |b| {
        b.iter(|| {
            reference::decrypt_block(&aes, std::hint::black_box(&mut block));
        })
    });
    g.finish();
}

fn bench_bigint(c: &mut Criterion) {
    let mut g = c.benchmark_group("bigint");
    let mut r = rng();
    let a = BigUint::random_exact_bits(&mut r, 1024);
    let b = BigUint::random_exact_bits(&mut r, 1024);
    let m = {
        let m = BigUint::random_exact_bits(&mut r, 1024);
        if m.is_even() { m.add(&BigUint::one()) } else { m }
    };
    g.bench_function("mul_1024", |bch| bch.iter(|| std::hint::black_box(&a).mul(&b)));
    g.bench_function("div_rem_2048_by_1024", |bch| {
        let big = a.mul(&b);
        bch.iter(|| std::hint::black_box(&big).div_rem(&m))
    });
    let e = BigUint::from_u64(65537);
    g.bench_function("modpow_1024_e65537", |bch| {
        bch.iter(|| std::hint::black_box(&a).modpow(&e, &m))
    });
    g.finish();
}

fn bench_asymmetric(c: &mut Criterion) {
    let mut g = c.benchmark_group("asymmetric");
    g.sample_size(10);
    let mut r = rng();
    let kp = RsaKeyPair::generate(1024, &mut r);
    let msg = b"hip control packet bytes";
    let sig = kp.sign(msg);
    g.bench_function("rsa1024_sign", |b| b.iter(|| kp.sign(std::hint::black_box(msg))));
    g.bench_function("rsa1024_verify", |b| {
        b.iter(|| kp.public().verify(std::hint::black_box(msg), &sig))
    });
    let dh_a = DhKeyPair::generate(DhGroup::Modp1536, &mut r);
    let dh_b = DhKeyPair::generate(DhGroup::Modp1536, &mut r);
    let pub_b = dh_b.public_bytes();
    g.bench_function("dh1536_shared_secret", |b| {
        b.iter(|| dh_a.shared_secret(std::hint::black_box(&pub_b)).expect("valid"))
    });
    g.finish();
}

criterion_group!(benches, bench_hash, bench_aes, bench_bigint, bench_asymmetric);
criterion_main!(benches);
