//! ABL-1 — the paper's §IV-B processing-cost argument: the HIP base
//! exchange and a TLS handshake pay for essentially the same
//! cryptography. This bench measures the *actual computation* of both
//! handshakes end to end (signatures, DH, puzzles, KDF, packet codecs),
//! using identical key sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hip_core::identity::HostIdentity;
use hip_core::{CostModel, HipConfig, HipShim, PeerInfo};
use netsim::host::{Host, L35Shim as _};
use netsim::packet::v4;
use netsim::{Endpoint, LinkParams, Sim, SimTime};
use rand::SeedableRng;
use tls_sim::{CertificateAuthority, TlsCosts, TlsSession};

/// Runs one full BEX between two simulated hosts; returns completions.
fn run_bex(id_seed: u64) -> u64 {
    let mut key_rng = rand::rngs::StdRng::seed_from_u64(id_seed);
    let id_a = HostIdentity::generate_rsa(512, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(512, &mut key_rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let (addr_a, addr_b) = (v4(10, 0, 0, 1), v4(10, 0, 0, 2));
    let cfg = HipConfig { costs: CostModel::free(), ..HipConfig::default() };
    let mut shim_a = HipShim::new(id_a, cfg.clone());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![addr_b], via_rvs: None });
    let mut shim_b = HipShim::new(id_b, cfg);
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![addr_a], via_rvs: None });

    let mut sim = Sim::new(1);
    let mut ha = Host::new("a");
    ha.set_shim(Box::new(shim_a));
    let mut hb = Host::new("b");
    hb.set_shim(Box::new(shim_b));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        LinkParams::datacenter(),
    );
    sim.world.node_mut::<Host>(a).expect("host").core.add_iface(link, vec![addr_a]);
    sim.world.node_mut::<Host>(b).expect("host").core.add_iface(link, vec![addr_b]);
    // Kick off the BEX by pushing an ICMP echo through the identity
    // path: the shim queues it and runs I1/R1/I2/R2.
    sim.start();
    sim.with_node_ctx(a, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().expect("host");
        host.shim_command(ctx, |shim, api| {
            let shim = shim.as_any_mut().downcast_mut::<HipShim>().expect("hip");
            let pkt = netsim::Packet::new(
                hit_a.to_ip(),
                hit_b.to_ip(),
                netsim::Payload::Icmp(netsim::packet::IcmpMessage {
                    kind: netsim::packet::IcmpKind::EchoRequest,
                    ident: 1,
                    seq: 1,
                    payload_len: 8,
                }),
            );
            shim.outbound(pkt, api);
        });
    });
    sim.run_until(SimTime(5_000_000_000));
    let shim = sim.world.node::<Host>(a).expect("host").shim::<HipShim>().expect("hip");
    assert!(shim.is_established(&hit_b), "BEX completed");
    shim.stats.bex_completed
}

/// Runs one full TLS handshake between in-memory sessions.
fn run_tls(id_seed: u64) -> bool {
    let mut rng = rand::rngs::StdRng::seed_from_u64(id_seed);
    let ca = CertificateAuthority::new(512, &mut rng);
    let keys = sim_crypto::rsa::RsaKeyPair::generate(512, &mut rng);
    let cert = ca.issue("srv", keys.public());
    let mut c = TlsSession::client(ca.public().clone(), TlsCosts::free());
    let mut s = TlsSession::server(cert, keys, TlsCosts::free());
    let mut to_s = c.start_handshake(&mut rng);
    for _ in 0..6 {
        let out = s.on_bytes(&to_s, &mut rng);
        to_s.clear();
        let out_c = c.on_bytes(&out.to_peer, &mut rng);
        to_s.extend(out_c.to_peer);
        if c.is_established() && s.is_established() {
            return true;
        }
    }
    false
}

fn bench_handshakes(c: &mut Criterion) {
    let mut g = c.benchmark_group("handshake");
    g.sample_size(10);
    // Key generation excluded where possible: both paths regenerate keys
    // per iteration (identical burden on each side of the comparison).
    g.bench_function("hip_bex_full", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_bex(std::hint::black_box(seed))
        })
    });
    g.bench_function("tls_handshake_full", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            assert!(run_tls(std::hint::black_box(seed)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_handshakes);
criterion_main!(benches);
