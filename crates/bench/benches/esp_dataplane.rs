//! Data-plane throughput of the ESP-BEET implementation: real AES-CBC +
//! HMAC on realistic packet sizes, plus the anti-replay window check in
//! isolation. These wall-clock numbers ground the cost model's
//! `sym_per_packet` / `sym_per_byte` entries.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hip_core::esp::{EspSa, InnerMode};
use netsim::packet::{v4, Payload, TcpFlags, TcpSegment, UdpData, UdpDatagram};

fn sa() -> EspSa {
    EspSa::new(1, [3; 16], [4; 32], v4(1, 0, 0, 1), v4(1, 0, 0, 2))
}

fn tcp_payload(len: usize) -> Payload {
    Payload::Tcp(TcpSegment {
        src_port: 1,
        dst_port: 2,
        seq: 0,
        ack: 0,
        flags: TcpFlags::ACK,
        window: 65535,
        data: Bytes::from(vec![0x61u8; len]),
        gso_mss: 0,
    })
}

fn bench_esp(c: &mut Criterion) {
    let mut g = c.benchmark_group("esp");
    for len in [64usize, 536, 1448] {
        let p = tcp_payload(len);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("encapsulate/{len}"), |b| {
            let mut tx = sa();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                tx.encapsulate(InnerMode::Hit, std::hint::black_box(&p), seed)
            })
        });
        g.bench_function(format!("decapsulate/{len}"), |b| {
            // Fresh SA pair per batch so sequence numbers line up.
            b.iter_batched(
                || {
                    let mut tx = sa();
                    let rx = sa();
                    let esp = tx.encapsulate(InnerMode::Hit, &p, 1);
                    (rx, esp)
                },
                |(mut rx, esp)| rx.decapsulate(std::hint::black_box(&esp)).expect("valid"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    // UDP framing for comparison.
    let mut g = c.benchmark_group("esp_udp");
    let p = Payload::Udp(UdpDatagram {
        src_port: 1,
        dst_port: 2,
        data: UdpData::Raw(Bytes::from(vec![0u8; 512])),
    });
    g.bench_function("encapsulate/udp512", |b| {
        let mut tx = sa();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            tx.encapsulate(InnerMode::Hit, std::hint::black_box(&p), seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_esp);
criterion_main!(benches);
