//! ABL-3 — the ECC extension (§IV-B footnote: "the latest version of
//! HIP supports also elliptic-curve cryptography that can curb the
//! processing costs without hardware acceleration"): RSA vs ECDSA host
//! identities for the control-plane operations a BEX performs.

use criterion::{criterion_group, criterion_main, Criterion};
use hip_core::identity::HostIdentity;
use rand::SeedableRng;

fn bench_identities(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let rsa = HostIdentity::generate_rsa(1024, &mut rng);
    let ecdsa = HostIdentity::generate_ecdsa(&mut rng);
    let msg = vec![0x42u8; 256]; // a typical R1/I2 signature coverage

    let mut g = c.benchmark_group("hi_sign");
    g.sample_size(10);
    g.bench_function("rsa1024", |b| {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| rsa.sign(std::hint::black_box(&msg), &mut r))
    });
    g.bench_function("ecdsa_p256", |b| {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| ecdsa.sign(std::hint::black_box(&msg), &mut r))
    });
    g.finish();

    let mut g = c.benchmark_group("hi_verify");
    g.sample_size(10);
    let mut r = rand::rngs::StdRng::seed_from_u64(2);
    let rsa_sig = rsa.sign(&msg, &mut r);
    let ecdsa_sig = ecdsa.sign(&msg, &mut r);
    g.bench_function("rsa1024", |b| {
        b.iter(|| assert!(rsa.public().verify(std::hint::black_box(&msg), &rsa_sig)))
    });
    g.bench_function("ecdsa_p256", |b| {
        b.iter(|| assert!(ecdsa.public().verify(std::hint::black_box(&msg), &ecdsa_sig)))
    });
    g.finish();

    let mut g = c.benchmark_group("hi_keygen");
    g.sample_size(10);
    g.bench_function("rsa1024", |b| {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| HostIdentity::generate_rsa(1024, &mut r))
    });
    g.bench_function("ecdsa_p256", |b| {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| HostIdentity::generate_ecdsa(&mut r))
    });
    g.finish();
}

criterion_group!(benches, bench_identities);
criterion_main!(benches);
