//! Wall-clock cost of a single-flow 10 MB bulk transfer through the
//! full simulator — plain TCP and TCP-over-HIP/ESP — across the GSO
//! modes. This is the end-to-end view of datapath batching: `off` pays
//! per-MSS segmentation, per-frame crypto, and one event per frame;
//! `exact` (the default) keeps the identical event schedule but batches
//! segmentation and crypto; `merged` also collapses arrivals.

use bench::datapath::bulk_transfer;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::tcp::GsoMode;

const BYTES: u64 = 10 * 1024 * 1024;

fn bench_tcp_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_bulk");
    // Each iteration simulates a full 10 MB transfer; keep samples low.
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BYTES));
    for (scenario, hip) in [("basic", false), ("hip", true)] {
        for (name, gso) in
            [("off", GsoMode::Off), ("exact", GsoMode::Exact), ("merged", GsoMode::Merged)]
        {
            g.bench_function(format!("{scenario}/{name}"), |b| {
                b.iter(|| bulk_transfer(hip, std::hint::black_box(gso), BYTES, 42))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_tcp_bulk);
criterion_main!(benches);
