//! ABL-2 — the HIP puzzle's DoS asymmetry (§IV-B): solving costs grow
//! exponentially with K while verification stays a single hash, which is
//! what lets a loaded responder shed load onto initiators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hip_core::identity::Hit;
use hip_core::puzzle;

fn bench_puzzle(c: &mut Criterion) {
    let hi = Hit([0xaa; 16]);
    let hr = Hit([0xbb; 16]);
    let mut g = c.benchmark_group("puzzle_solve");
    for k in [0u8, 4, 8, 12, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                puzzle::solve(std::hint::black_box(i), k, &hi, &hr, 0)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("puzzle_verify");
    for k in [8u8, 16] {
        let (j, _) = puzzle::solve(42, k, &hi, &hr, 0);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| puzzle::verify(std::hint::black_box(42), k, &hi, &hr, j))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_puzzle);
criterion_main!(benches);
