//! ABL-4 — the LSI translation penalty (§V-B: "all the experiments
//! involving HIP were carried out with LSIs that require a few extra
//! translations incurring some penalty"): the HIT fast path vs the
//! LSI path through the mapper, on real data-plane packets.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use hip_core::esp::{rebuild_inner, EspSa, InnerMode};
use hip_core::identity::{Hit, LsiMapper};
use netsim::packet::{v4, Payload, TcpFlags, TcpSegment};
use std::net::IpAddr;

fn sa_pair() -> (EspSa, EspSa) {
    let src = v4(1, 0, 0, 1);
    let dst = v4(1, 0, 0, 2);
    (
        EspSa::new(7, [1; 16], [2; 32], src, dst),
        EspSa::new(7, [1; 16], [2; 32], src, dst),
    )
}

fn payload() -> Payload {
    Payload::Tcp(TcpSegment {
        src_port: 1000,
        dst_port: 80,
        seq: 1,
        ack: 2,
        flags: TcpFlags::ACK,
        window: 65535,
        data: Bytes::from(vec![0u8; 1024]),
        gso_mss: 0,
    })
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("esp_path");
    for (name, mode) in [("hit", InnerMode::Hit), ("lsi", InnerMode::Lsi)] {
        g.bench_function(format!("encap_decap_rebuild/{name}"), |b| {
            let (mut tx, mut rx) = sa_pair();
            let p = payload();
            let mut mapper = LsiMapper::new();
            let peer = Hit([9; 16]);
            let my = Hit([8; 16]);
            let lsi_peer = mapper.lsi_for(peer);
            let lsi_my = mapper.lsi_for(my);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let esp = tx.encapsulate(mode, &p, seed);
                let (m, inner_payload) = rx.decapsulate(&esp).expect("valid");
                // The LSI path pays the extra mapper lookups; the HIT
                // path reconstructs straight from the SA.
                let (src, dst) = match m {
                    InnerMode::Hit => (rx.inner_src, rx.inner_dst),
                    InnerMode::Lsi => (
                        IpAddr::V4(mapper.lsi_of(&peer).expect("mapped")),
                        IpAddr::V4(mapper.lsi_of(&my).expect("mapped")),
                    ),
                };
                let _ = (src, dst);
                rebuild_inner(&rx, m, inner_payload, IpAddr::V4(lsi_peer), IpAddr::V4(lsi_my))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("lsi_mapper");
    let mut mapper = LsiMapper::new();
    let hits: Vec<Hit> = (0..1000u32)
        .map(|i| {
            let mut b = [0u8; 16];
            b[12..16].copy_from_slice(&i.to_be_bytes());
            Hit(b)
        })
        .collect();
    for h in &hits {
        mapper.lsi_for(*h);
    }
    g.bench_function("lookup_hit_of", |b| {
        let lsi = mapper.lsi_of(&hits[500]).expect("mapped");
        b.iter(|| mapper.hit_of(std::hint::black_box(&lsi)))
    });
    g.bench_function("lookup_lsi_of", |b| {
        b.iter(|| mapper.lsi_of(std::hint::black_box(&hits[500])))
    });
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
