//! Golden determinism test: the calendar-queue engine must give
//! bit-identical runs for the same seed. A RUBiS smoke topology (the
//! HIP scenario, so TCP, the shim, ESP and cancellable timers are all
//! exercised) is run twice and every observable — completed requests,
//! event counts, the full `SimStats` block, final virtual time, and the
//! trace — must match exactly.

use cloudsim::Flavor;
use netsim::trace::Trace;
use netsim::{SimDuration, SimStats, SimTime};
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::JmeterApp;
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

struct RunFingerprint {
    completed: u64,
    errors: u64,
    stats: SimStats,
    final_time_ns: u64,
    trace: String,
    metrics_json: String,
}

fn smoke_run(scenario: Scenario, seed: u64) -> RunFingerprint {
    smoke_run_metrics(scenario, seed, true)
}

fn smoke_run_metrics(scenario: Scenario, seed: u64, metrics_on: bool) -> RunFingerprint {
    let cfg = RubisConfig::fig2(scenario, seed);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    dep.topo.sim.set_metrics_enabled(metrics_on);
    dep.topo.sim.trace = Trace::enabled(200_000);
    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let app = JmeterApp::new(dep.frontend, 16, WorkloadMix::default(), users, items);
    let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime::ZERO + SimDuration::from_secs(4));
    let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).expect("generator");
    RunFingerprint {
        completed: gen.completed,
        errors: gen.errors,
        stats: dep.topo.sim.stats(),
        final_time_ns: dep.topo.sim.now().as_nanos(),
        trace: dep.topo.sim.trace.dump(),
        metrics_json: dep.topo.sim.metrics.to_json(),
    }
}

#[test]
fn same_seed_same_run_hip() {
    let a = smoke_run(Scenario::HipLsi, 7);
    let b = smoke_run(Scenario::HipLsi, 7);
    assert!(a.completed > 0, "smoke run must serve requests");
    assert_eq!(a.errors, 0);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.stats, b.stats, "event counters must be bit-identical");
    assert_eq!(a.final_time_ns, b.final_time_ns);
    assert_eq!(a.trace, b.trace, "traces must be bit-identical");
    // The run exercised the new machinery, not a trivial path.
    assert!(a.stats.dispatched > 10_000, "dispatched {}", a.stats.dispatched);
    assert!(a.stats.timers_cancelled > 0, "cancellable timers unused");
}

#[test]
fn same_seed_same_run_basic() {
    let a = smoke_run(Scenario::Basic, 11);
    let b = smoke_run(Scenario::Basic, 11);
    assert!(a.completed > 0);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.final_time_ns, b.final_time_ns);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn metrics_never_perturb_the_run() {
    // The metrics registry must observe, never steer: the same seed
    // with metrics on and off must give identical final stats and the
    // identical trace sequence, and the metrics dump itself must be
    // reproducible across two metrics-on runs.
    let on = smoke_run_metrics(Scenario::HipLsi, 7, true);
    let off = smoke_run_metrics(Scenario::HipLsi, 7, false);
    assert_eq!(on.completed, off.completed);
    assert_eq!(on.errors, off.errors);
    assert_eq!(on.stats, off.stats, "metrics on/off changed the event schedule");
    assert_eq!(on.final_time_ns, off.final_time_ns);
    assert_eq!(on.trace, off.trace, "metrics on/off changed the trace sequence");
    // On actually recorded something; off recorded nothing.
    assert!(on.metrics_json.contains("tcp.connect"), "metrics-on run populated stage histograms");
    assert!(!off.metrics_json.contains("tcp.connect"), "disabled registry stayed empty");
    // And the dump itself is deterministic.
    let on2 = smoke_run_metrics(Scenario::HipLsi, 7, true);
    assert_eq!(on.metrics_json, on2.metrics_json, "metrics dump must be reproducible");
}

#[test]
fn crypto_fast_path_is_bit_identical_to_reference() {
    // The T-table AES fast path must be an implementation detail, not a
    // behavioural change: a fig2-style RUBiS run (HIP: ESP + puzzle +
    // BEX) and a tab_rt-style SSL run (TLS records + PRF) replayed with
    // the byte-wise reference cipher must reproduce every observable
    // bit-for-bit. Both runs happen on this thread, so the thread-local
    // mode switch cannot leak into concurrently running tests.
    struct ResetMode;
    impl Drop for ResetMode {
        fn drop(&mut self) {
            sim_crypto::aes::set_reference_mode(false);
        }
    }
    let _reset = ResetMode;
    for (scenario, seed) in [(Scenario::HipLsi, 7u64), (Scenario::Ssl, 7u64)] {
        sim_crypto::aes::set_reference_mode(false);
        let fast = smoke_run(scenario, seed);
        sim_crypto::aes::set_reference_mode(true);
        let slow = smoke_run(scenario, seed);
        assert!(fast.completed > 0, "{scenario:?}: smoke run must serve requests");
        assert_eq!(fast.completed, slow.completed, "{scenario:?}: completed requests diverged");
        assert_eq!(fast.errors, slow.errors, "{scenario:?}: errors diverged");
        assert_eq!(fast.stats, slow.stats, "{scenario:?}: event counters diverged");
        assert_eq!(fast.final_time_ns, slow.final_time_ns, "{scenario:?}: final time diverged");
        assert_eq!(fast.trace, slow.trace, "{scenario:?}: traces diverged");
        assert_eq!(fast.metrics_json, slow.metrics_json, "{scenario:?}: metrics diverged");
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the fingerprint is actually sensitive: two
    // different seeds should not collide on the full stats block.
    let a = smoke_run(Scenario::Basic, 1);
    let b = smoke_run(Scenario::Basic, 2);
    assert_ne!(
        (a.stats, a.final_time_ns),
        (b.stats, b.final_time_ns),
        "different seeds gave identical fingerprints — fingerprint too weak"
    );
}

#[test]
fn fault_storyline_is_deterministic() {
    // The resilience harness injects crashes, loss bursts and a
    // partition mid-run; the same seed + storyline must still reproduce
    // every observable bit-for-bit (fault checks must not perturb the
    // RNG draw sequence).
    use bench::resilience::{run_cell, Storyline};
    let story = Storyline::quick();
    let a = run_cell(Scenario::HipLsi, 13, story);
    let b = run_cell(Scenario::HipLsi, 13, story);
    assert!(a.point.ok_total > 0, "storyline run must serve requests");
    assert_eq!(a.dispatched, b.dispatched, "event counts diverged under faults");
    assert_eq!(a.point.ok_total, b.point.ok_total);
    assert_eq!(a.point.err_total, b.point.err_total);
    assert_eq!(a.timeline.ok, b.timeline.ok, "goodput timelines diverged");
    assert_eq!(a.timeline.err, b.timeline.err, "error timelines diverged");
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "metrics diverged under faults"
    );
    // The storyline actually exercised the fault machinery.
    assert!(a.point.proxy.ejections >= 1, "no ejections: {:?}", a.point.proxy);
    assert!(a.point.ttr_crash_s.is_some(), "crash never recovered");
}
