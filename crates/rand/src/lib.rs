//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate supplies
//! the subset of the rand 0.10 API the workspace uses: the [`Rng`] /
//! [`RngExt`] trait (one trait here, re-exported under both names),
//! [`SeedableRng::seed_from_u64`], and a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64). Determinism is the property the
//! simulator depends on — the exact stream differs from upstream
//! `StdRng`, which only shifts the concrete values of seeded runs, never
//! their reproducibility.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can construct themselves from an RNG's uniform u64 stream.
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> FromRng for [u8; N] {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges a [`Rng`] can sample uniformly. Parameterised by the output
/// type (like upstream's `SampleRange<T>`) so integer literals in a
/// range infer their type from the call site.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Modulo draw; bias is negligible for simulation spans.
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                let span = span.wrapping_add(1); // 0 means the full u64 domain
                let draw = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (start as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}
impl_sample_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                   i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The RNG trait: a `u64` source plus the derived sampling helpers.
pub trait Rng {
    /// The next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// Fills `dest` (any byte-slice-like value) with uniform bytes.
    fn fill<T: AsMut<[u8]> + ?Sized>(&mut self, dest: &mut T) {
        self.fill_bytes(dest.as_mut());
    }

    /// A uniformly distributed value of type `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

/// rand 0.9+ splits sampling helpers into an extension trait; here they
/// live on [`Rng`] itself, and this alias keeps both import paths valid.
pub use Rng as RngExt;

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++, seeded via SplitMix64.
    ///
    /// Fast, passes BigCrush, and — the only property the simulator
    /// actually needs — fully deterministic for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = r.random_range(-5i32..50);
            assert!((-5..50).contains(&s));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn range_spanning_negative_values() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen_neg = false;
        for _ in 0..200 {
            let v = r.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg);
    }
}
