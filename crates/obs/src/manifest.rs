//! Run manifests: the provenance record a bench binary writes next to
//! its results so a number can always be traced back to the code, seed
//! and configuration that produced it.
//!
//! One manifest per `(binary, scenario)` pair, written to
//! `results/<bin>-<scenario>.json`. The caller supplies environment
//! facts (git rev, wall-clock) — this module only assembles and writes.

use crate::json;
use std::io;
use std::path::{Path, PathBuf};

/// Builder for one run-manifest JSON file.
pub struct RunManifest {
    bin: String,
    scenario: String,
    fields: Vec<(String, String)>, // key -> serialized JSON value
}

impl RunManifest {
    /// A manifest for `bin` running `scenario`.
    pub fn new(bin: &str, scenario: &str) -> Self {
        RunManifest { bin: bin.to_string(), scenario: scenario.to_string(), fields: Vec::new() }
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.push((key.to_string(), json::quote(v)));
        self
    }

    /// Adds a numeric field (or any value whose `Display` output is
    /// already valid JSON).
    pub fn num(&mut self, key: &str, v: impl std::fmt::Display) -> &mut Self {
        self.fields.push((key.to_string(), v.to_string()));
        self
    }

    /// Adds a field whose value is pre-serialized JSON (e.g. a metrics
    /// dump or a nested config object).
    pub fn raw(&mut self, key: &str, v: String) -> &mut Self {
        self.fields.push((key.to_string(), v));
        self
    }

    /// The file name this manifest writes to: `<bin>-<scenario>.json`,
    /// with the scenario slugified (lowercase, `/ ()` -> `-`).
    pub fn file_name(&self) -> String {
        let slug: String = self
            .scenario
            .chars()
            .map(|c| match c {
                'A'..='Z' => c.to_ascii_lowercase(),
                'a'..='z' | '0'..='9' | '-' | '_' | '.' => c,
                _ => '-',
            })
            .collect();
        let slug = slug.trim_matches('-').to_string();
        if slug.is_empty() {
            format!("{}.json", self.bin)
        } else {
            format!("{}-{}.json", self.bin, slug)
        }
    }

    /// Serializes the manifest (pretty-ish: one field per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bin\": {},\n", json::quote(&self.bin)));
        out.push_str(&format!("  \"scenario\": {}", json::quote(&self.scenario)));
        for (k, v) in &self.fields {
            out.push_str(",\n  ");
            out.push_str(&json::quote(k));
            out.push_str(": ");
            out.push_str(v);
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the manifest under `dir`, creating it if needed.
    /// Returns the path written.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_is_slugified() {
        let m = RunManifest::new("fig3_iperf_rtt", "LSI(IPv4)");
        assert_eq!(m.file_name(), "fig3_iperf_rtt-lsi-ipv4.json");
        let m = RunManifest::new("engine_perf", "default");
        assert_eq!(m.file_name(), "engine_perf-default.json");
    }

    #[test]
    fn json_contains_fields_in_order() {
        let mut m = RunManifest::new("b", "s");
        m.num("seed", 42u64).str_field("git_rev", "abc123").raw("metrics", "{\"counters\":{}}".into());
        let j = m.to_json();
        assert!(j.contains("\"bin\": \"b\""));
        assert!(j.contains("\"seed\": 42"));
        assert!(j.contains("\"git_rev\": \"abc123\""));
        assert!(j.contains("\"metrics\": {\"counters\":{}}"));
        assert!(j.find("seed").unwrap() < j.find("git_rev").unwrap());
    }
}
