//! A registry of named counters, gauges and histograms.
//!
//! Hot paths pre-register a metric once (getting a small integer
//! handle) and then bump it with an index plus one `enabled` branch —
//! no hashing, no allocation. Rare events (a BEX completing, an SA
//! being installed) can use the by-name API, which lazily registers.
//!
//! Registries from parallel sweep shards merge by name; dumps are
//! sorted by name so output is deterministic.

use crate::hist::Histogram;
use crate::json;
use std::collections::HashMap;

/// Handle to a pre-registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrId(usize);

/// Handle to a pre-registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a pre-registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Named counters, gauges and histograms. See the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, Histogram)>,
    by_name: HashMap<String, Slot>,
}

#[derive(Clone, Copy)]
enum Slot {
    Ctr(usize),
    Gauge(usize),
    Hist(usize),
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry { enabled: true, ..Default::default() }
    }

    /// A disabled registry: registration still works (handles stay
    /// valid), but every observation is a no-op behind one branch.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether observations are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Registers (or finds) a counter, returning its handle.
    pub fn counter(&mut self, name: &str) -> CtrId {
        match self.by_name.get(name) {
            Some(Slot::Ctr(i)) => CtrId(*i),
            Some(_) => panic!("metric {name:?} already registered with a different type"),
            None => {
                let i = self.counters.len();
                self.counters.push((name.to_string(), 0));
                self.by_name.insert(name.to_string(), Slot::Ctr(i));
                CtrId(i)
            }
        }
    }

    /// Registers (or finds) a gauge, returning its handle.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.by_name.get(name) {
            Some(Slot::Gauge(i)) => GaugeId(*i),
            Some(_) => panic!("metric {name:?} already registered with a different type"),
            None => {
                let i = self.gauges.len();
                self.gauges.push((name.to_string(), 0));
                self.by_name.insert(name.to_string(), Slot::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Registers (or finds) a histogram, returning its handle.
    pub fn hist(&mut self, name: &str) -> HistId {
        match self.by_name.get(name) {
            Some(Slot::Hist(i)) => HistId(*i),
            Some(_) => panic!("metric {name:?} already registered with a different type"),
            None => {
                let i = self.hists.len();
                self.hists.push((name.to_string(), Histogram::new()));
                self.by_name.insert(name.to_string(), Slot::Hist(i));
                HistId(i)
            }
        }
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CtrId) {
        if self.enabled {
            self.counters[id.0].1 += 1;
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CtrId, n: u64) {
        if self.enabled {
            self.counters[id.0].1 += n;
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: i64) {
        if self.enabled {
            self.gauges[id.0].1 = v;
        }
    }

    /// Adjusts a gauge by `delta`.
    #[inline]
    pub fn gauge_add(&mut self, id: GaugeId, delta: i64) {
        if self.enabled {
            self.gauges[id.0].1 += delta;
        }
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        if self.enabled {
            self.hists[id.0].1.record(v);
        }
    }

    /// By-name counter add (lazy registration; rare paths only).
    pub fn add_name(&mut self, name: &str, n: u64) {
        if self.enabled {
            let id = self.counter(name);
            self.counters[id.0].1 += n;
        }
    }

    /// By-name counter set (folding external totals into a dump).
    pub fn set_counter_name(&mut self, name: &str, v: u64) {
        if self.enabled {
            let id = self.counter(name);
            self.counters[id.0].1 = v;
        }
    }

    /// By-name gauge set (lazy registration; rare paths only).
    pub fn set_gauge_name(&mut self, name: &str, v: i64) {
        if self.enabled {
            let id = self.gauge(name);
            self.gauges[id.0].1 = v;
        }
    }

    /// By-name histogram observation (lazy registration; rare paths
    /// only — per-request paths should pre-register).
    pub fn observe_name(&mut self, name: &str, v: u64) {
        if self.enabled {
            let id = self.hist(name);
            self.hists[id.0].1.record(v);
        }
    }

    /// Current value of a counter, by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.by_name.get(name)? {
            Slot::Ctr(i) => Some(self.counters[*i].1),
            _ => None,
        }
    }

    /// Current value of a gauge, by name.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.by_name.get(name)? {
            Slot::Gauge(i) => Some(self.gauges[*i].1),
            _ => None,
        }
    }

    /// A histogram, by name.
    pub fn hist_get(&self, name: &str) -> Option<&Histogram> {
        match self.by_name.get(name)? {
            Slot::Hist(i) => Some(&self.hists[*i].1),
            _ => None,
        }
    }

    /// Iterates counters as `(name, value)`.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates gauges as `(name, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates histograms as `(name, hist)`.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Merges `other` into `self` by metric name: counters add, gauges
    /// add (shard totals), histograms merge bucket-wise. Metrics only
    /// present in `other` are created here.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            let id = self.counter(name);
            self.counters[id.0].1 += v;
        }
        for (name, v) in &other.gauges {
            let id = self.gauge(name);
            self.gauges[id.0].1 += v;
        }
        for (name, h) in &other.hists {
            let id = self.hist(name);
            self.hists[id.0].1.merge(h);
        }
    }

    /// Full dump as a JSON object with `counters`, `gauges` and
    /// `hists` sections, all sorted by name (deterministic output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut ctrs: Vec<_> = self.counters.iter().collect();
        ctrs.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (name, v)) in ctrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        let mut gs: Vec<_> = self.gauges.iter().collect();
        gs.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (name, v)) in gs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"hists\":{");
        let mut hs: Vec<_> = self.hists.iter().collect();
        hs.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (name, h)) in hs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            out.push_str(&h.summary_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_and_names_agree() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("pkts");
        let g = r.gauge("queue_depth");
        let h = r.hist("latency");
        r.inc(c);
        r.add(c, 4);
        r.set_gauge(g, 7);
        r.gauge_add(g, -2);
        r.observe(h, 100);
        r.observe_name("latency", 200);
        assert_eq!(r.counter_value("pkts"), Some(5));
        assert_eq!(r.gauge_value("queue_depth"), Some(5));
        assert_eq!(r.hist_get("latency").unwrap().count(), 2);
        // Re-registration returns the same handle.
        assert_eq!(r.counter("pkts"), c);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::disabled();
        let c = r.counter("pkts");
        r.inc(c);
        r.add_name("other", 3);
        r.observe_name("lat", 5);
        assert_eq!(r.counter_value("pkts"), Some(0));
        assert_eq!(r.counter_value("other"), None);
        assert!(r.hist_get("lat").is_none());
    }

    #[test]
    fn merge_by_name() {
        let mut a = MetricsRegistry::new();
        a.add_name("x", 1);
        a.observe_name("h", 10);
        let mut b = MetricsRegistry::new();
        b.add_name("y", 2);
        b.add_name("x", 3);
        b.observe_name("h", 30);
        a.merge(&b);
        assert_eq!(a.counter_value("x"), Some(4));
        assert_eq!(a.counter_value("y"), Some(2));
        assert_eq!(a.hist_get("h").unwrap().count(), 2);
        assert_eq!(a.hist_get("h").unwrap().max(), 30);
    }

    #[test]
    fn json_dump_is_sorted_and_parseable_shape() {
        let mut r = MetricsRegistry::new();
        r.add_name("z.ctr", 1);
        r.add_name("a.ctr", 2);
        r.set_gauge_name("g", -3);
        r.observe_name("h", 42);
        let j = r.to_json();
        assert!(j.find("\"a.ctr\"").unwrap() < j.find("\"z.ctr\"").unwrap());
        assert!(j.contains("\"g\":-3"));
        assert!(j.contains("\"p50\":42"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.counter("m");
        r.hist("m");
    }
}
