//! Minimal hand-rolled JSON support (the build environment has no
//! serde): string escaping, an object writer, and a parser for *flat*
//! objects — one level deep, scalar values only — which is all the
//! JSONL trace format needs. Numbers are kept as raw text so `u64`
//! nanosecond timestamps round-trip without `f64` precision loss.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// A scalar value in a flat JSON object.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string (unescaped).
    Str(String),
    /// A number, bool, or null, kept as the raw source text.
    Raw(String),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Raw(_) => None,
        }
    }

    /// Parses the raw token as u64 (also accepts a numeric string).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Str(s) | Value::Raw(s) => s.parse().ok(),
        }
    }

    /// Parses the raw token as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Str(s) | Value::Raw(s) => s.parse().ok(),
        }
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Default)]
pub struct ObjWriter {
    buf: String,
    any: bool,
}

impl ObjWriter {
    /// Starts an object (`{`).
    pub fn new() -> Self {
        ObjWriter { buf: String::from("{"), any: false }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Adds a numeric (or other already-serialized) field.
    pub fn raw_field(&mut self, k: &str, v: impl std::fmt::Display) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Parses a flat JSON object (`{"k":v,...}`, scalar values only) into
/// key/value pairs in source order. Returns `None` on malformed input
/// or nested objects/arrays.
pub fn parse_flat(line: &str) -> Option<Vec<(String, Value)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut out = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => Value::Str(parse_string(&mut chars)?),
            '{' | '[' => return None, // flat objects only
            _ => {
                let mut tok = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' || c.is_whitespace() {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                if tok.is_empty() {
                    return None;
                }
                Value::Raw(tok)
            }
        };
        out.push((key, val));
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "with \"quotes\"", "tab\tnewline\n", "back\\slash", "ünïcode", "\u{1}"] {
            let q = quote(s);
            let parsed = parse_flat(&format!("{{\"k\":{q}}}")).unwrap();
            assert_eq!(parsed, vec![("k".to_string(), Value::Str(s.to_string()))]);
        }
    }

    #[test]
    fn writer_and_parser_agree() {
        let mut w = ObjWriter::new();
        w.str_field("name", "a,b\"c").raw_field("n", 18446744073709551615u64).raw_field("x", "1.5");
        let line = w.finish();
        let kv = parse_flat(&line).unwrap();
        assert_eq!(kv[0].1.as_str(), Some("a,b\"c"));
        // u64::MAX survives exactly — no f64 rounding.
        assert_eq!(kv[1].1.as_u64(), Some(u64::MAX));
        assert_eq!(kv[2].1.as_f64(), Some(1.5));
    }

    #[test]
    fn rejects_nested_and_malformed() {
        assert!(parse_flat("{\"a\":{}}").is_none());
        assert!(parse_flat("{\"a\":[1]}").is_none());
        assert!(parse_flat("not json").is_none());
        assert!(parse_flat("{\"a\":1} trailing").is_none());
        assert!(parse_flat("{}").map(|v| v.is_empty()).unwrap_or(false));
    }
}
