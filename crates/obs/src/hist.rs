//! A log-linear histogram over `u64` values (HdrHistogram style).
//!
//! Values below 2^SUB_BITS+1 are exact; above that, each power-of-two
//! range is split into 2^SUB_BITS linear sub-buckets, bounding relative
//! error at 1/2^SUB_BITS (~3% with SUB_BITS = 5). The bucket array is a
//! fixed ~1.9k slots (15 KiB), so recording is a shift, a subtract and
//! an increment — cheap enough to stay on in release sweeps — and two
//! histograms merge by element-wise addition, which is what
//! `par_sweep` shards need.

/// Linear sub-buckets per power-of-two range, as a bit count.
const SUB_BITS: u32 = 5;
/// Sub-buckets per range (32).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count for the full `u64` domain.
const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB_COUNT as usize;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT * 2 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((shift as usize + 1) << SUB_BITS) + ((v >> shift) as usize - SUB_COUNT as usize)
    }
}

/// Smallest value mapping to bucket `idx` (the bucket's representative).
#[inline]
fn bucket_low(idx: usize) -> u64 {
    if idx < (SUB_COUNT * 2) as usize {
        idx as u64
    } else {
        let range = idx >> SUB_BITS; // >= 2
        let sub = (idx & (SUB_COUNT as usize - 1)) as u64;
        (SUB_COUNT + sub) << (range - 1)
    }
}

/// A mergeable log-linear histogram with min/max/sum tracking.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `ceil(q * count)`-th observation, clamped to the
    /// tracked min/max so exact extremes are exact. 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Summary as a JSON object: count, sum, min, max, mean, p50/p90/p99.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={} min={} p50={} p99={} max={})",
            self.count,
            self.min(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_monotone_and_exact_below_64() {
        // Exact region: identity mapping.
        for v in 0..(SUB_COUNT * 2) {
            assert_eq!(bucket_index(v), v as usize, "v={v}");
            assert_eq!(bucket_low(v as usize), v);
        }
        // Every bucket's low bound maps back to that bucket, and indices
        // never decrease as values grow.
        let mut prev = 0usize;
        for exp in 0..64u32 {
            for probe in [1u64 << exp, (1u64 << exp) + 1, ((1u64 << exp) - 1).max(1)] {
                let idx = bucket_index(probe);
                assert!(idx < NUM_BUCKETS, "v={probe} idx={idx}");
                assert!(bucket_low(idx) <= probe, "low({idx}) > {probe}");
                if probe >= prev as u64 {
                    // monotone spot-check only where probe ordering holds
                }
                prev = prev.max(idx);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // low(idx(v)) <= v and the bucket width is <= v / 32 in the
        // log-linear region, i.e. ~3% relative error.
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x >> (x % 50); // spread across magnitudes
            let low = bucket_low(bucket_index(v));
            assert!(low <= v);
            if v >= SUB_COUNT * 2 {
                let err = (v - low) as f64 / v as f64;
                assert!(err <= 1.0 / SUB_COUNT as f64 + 1e-9, "v={v} low={low} err={err}");
            } else {
                assert_eq!(low, v);
            }
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        // 1..=100 exactly once each: p50 ~ 50, p90 ~ 90, p99 ~ 99.
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.sum(), 5050);
        // Values up to 63 are exact; above that, within one sub-bucket.
        assert_eq!(h.quantile(0.5), 50);
        let p90 = h.quantile(0.9);
        assert!((88..=90).contains(&p90), "p90={p90}");
        let p99 = h.quantile(0.99);
        assert!((96..=99).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantile_of_constant_distribution_is_exact() {
        let mut h = Histogram::new();
        h.record_n(1_000_000, 500); // 1 ms in ns, 500 times
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let got = h.quantile(q);
            // Clamped to [min, max] = exactly the recorded value.
            assert_eq!(got, 1_000_000, "q={q}");
        }
        assert_eq!(h.mean(), 1_000_000.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(x >> (x % 40));
            }
            h
        };
        let (a, b, c) = (mk(1, 100), mk(2, 200), mk(3, 50));

        // (a+b)+c
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a+(b+c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // (c+b)+a — commutativity
        let mut cb_a = c.clone();
        cb_a.merge(&b);
        cb_a.merge(&a);

        for h in [&a_bc, &cb_a] {
            assert_eq!(ab_c.count(), h.count());
            assert_eq!(ab_c.sum(), h.sum());
            assert_eq!(ab_c.min(), h.min());
            assert_eq!(ab_c.max(), h.max());
            for q in [0.1, 0.5, 0.9, 0.99] {
                assert_eq!(ab_c.quantile(q), h.quantile(q));
            }
            assert_eq!(ab_c.counts, h.counts);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(1 << 40);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h.counts, before.counts);
        assert_eq!(h.min(), before.min());
        assert_eq!(h.max(), before.max());
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e.quantile(0.5), before.quantile(0.5));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
