//! Observability primitives for the simulator.
//!
//! Everything here is dependency-free and deterministic: metrics
//! *observe* simulation state, they never draw randomness, allocate on
//! the dispatch fast path, or otherwise perturb the event schedule, so
//! a run produces bit-identical results whether metrics are on or off.
//!
//! - [`hist::Histogram`] — HdrHistogram-style log-linear buckets for
//!   latencies and sizes: ~3% relative error, mergeable across sweep
//!   shards, constant memory.
//! - [`registry::MetricsRegistry`] — named counters, gauges and
//!   histograms with pre-registered integer handles for hot paths and
//!   by-name lazy registration for rare events.
//! - [`json`] — minimal JSON escaping/writing plus a flat-object parser
//!   (numbers kept as raw text so `u64` nanosecond values round-trip
//!   without `f64` precision loss).
//! - [`manifest::RunManifest`] — the per-run record every bench binary
//!   writes under `results/`: seed, config, git rev, wall-clock, event
//!   count, full metric dump.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod manifest;
pub mod registry;

pub use hist::Histogram;
pub use manifest::RunManifest;
pub use registry::{CtrId, GaugeId, HistId, MetricsRegistry};
