//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.8 API the workspace's bench
//! targets use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BenchmarkId`], and [`BatchSize`].
//!
//! Measurement is deliberately simple: each benchmark is auto-calibrated
//! to roughly `measurement_ms` of wall-clock work, timed over a fixed
//! number of samples, and the median per-iteration time is printed. No
//! statistics beyond min/median/max, no plots, no saved baselines — the
//! goal is a runnable `cargo bench` in a network-less container, not
//! publication-grade numbers (the paper figures come from the dedicated
//! `bench` binaries, which do their own measurement).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark (reported alongside time).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup cost (sizing hint only here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations per setup run.
    SmallInput,
    /// Large per-iteration inputs: one setup per iteration.
    LargeInput,
    /// Each setup feeds exactly one iteration.
    PerIteration,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter, for use inside a named group.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `routine`, running it enough times for a stable median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.samples.push(dt / self.iters_per_sample.max(1) as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_count {
            let n = self.iters_per_sample.max(1);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = start.elapsed();
            self.samples.push(dt / n as u32);
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour `cargo bench -- <filter>` like the real crate does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            sample_count: 20,
            measurement: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let name = id.to_string();
        run_one(&name, self.sample_count, self.measurement, self.filter.as_deref(), None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_count: None,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    /// Overrides the per-benchmark measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measurement = d;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.sample_count.unwrap_or(self.parent.sample_count),
            self.parent.measurement,
            self.parent.filter.as_deref(),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_count: usize,
    measurement: Duration,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }

    // Calibration pass: find how many iterations fit one sample budget.
    let mut samples = Vec::new();
    let mut cal = Bencher { samples: &mut samples, iters_per_sample: 1, sample_count: 1 };
    f(&mut cal);
    let per_iter = samples.pop().unwrap_or(Duration::from_micros(1));
    let budget = measurement / sample_count.max(1) as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    samples.clear();
    let mut b = Bencher { samples: &mut samples, iters_per_sample: iters, sample_count };
    f(&mut b);
    samples.sort();

    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let tp = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let gib = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let meps = n as f64 / median.as_secs_f64() / 1e6;
            format!("  {meps:.3} Melem/s")
        }
        _ => String::new(),
    };
    println!("{name:<48} time: [{lo:>10.3?} {median:>10.3?} {hi:>10.3?}]{tp}");
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
