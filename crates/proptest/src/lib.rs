//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter` / `boxed`, range and tuple strategies, `any::<T>()`,
//! [`collection::vec`] / [`collection::hash_set`], `Just`,
//! [`prop_oneof!`], `prop_assert*!` and `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: each test runs `cases`
//! deterministic samples (seeded per test name and case index) and
//! reports the failing values via plain `assert!` panics. That keeps
//! failures reproducible — the trait the tests actually rely on —
//! without the full strategy/value-tree machinery.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// RNG for one (test, case) pair: seeded from the test name and index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e3779b97f4a7c15)))
    }
}

/// Signal that a sampled input should be skipped (from `prop_assume!`).
pub struct CaseRejected;

/// Result type the expanded test body returns; rejection skips the case.
pub type TestCaseResult = Result<(), CaseRejected>;

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retries until `f` accepts a value (bounded; panics if the filter
    /// rejects everything).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.0.random_range(0..self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

impl<const N: usize> Strategy for AnyStrategy<[u8; N]> {
    type Value = [u8; N];
    fn sample(&self, rng: &mut TestRng) -> [u8; N] {
        rng.0.random()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = AnyStrategy<[u8; N]>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes accepted by [`vec`] / [`hash_set`]: a fixed count or range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            rng.0.random_range(self.clone())
        }
    }

    /// A strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `Vec` of values from `elem`, length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    /// A strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for HashSetStrategy<S, L>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.len.sample_len(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded retries so low-entropy element strategies terminate.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.elem.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` of values from `elem`, target size drawn from `len`.
    pub fn hash_set<S: Strategy, L: SizeRange>(elem: S, len: L) -> HashSetStrategy<S, L>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, len }
    }
}

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    /// The `prop` module alias proptest's prelude provides.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Shorthand module (`proptest::strategy::Strategy` path compatibility).
pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

/// Runs the cases of one property (called by the [`proptest!`] expansion).
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let mut ran = 0u32;
    let mut attempts = 0u32;
    while ran < cases {
        attempts += 1;
        assert!(
            attempts < cases * 20 + 1000,
            "{test_name}: too many rejected cases (prop_assume! filters nearly everything)"
        );
        let mut rng = TestRng::for_case(test_name, u64::from(attempts));
        if let Ok(()) = body(&mut rng) {
            ran += 1;
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: expand each property fn. The `#[test]` attribute comes
    // from the call site (every property here writes it explicitly, as
    // upstream proptest's docs show). Arguments are parsed by the
    // `@bind` muncher so `pat in strategy` and `name: Type` forms mix.
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cases, |__rng| {
                $crate::proptest!(@bind __rng; $($args)*);
                $body
                Ok(())
            });
        }
    )*};
    // Argument binder: `pat in strategy` draws from the strategy,
    // `name: Type` draws from `any::<Type>()`.
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $arg:pat in $strat:expr) => {
        let $arg = $crate::Strategy::sample(&($strat), $rng);
    };
    (@bind $rng:ident; $arg:pat in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::sample(&($strat), $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), $rng);
    };
    (@bind $rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    // With a leading #![proptest_config(...)].
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    // Without a config: default case count.
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::ProptestConfig::default().cases; $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseRejected);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|$weight:expr =>|)? $strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_length_respected(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn assume_rejects(v in any::<u8>(), flag: bool) {
            let _ = flag;
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn tuples_and_arrays((a, b) in (any::<[u8; 16]>(), any::<u32>())) {
            prop_assert_eq!(a.len(), 16);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_sampling() {
        use super::{Strategy, TestRng};
        let s = super::collection::vec(super::any::<u64>(), 0..10);
        let a = s.sample(&mut TestRng::for_case("t", 1));
        let b = s.sample(&mut TestRng::for_case("t", 1));
        assert_eq!(a, b);
    }
}
