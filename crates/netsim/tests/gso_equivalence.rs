//! Batched-vs-unbatched datapath equivalence.
//!
//! `GsoMode::Exact` (the default) must be *bit-identical* to
//! `GsoMode::Off`: the super-segment is split back into per-MTU frames
//! at the NIC, drawing loss/jitter in the same order, so every event,
//! every RNG draw, every counter and every delivered byte matches the
//! per-segment datapath — under clean links, random loss, jitter, and
//! scripted loss bursts alike.
//!
//! `GsoMode::Merged` trades per-frame delivery timing for fewer events:
//! the byte stream must still be exact, and on a clean link the wire
//! accounting (frame count, wire bytes, drops) must match, with
//! strictly fewer dispatched events on bulk transfers.

use netsim::fault::{FaultEpisode, FaultPlan};
use netsim::host::{App, AppEvent, Host, HostApi};
use netsim::link::{Endpoint, LinkParams};
use netsim::packet::v4;
use netsim::tcp::{GsoMode, TcpEvent};
use netsim::{Sim, SimDuration, SimStats, SimTime};
use proptest::prelude::*;
use std::any::Any;
use std::net::IpAddr;

struct Sender {
    target: IpAddr,
    data: Vec<u8>,
}
impl App for Sender {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_connect(self.target, 7).expect("source address exists");
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Connected(s)) = ev {
            let d = self.data.clone();
            api.tcp_send(s, &d);
            api.tcp_close(s);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Receiver {
    got: Vec<u8>,
    eof: bool,
}
impl App for Receiver {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Data(s)) => self.got.extend(api.tcp_recv(s)),
            AppEvent::Tcp(TcpEvent::PeerClosed(s)) => {
                self.got.extend(api.tcp_recv(s));
                self.eof = true;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Everything observable about a run that batching must (or must not)
/// preserve.
#[derive(Debug, PartialEq)]
struct Outcome {
    got: Vec<u8>,
    eof: bool,
    stats: SimStats,
    /// `engine.ev.packet` — arrivals dispatched.
    ev_packets: u64,
    /// Sum over `engine.pkt.bytes` — total wire bytes that arrived.
    wire_bytes: u64,
    /// `link.drops` — frames lost on the link.
    link_drops: u64,
    end: SimTime,
}

/// A scripted mid-transfer loss burst, exercising the FaultPlan path.
#[derive(Clone, Copy, Debug)]
struct Burst {
    offset_ms: u64,
    prob: f64,
    dur_ms: u64,
}

fn transfer(
    gso: GsoMode,
    data: &[u8],
    loss: f64,
    latency_us: u64,
    jitter_us: u64,
    seed: u64,
    burst: Option<Burst>,
) -> Outcome {
    let mut sim = Sim::new(seed);
    let mut ha = Host::new("a");
    ha.add_app(Box::new(Sender { target: v4(10, 0, 0, 2), data: data.to_vec() }));
    let mut hb = Host::new("b");
    let recv = hb.add_app(Box::new(Receiver { got: vec![], eof: false }));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let params = LinkParams::datacenter()
        .with_loss(loss)
        .with_latency(SimDuration::from_micros(latency_us))
        .with_jitter(SimDuration::from_micros(jitter_us));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        params,
    );
    for (node, ip) in [(a, v4(10, 0, 0, 1)), (b, v4(10, 0, 0, 2))] {
        let h = sim.world.node_mut::<Host>(node).expect("host");
        h.core.add_iface(link, vec![ip]);
        h.core.tcp.config.gso = gso;
    }
    if let Some(bu) = burst {
        FaultPlan::new()
            .at(
                SimDuration::from_millis(bu.offset_ms),
                FaultEpisode::LossBurst {
                    link,
                    prob: bu.prob,
                    duration: SimDuration::from_millis(bu.dur_ms),
                },
            )
            .schedule(&mut sim);
    }
    sim.run_until(SimTime(400_000_000_000));
    let ev_packets = sim.metrics.counter_value("engine.ev.packet").unwrap_or(0);
    let wire_bytes = sim.metrics.hist_get("engine.pkt.bytes").map(|h| h.sum()).unwrap_or(0);
    let link_drops = sim.metrics.counter_value("link.drops").unwrap_or(0);
    let stats = sim.stats();
    let end = sim.now();
    let r = sim.world.node::<Host>(b).expect("b").app::<Receiver>(recv).expect("receiver");
    Outcome { got: r.got.clone(), eof: r.eof, stats, ev_packets, wire_bytes, link_drops, end }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: Exact batching is bit-identical to the
    /// unbatched datapath — same delivered bytes, same event counts,
    /// same wire bytes, same drops, same timers, same end time — under
    /// random loss, jitter, and a scripted loss burst.
    #[test]
    fn exact_is_bit_identical_to_off(
        data in proptest::collection::vec(any::<u8>(), 1..40_000),
        loss in 0.0f64..0.12,
        latency_us in 50u64..3_000,
        jitter_us in 0u64..400,
        seed in any::<u64>(),
        burst_prob in 0.0f64..0.8,
        burst_offset_ms in 0u64..50,
    ) {
        let burst = Some(Burst { offset_ms: burst_offset_ms, prob: burst_prob, dur_ms: 20 });
        let off = transfer(GsoMode::Off, &data, loss, latency_us, jitter_us, seed, burst);
        let exact = transfer(GsoMode::Exact, &data, loss, latency_us, jitter_us, seed, burst);
        prop_assert_eq!(&off.got, &data, "unbatched must deliver the stream");
        prop_assert_eq!(off, exact);
    }

    /// Merged-mode GRO keeps the byte stream exact under loss and
    /// reordering-inducing jitter, even though delivery granularity
    /// changes.
    #[test]
    fn merged_delivers_exact_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..40_000),
        loss in 0.0f64..0.12,
        jitter_us in 0u64..400,
        seed in any::<u64>(),
    ) {
        let m = transfer(GsoMode::Merged, &data, loss, 300, jitter_us, seed, None);
        prop_assert!(m.eof, "FIN must arrive");
        prop_assert_eq!(m.got, data);
    }

    /// On a clean link, Merged mode must charge the wire identically
    /// (same frames, same bytes, zero drops) while dispatching fewer
    /// packet events for bulk transfers.
    #[test]
    fn merged_matches_wire_accounting_on_clean_link(
        data in proptest::collection::vec(any::<u8>(), 20_000..60_000),
        latency_us in 50u64..3_000,
        seed in any::<u64>(),
    ) {
        let off = transfer(GsoMode::Off, &data, 0.0, latency_us, 0, seed, None);
        let m = transfer(GsoMode::Merged, &data, 0.0, latency_us, 0, seed, None);
        prop_assert_eq!(&m.got, &data);
        prop_assert_eq!(m.link_drops, 0);
        prop_assert_eq!(off.link_drops, 0);
        prop_assert!(
            m.ev_packets < off.ev_packets,
            "merged delivery must dispatch fewer arrivals ({} vs {})",
            m.ev_packets,
            off.ev_packets,
        );
    }
}
