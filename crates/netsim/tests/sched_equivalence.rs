//! The calendar queue must be *observationally identical* to the global
//! `BinaryHeap` it replaced: for any schedule, the sequence of popped
//! `(time, seq)` keys is the same, so simulation traces are unchanged.
//!
//! The property tests drive both structures with the same random
//! interleaving of pushes and pops (deltas spanning all three tiers:
//! current bucket, wheel, overflow) and with tombstone-style
//! cancellations mirroring the engine's lazy timer discard.

use netsim::sched::CalendarQueue;
use netsim::SimTime;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Reference model: the old scheduler, a min-heap on `(time, seq)`.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl RefHeap {
    fn push(&mut self, at: u64, seq: u64) {
        self.heap.push(Reverse((at, seq)));
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

/// Spread a raw delta over the tiers the engine actually exercises:
/// sub-bucket, wheel-scale, and beyond-horizon delays.
fn scale_delta(class: u8, delta: u64) -> u64 {
    match class % 3 {
        0 => delta % 4_000,                  // within one 4.1 µs bucket
        1 => delta % 50_000_000,             // wheel scale (≤ 50 ms)
        _ => 100_000_000 + delta % 2_000_000_000, // overflow (0.1 s – 2.1 s)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleaved push/pop: identical pop sequences.
    #[test]
    fn pops_match_reference_heap(
        ops in prop::collection::vec((0u8..4u8, 0u8..3u8, 0u64..u64::MAX), 1..400)
    ) {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut reference = RefHeap::default();
        let mut now = 0u64;
        let mut seq = 0u64;
        for &(op, class, raw) in &ops {
            if op < 3 {
                // Push (3:1 push/pop mix keeps the queues populated).
                let at = now + scale_delta(class, raw);
                cal.push(SimTime(at), seq, seq);
                reference.push(at, seq);
                seq += 1;
            } else {
                let got = cal.pop().map(|(t, s, _)| (t.as_nanos(), s));
                let want = reference.pop();
                prop_assert_eq!(got, want);
                if let Some((t, _)) = got {
                    now = t; // like the engine: time only moves at pops
                }
            }
        }
        // Drain what's left; every key must still agree.
        loop {
            let got = cal.pop().map(|(t, s, _)| (t.as_nanos(), s));
            let want = reference.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty());
    }

    /// Equal timestamps pop in schedule (seq) order — the FIFO tie-break
    /// that keeps same-seed traces bit-identical.
    #[test]
    fn fifo_tie_break_preserved(
        times in prop::collection::vec(0u64..200_000_000u64, 1..200)
    ) {
        let mut cal: CalendarQueue<usize> = CalendarQueue::new();
        let mut reference = RefHeap::default();
        for (seq, &t) in times.iter().enumerate() {
            cal.push(SimTime(t), seq as u64, seq);
            reference.push(t, seq as u64);
        }
        while let Some(want) = reference.pop() {
            let got = cal.pop().map(|(t, s, _)| (t.as_nanos(), s)).expect("same length");
            prop_assert_eq!(got, want);
        }
        prop_assert!(cal.is_empty());
    }

    /// Lazy cancellation (the engine's generation-stamped timers) is a
    /// pop-time filter: with the same tombstone set applied to both
    /// queues, the surviving (dispatched) sequences are identical.
    #[test]
    fn cancellation_filter_is_order_independent(
        ops in prop::collection::vec((0u8..5u8, 0u8..3u8, 0u64..u64::MAX), 1..400)
    ) {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut reference = RefHeap::default();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut live: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut cal_dispatched = Vec::new();
        let mut ref_dispatched = Vec::new();
        for &(op, class, raw) in &ops {
            match op {
                0..=2 => {
                    let at = now + scale_delta(class, raw);
                    cal.push(SimTime(at), seq, seq);
                    reference.push(at, seq);
                    live.push(seq);
                    seq += 1;
                }
                3 => {
                    // Cancel a pseudo-random still-scheduled event.
                    if !live.is_empty() {
                        let victim = live.swap_remove((raw % live.len() as u64) as usize);
                        cancelled.insert(victim);
                    }
                }
                _ => {
                    // Pop once from each; discard tombstones like
                    // `Sim::run_until` does.
                    if let Some((t, s, _)) = cal.pop() {
                        now = t.as_nanos();
                        if !cancelled.contains(&s) {
                            cal_dispatched.push((t.as_nanos(), s));
                        }
                    }
                    if let Some((t, s)) = reference.pop() {
                        if !cancelled.contains(&s) {
                            ref_dispatched.push((t, s));
                        }
                    }
                }
            }
        }
        while let Some((t, s, _)) = cal.pop() {
            if !cancelled.contains(&s) {
                cal_dispatched.push((t.as_nanos(), s));
            }
        }
        while let Some((t, s)) = reference.pop() {
            if !cancelled.contains(&s) {
                ref_dispatched.push((t, s));
            }
        }
        prop_assert_eq!(cal_dispatched, ref_dispatched);
    }
}

/// Deliberately tiny geometry (1 µs × 64 buckets = 64 µs horizon) so
/// constant window advances and overflow migrations are exercised far
/// more often than the default geometry would allow.
#[test]
fn tiny_geometry_stress_matches_reference() {
    let mut cal: CalendarQueue<u64> = CalendarQueue::with_geometry(10, 6);
    let mut reference = RefHeap::default();
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let mut xorshift = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut now = 0u64;
    let mut seq = 0u64;
    for _ in 0..20_000 {
        let r = xorshift();
        if r % 3 != 0 {
            let at = now + scale_delta((r >> 8) as u8, r >> 16);
            cal.push(SimTime(at), seq, seq);
            reference.push(at, seq);
            seq += 1;
        } else {
            let got = cal.pop().map(|(t, s, _)| (t.as_nanos(), s));
            let want = reference.pop();
            assert_eq!(got, want);
            if let Some((t, _)) = got {
                now = t;
            }
        }
    }
    loop {
        let got = cal.pop().map(|(t, s, _)| (t.as_nanos(), s));
        let want = reference.pop();
        assert_eq!(got, want);
        if got.is_none() {
            break;
        }
    }
    let stats = cal.stats();
    assert!(stats.pushed_overflow > 0, "stress must hit the overflow tier");
    assert!(stats.migrated > 0, "stress must migrate overflow events");
}
