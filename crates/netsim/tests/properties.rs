//! Property-based tests for the network simulator: TCP's end-to-end
//! contract under randomized conditions, address-classification laws,
//! Teredo encoding, and engine determinism.

use netsim::host::{App, AppEvent, Host, HostApi};
use netsim::link::{Endpoint, LinkParams};
use netsim::packet::v4;
use netsim::tcp::TcpEvent;
use netsim::{Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::any::Any;
use std::net::IpAddr;

struct Sender {
    target: IpAddr,
    data: Vec<u8>,
    done: bool,
}
impl App for Sender {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_connect(self.target, 7).expect("source address exists");
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(s)) => {
                let d = self.data.clone();
                api.tcp_send(s, &d);
                api.tcp_close(s);
            }
            AppEvent::Tcp(TcpEvent::Closed(_)) => self.done = true,
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Receiver {
    got: Vec<u8>,
    eof: bool,
}
impl App for Receiver {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Data(s)) => self.got.extend(api.tcp_recv(s)),
            AppEvent::Tcp(TcpEvent::PeerClosed(s)) => {
                self.got.extend(api.tcp_recv(s));
                self.eof = true;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds a two-host world with the given link characteristics, sends
/// `data` over TCP, and returns what arrived.
fn transfer(data: Vec<u8>, loss: f64, latency_us: u64, jitter_us: u64, seed: u64) -> (Vec<u8>, bool) {
    let mut sim = Sim::new(seed);
    let mut ha = Host::new("a");
    ha.add_app(Box::new(Sender { target: v4(10, 0, 0, 2), data, done: false }));
    let mut hb = Host::new("b");
    let recv = hb.add_app(Box::new(Receiver { got: vec![], eof: false }));
    let a = sim.world.add_node(Box::new(ha));
    let b = sim.world.add_node(Box::new(hb));
    let params = LinkParams::datacenter()
        .with_loss(loss)
        .with_latency(SimDuration::from_micros(latency_us))
        .with_jitter(SimDuration::from_micros(jitter_us));
    let link = sim.world.connect(
        Endpoint { node: a, iface: 0 },
        Endpoint { node: b, iface: 0 },
        params,
    );
    sim.world.node_mut::<Host>(a).expect("a").core.add_iface(link, vec![v4(10, 0, 0, 1)]);
    sim.world.node_mut::<Host>(b).expect("b").core.add_iface(link, vec![v4(10, 0, 0, 2)]);
    sim.run_until(SimTime(400_000_000_000));
    let r = sim.world.node::<Host>(b).expect("b").app::<Receiver>(recv).expect("receiver");
    (r.got.clone(), r.eof)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TCP delivers exactly the bytes sent, in order, over a clean link.
    #[test]
    fn tcp_delivers_exact_bytes_clean_link(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        latency_us in 50u64..5000,
        seed in any::<u64>(),
    ) {
        let (got, eof) = transfer(data.clone(), 0.0, latency_us, 0, seed);
        prop_assert!(eof, "FIN must arrive");
        prop_assert_eq!(got, data);
    }

    /// ... and under loss + jitter, retransmission restores the exact
    /// byte stream (the fundamental TCP property).
    #[test]
    fn tcp_delivers_exact_bytes_lossy_link(
        data in proptest::collection::vec(any::<u8>(), 1..8_000),
        loss in 0.0f64..0.15,
        jitter_us in 0u64..500,
        seed in any::<u64>(),
    ) {
        let (got, _eof) = transfer(data.clone(), loss, 300, jitter_us, seed);
        prop_assert_eq!(got, data);
    }
}

proptest! {
    #[test]
    fn teredo_address_round_trips(server in any::<[u8; 4]>(), client in any::<[u8; 4]>(), port in any::<u16>()) {
        use netsim::addr::{teredo_address, teredo_decode};
        let s = std::net::Ipv4Addr::from(server);
        let c = std::net::Ipv4Addr::from(client);
        let addr = teredo_address(s, c, port);
        prop_assert_eq!(teredo_decode(&addr), Some((s, c, port)));
    }

    #[test]
    fn address_classes_are_disjoint(bytes in any::<[u8; 16]>()) {
        use netsim::addr::{is_hit, is_lsi, is_teredo};
        let addr = IpAddr::V6(std::net::Ipv6Addr::from(bytes));
        // A v6 address is never an LSI; HIT and Teredo ranges are disjoint.
        prop_assert!(!is_lsi(&addr));
        prop_assert!(!(is_hit(&addr) && is_teredo(&addr)));
    }

    #[test]
    fn source_selection_respects_family(
        candidates in proptest::collection::vec(any::<[u8; 4]>(), 1..5),
        dst in any::<[u8; 4]>(),
    ) {
        use netsim::addr::select_source;
        let cands: Vec<IpAddr> =
            candidates.iter().map(|b| IpAddr::V4(std::net::Ipv4Addr::from(*b))).collect();
        let dst = IpAddr::V4(std::net::Ipv4Addr::from(dst));
        if let Some(src) = select_source(&cands, &dst) {
            prop_assert!(src.is_ipv4());
            prop_assert!(cands.contains(&src));
        } else {
            prop_assert!(false, "v4 candidates must yield a v4 source");
        }
    }

    /// The CPU model never goes backwards: service completion delays are
    /// monotone under queueing.
    #[test]
    fn cpu_charge_is_monotone(
        works in proptest::collection::vec(1u64..50_000, 1..30),
        cores in 1usize..4,
        speed in 0.1f64..4.0,
    ) {
        let mut cpu = netsim::CpuModel::new(cores, speed);
        let now = SimTime::ZERO;
        let mut completions: Vec<u64> = Vec::new();
        for w in &works {
            let d = cpu.charge(now, SimDuration::from_micros(*w));
            completions.push(d.as_nanos());
        }
        // With a single core, completions must be strictly increasing.
        if cores == 1 {
            for pair in completions.windows(2) {
                prop_assert!(pair[1] > pair[0]);
            }
        }
        // Total busy time equals the sum of service times.
        let total: u64 = works.iter().map(|w| {
            let service = (*w as f64 * 1000.0 / speed).round() as u64;
            service.max(1)
        }).sum();
        let diff = cpu.busy_time().as_nanos().abs_diff(total);
        prop_assert!(diff <= works.len() as u64, "rounding tolerance");
    }
}
