//! Network Address (and Port) Translation.
//!
//! Models the consumer/enterprise NAT between the paper's "power users"
//! (developers/administrators) and the cloud. The NAT rewrites outbound
//! UDP/TCP/ICMP and drops unsolicited inbound traffic. Crucially for the
//! paper's Teredo experiments, raw HIP control packets (IP protocol 139)
//! and ESP (protocol 50) have no port fields to translate, so a NAT
//! without protocol helpers *drops* them — which is exactly why the
//! paper tunnels HIP over Teredo for NATted users.
//!
//! Two behaviours are supported:
//! - **Cone**: one external port per internal (addr, port), any remote
//!   may reply to it (Teredo-compatible).
//! - **Symmetric**: one external port per (internal, remote) pair, and
//!   only that remote may reply (breaks Teredo's relay hairpin).

use crate::engine::{Ctx, Node, TimerHandle, TimerOwner};
use crate::link::LinkId;
use crate::packet::{Packet, Payload};
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

/// NAT mapping behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NatKind {
    /// Full-cone: endpoint-independent mapping and filtering.
    Cone,
    /// Symmetric: endpoint-dependent mapping and filtering.
    Symmetric,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct FlowKey {
    proto: u8,
    internal: (IpAddr, u16),
    /// Remote endpoint; `None` under cone behaviour.
    remote: Option<(IpAddr, u16)>,
}

#[derive(Clone, Copy, Debug)]
struct Mapping {
    external_port: u16,
    internal: (IpAddr, u16),
    last_used: SimTime,
}

/// A NAT box with an inside interface (0) and an outside interface (1).
pub struct Nat {
    /// Diagnostics name.
    pub name: String,
    /// The NAT's public address.
    pub public_addr: Ipv4Addr,
    kind: NatKind,
    inside: LinkId,
    outside: LinkId,
    /// Outbound flow → external port.
    mappings: HashMap<FlowKey, u16>,
    /// External port → mapping state.
    by_port: HashMap<(u8, u16), Mapping>,
    next_port: u16,
    /// Idle timeout after which mappings are garbage collected.
    pub mapping_timeout: SimDuration,
    /// Unsolicited or untranslatable packets dropped (diagnostics).
    pub dropped: u64,
}

impl Nat {
    /// Creates a NAT. Links must be set with [`Nat::set_links`] once the
    /// topology is wired.
    pub fn new(name: &str, public_addr: Ipv4Addr, kind: NatKind) -> Self {
        Nat {
            name: name.to_owned(),
            public_addr,
            kind,
            inside: LinkId(usize::MAX),
            outside: LinkId(usize::MAX),
            mappings: HashMap::new(),
            by_port: HashMap::new(),
            next_port: 40000,
            mapping_timeout: SimDuration::from_secs(120),
            dropped: 0,
        }
    }

    /// Wires the inside (iface 0) and outside (iface 1) links.
    pub fn set_links(&mut self, inside: LinkId, outside: LinkId) {
        self.inside = inside;
        self.outside = outside;
    }

    /// Number of live mappings (diagnostics).
    pub fn mapping_count(&self) -> usize {
        self.by_port.len()
    }

    /// Source port/ident of a packet, if the protocol is translatable.
    fn flow_ports(payload: &Payload) -> Option<(u16, u16)> {
        match payload {
            Payload::Udp(u) => Some((u.src_port, u.dst_port)),
            Payload::Tcp(t) => Some((t.src_port, t.dst_port)),
            Payload::Icmp(i) => Some((i.ident, i.ident)),
            // No ports: raw HIP and ESP cannot be translated.
            Payload::Esp(_) | Payload::HipControl(_) => None,
        }
    }

    fn rewrite_src(pkt: &mut Packet, new_addr: IpAddr, new_port: u16) {
        pkt.src = new_addr;
        match &mut pkt.payload {
            Payload::Udp(u) => u.src_port = new_port,
            Payload::Tcp(t) => t.src_port = new_port,
            Payload::Icmp(i) => i.ident = new_port,
            _ => {}
        }
    }

    fn rewrite_dst(pkt: &mut Packet, new_addr: IpAddr, new_port: u16) {
        pkt.dst = new_addr;
        match &mut pkt.payload {
            Payload::Udp(u) => u.dst_port = new_port,
            Payload::Tcp(t) => t.dst_port = new_port,
            Payload::Icmp(i) => i.ident = new_port,
            _ => {}
        }
    }

    fn alloc_port(&mut self, proto: u8) -> u16 {
        loop {
            let p = self.next_port;
            self.next_port = if self.next_port == u16::MAX { 40000 } else { self.next_port + 1 };
            if !self.by_port.contains_key(&(proto, p)) {
                return p;
            }
        }
    }

    fn outbound(&mut self, mut pkt: Packet, ctx: &mut Ctx) {
        let Some((src_port, dst_port)) = Self::flow_ports(&pkt.payload) else {
            self.dropped += 1;
            ctx.metrics().add_name("nat.drop.no_ports", 1);
            ctx.trace_drop_pkt(&pkt, || format!("{}: protocol has no ports, dropped", self.name));
            return;
        };
        let protocol = pkt.protocol();
        let key = FlowKey {
            proto: protocol,
            internal: (pkt.src, src_port),
            remote: match self.kind {
                NatKind::Cone => None,
                NatKind::Symmetric => Some((pkt.dst, dst_port)),
            },
        };
        let external_port = match self.mappings.get(&key) {
            Some(&p) => p,
            None => {
                let p = self.alloc_port(protocol);
                self.mappings.insert(key, p);
                self.by_port.insert(
                    (protocol, p),
                    Mapping { external_port: p, internal: (pkt.src, src_port), last_used: ctx.now },
                );
                p
            }
        };
        if let Some(m) = self.by_port.get_mut(&(protocol, external_port)) {
            m.last_used = ctx.now;
        }
        Self::rewrite_src(&mut pkt, IpAddr::V4(self.public_addr), external_port);
        ctx.transmit(self.outside, pkt);
    }

    fn inbound(&mut self, mut pkt: Packet, ctx: &mut Ctx) {
        let Some((src_port, dst_port)) = Self::flow_ports(&pkt.payload) else {
            self.dropped += 1;
            ctx.metrics().add_name("nat.drop.no_ports", 1);
            ctx.trace_drop_pkt(&pkt, || format!("{}: inbound protocol dropped", self.name));
            return;
        };
        let protocol = pkt.protocol();
        let Some(m) = self.by_port.get_mut(&(protocol, dst_port)) else {
            self.dropped += 1;
            ctx.metrics().add_name("nat.drop.unsolicited", 1);
            ctx.trace_drop_pkt(&pkt, || format!("{}: unsolicited inbound to port {dst_port}", self.name));
            return;
        };
        // Symmetric filtering: only the mapped remote may use the port.
        if self.kind == NatKind::Symmetric {
            let allowed = self.mappings.iter().any(|(k, &p)| {
                p == dst_port && k.proto == protocol && k.remote == Some((pkt.src, src_port))
            });
            if !allowed {
                self.dropped += 1;
                ctx.metrics().add_name("nat.drop.symmetric_filter", 1);
                ctx.trace_drop_pkt(&pkt, || format!("{}: symmetric filter rejected {}", self.name, pkt.src));
                return;
            }
        }
        m.last_used = ctx.now;
        let internal = m.internal;
        Self::rewrite_dst(&mut pkt, internal.0, internal.1);
        ctx.transmit(self.inside, pkt);
    }

    fn gc(&mut self, now: SimTime) {
        let timeout = self.mapping_timeout;
        let expired: Vec<(u8, u16)> = self
            .by_port
            .iter()
            .filter(|(_, m)| now.since(m.last_used) > timeout)
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            if let Some(m) = self.by_port.remove(&key) {
                self.mappings.retain(|_, &mut p| p != m.external_port);
            }
        }
    }
}

impl Node for Nat {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(
            SimDuration::from_secs(30),
            TimerHandle { owner: TimerOwner::Node, token: 1 },
        );
    }

    fn handle_packet(&mut self, iface: usize, pkt: Packet, ctx: &mut Ctx) {
        match iface {
            0 => self.outbound(pkt, ctx),
            1 => self.inbound(pkt, ctx),
            _ => {}
        }
    }

    fn handle_timer(&mut self, _timer: TimerHandle, ctx: &mut Ctx) {
        self.gc(ctx.now);
        ctx.set_timer(
            SimDuration::from_secs(30),
            TimerHandle { owner: TimerOwner::Node, token: 1 },
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{proto, v4, IcmpKind, IcmpMessage, UdpData, UdpDatagram};
    use bytes::Bytes;

    fn udp_packet(src: IpAddr, sport: u16, dst: IpAddr, dport: u16) -> Packet {
        Packet::new(
            src,
            dst,
            Payload::Udp(UdpDatagram {
                src_port: sport,
                dst_port: dport,
                data: UdpData::Raw(Bytes::from_static(b"x")),
            }),
        )
    }

    /// Runs a closure with a Ctx wired to a throwaway world; returns the
    /// packets the NAT transmitted (captured via a sink node on each side).
    fn harness(kind: NatKind) -> (crate::engine::Sim, crate::link::NodeId, crate::link::NodeId, crate::link::NodeId) {
        use crate::engine::Sim;
        use crate::link::{Endpoint, LinkParams};

        struct Sink {
            got: Vec<Packet>,
        }
        impl Node for Sink {
            fn handle_packet(&mut self, _: usize, pkt: Packet, _: &mut Ctx) {
                self.got.push(pkt);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Sim::new(3);
        let inside = sim.world.add_node(Box::new(Sink { got: vec![] }));
        let nat_node = sim.world.add_node(Box::new(Nat::new("nat", Ipv4Addr::new(203, 0, 113, 1), kind)));
        let outside = sim.world.add_node(Box::new(Sink { got: vec![] }));
        let l_in = sim.world.connect(
            Endpoint { node: inside, iface: 0 },
            Endpoint { node: nat_node, iface: 0 },
            LinkParams::access(),
        );
        let l_out = sim.world.connect(
            Endpoint { node: nat_node, iface: 1 },
            Endpoint { node: outside, iface: 0 },
            LinkParams::access(),
        );
        sim.world.node_mut::<Nat>(nat_node).unwrap().set_links(l_in, l_out);
        (sim, inside, nat_node, outside)
    }

    #[test]
    fn outbound_udp_rewritten_and_reply_translated_back() {
        use crate::engine::Event;
        use crate::time::SimTime;
        let (mut sim, _inside, nat_node, _outside) = harness(NatKind::Cone);
        let internal = v4(192, 168, 1, 10);
        let remote = v4(8, 8, 8, 8);
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 0, pkt: udp_packet(internal, 5000, remote, 53) },
        );
        sim.run_until(SimTime(1_000_000_000));
        // The mapping table records the translation.
        let (ext_src, ext_port) = {
            let nat = sim.world.node::<Nat>(nat_node).unwrap();
            assert_eq!(nat.mapping_count(), 1);
            let ((_, port), m) = nat.by_port.iter().next().unwrap();
            assert_eq!(m.internal, (internal, 5000));
            (IpAddr::V4(nat.public_addr), *port)
        };
        // Reply comes back to the external port and is accepted.
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 1, pkt: udp_packet(remote, 53, ext_src, ext_port) },
        );
        sim.run_until(SimTime(2_000_000_000));
        let nat = sim.world.node::<Nat>(nat_node).unwrap();
        assert_eq!(nat.dropped, 0);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        use crate::engine::Event;
        use crate::time::SimTime;
        let (mut sim, _inside, nat_node, _outside) = harness(NatKind::Cone);
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive {
                node: nat_node,
                iface: 1,
                pkt: udp_packet(v4(8, 8, 8, 8), 53, v4(203, 0, 113, 1), 40000),
            },
        );
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(sim.world.node::<Nat>(nat_node).unwrap().dropped, 1);
    }

    #[test]
    fn raw_hip_and_esp_dropped() {
        use crate::engine::Event;
        use crate::packet::EspPacket;
        use crate::time::SimTime;
        let (mut sim, _inside, nat_node, _outside) = harness(NatKind::Cone);
        let hip = Packet::new(v4(192, 168, 1, 10), v4(8, 8, 8, 8), Payload::HipControl(Bytes::from_static(b"I1")));
        let esp = Packet::new(
            v4(192, 168, 1, 10),
            v4(8, 8, 8, 8),
            Payload::Esp(EspPacket { spi: 1, seq: 1, ciphertext: Bytes::new(), icv: Bytes::new(), gso: None }),
        );
        sim.schedule(SimDuration::ZERO, Event::PacketArrive { node: nat_node, iface: 0, pkt: hip });
        sim.schedule(SimDuration::ZERO, Event::PacketArrive { node: nat_node, iface: 0, pkt: esp });
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(
            sim.world.node::<Nat>(nat_node).unwrap().dropped,
            2,
            "NAT without HIP/ESP helpers drops protocol 139 and 50 — the paper's motivation for Teredo"
        );
    }

    #[test]
    fn cone_reuses_mapping_across_remotes() {
        use crate::engine::Event;
        use crate::time::SimTime;
        let (mut sim, _i, nat_node, _o) = harness(NatKind::Cone);
        let internal = v4(192, 168, 1, 10);
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 0, pkt: udp_packet(internal, 5000, v4(8, 8, 8, 8), 53) },
        );
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 0, pkt: udp_packet(internal, 5000, v4(9, 9, 9, 9), 53) },
        );
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(sim.world.node::<Nat>(nat_node).unwrap().mapping_count(), 1);
    }

    #[test]
    fn symmetric_allocates_per_remote() {
        use crate::engine::Event;
        use crate::time::SimTime;
        let (mut sim, _i, nat_node, _o) = harness(NatKind::Symmetric);
        let internal = v4(192, 168, 1, 10);
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 0, pkt: udp_packet(internal, 5000, v4(8, 8, 8, 8), 53) },
        );
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 0, pkt: udp_packet(internal, 5000, v4(9, 9, 9, 9), 53) },
        );
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(sim.world.node::<Nat>(nat_node).unwrap().mapping_count(), 2);
    }

    #[test]
    fn symmetric_filters_third_party() {
        use crate::engine::Event;
        use crate::time::SimTime;
        let (mut sim, _i, nat_node, _o) = harness(NatKind::Symmetric);
        let internal = v4(192, 168, 1, 10);
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: nat_node, iface: 0, pkt: udp_packet(internal, 5000, v4(8, 8, 8, 8), 53) },
        );
        sim.run_until(SimTime(500_000_000));
        let port = {
            let nat = sim.world.node::<Nat>(nat_node).unwrap();
            nat.by_port.keys().next().unwrap().1
        };
        // A different remote tries to use the mapping.
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive {
                node: nat_node,
                iface: 1,
                pkt: udp_packet(v4(9, 9, 9, 9), 53, v4(203, 0, 113, 1), port),
            },
        );
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(sim.world.node::<Nat>(nat_node).unwrap().dropped, 1);
    }

    #[test]
    fn icmp_ident_translated() {
        use crate::engine::Event;
        use crate::time::SimTime;
        let (mut sim, _i, nat_node, _o) = harness(NatKind::Cone);
        let ping = Packet::new(
            v4(192, 168, 1, 10),
            v4(8, 8, 8, 8),
            Payload::Icmp(IcmpMessage { kind: IcmpKind::EchoRequest, ident: 77, seq: 1, payload_len: 56 }),
        );
        sim.schedule(SimDuration::ZERO, Event::PacketArrive { node: nat_node, iface: 0, pkt: ping });
        sim.run_until(SimTime(1_000_000_000));
        let nat = sim.world.node::<Nat>(nat_node).unwrap();
        assert_eq!(nat.mapping_count(), 1);
        let m = nat.by_port.values().next().unwrap();
        assert_eq!(m.internal, (v4(192, 168, 1, 10), 77));
    }

    #[test]
    fn gc_expires_idle_mappings() {
        let mut nat = Nat::new("n", Ipv4Addr::new(1, 1, 1, 1), NatKind::Cone);
        nat.mapping_timeout = SimDuration::from_secs(1);
        nat.by_port.insert(
            (proto::UDP, 40000),
            Mapping { external_port: 40000, internal: (v4(10, 0, 0, 1), 5), last_used: SimTime::ZERO },
        );
        nat.mappings.insert(
            FlowKey { proto: proto::UDP, internal: (v4(10, 0, 0, 1), 5), remote: None },
            40000,
        );
        nat.gc(SimTime(2_000_000_000));
        assert_eq!(nat.mapping_count(), 0);
        assert!(nat.mappings.is_empty());
    }
}
