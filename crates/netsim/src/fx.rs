//! A deterministic FxHash-style hasher for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 behind a
//! per-process `RandomState`. That is the right default against
//! adversarial keys, but inside the simulator every key is
//! simulator-generated (connection 4-tuples, ports), the maps are
//! consulted on every data segment, and — most importantly — the seed
//! randomness would make iteration order differ between processes,
//! which the determinism tests forbid relying on. This module provides
//! the multiply-rotate hash used by rustc (`FxHasher`): a few cycles
//! per key, no per-process state, identical across runs.
//!
//! Not DoS-resistant by design; never use it for attacker-controlled
//! keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-FxHash multiplier (derived from the golden ratio, chosen
/// for dispersion under `wrapping_mul`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds `FxHasher`s (zero-sized; no per-process randomness).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};
    use std::net::IpAddr;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (crate::packet::v4(10, 0, 0, 1), 443u16, crate::packet::v4(10, 0, 0, 2), 49152u16);
        assert_eq!(hash_of(&key), hash_of(&key));
        // Two independent builders agree (no RandomState).
        let a = FxBuildHasher::default().hash_one(key);
        let b = FxBuildHasher::default().hash_one(key);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_tuples() {
        let k1 = (crate::packet::v4(10, 0, 0, 1), 443u16, crate::packet::v4(10, 0, 0, 2), 49152u16);
        let k2 = (crate::packet::v4(10, 0, 0, 1), 443u16, crate::packet::v4(10, 0, 0, 2), 49153u16);
        assert_ne!(hash_of(&k1), hash_of(&k2));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(IpAddr, u16), u32> = FxHashMap::default();
        for p in 0..1000u16 {
            m.insert((crate::packet::v4(10, 0, (p >> 8) as u8, p as u8), p), u32::from(p));
        }
        for p in 0..1000u16 {
            assert_eq!(m.get(&(crate::packet::v4(10, 0, (p >> 8) as u8, p as u8), p)), Some(&u32::from(p)));
        }
    }
}
