//! Lightweight event tracing with typed records and JSONL export.
//!
//! Tests and experiment harnesses can enable tracing to see every packet
//! hop, drop and timer; production sweeps leave it disabled (the trace is
//! a no-op unless `enabled` is set, so the hot path pays one branch).
//!
//! Records are typed ([`TraceData`]) rather than pre-rendered strings,
//! so harnesses filter on structure (`proto == 6`) instead of grepping
//! text, and the whole buffer exports as JSON Lines — one flat object
//! per entry — that parses back into identical records
//! ([`TraceEntry::parse_json_line`]).
//!
//! Timer fire/cancel records are high-volume and opt-in
//! ([`Trace::with_timers`]); packet records are always captured when
//! the trace is enabled. When the cap truncates, the number of entries
//! lost is counted ([`Trace::truncated`]) so harnesses can warn instead
//! of silently reporting a short trace.

use crate::engine::TimerOwner;
use crate::link::NodeId;
use crate::time::SimTime;
use std::net::IpAddr;

/// Packet identity carried by Tx/Rx/Drop records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PktInfo {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// IP protocol number (6 TCP, 17 UDP, 50 ESP, 139 HIP, ...).
    pub proto: u8,
    /// On-wire length in bytes.
    pub len: u32,
}

/// What happened, with typed payload.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceData {
    /// Packet handed to a link.
    Tx(PktInfo),
    /// Packet delivered to a node.
    Rx(PktInfo),
    /// Packet dropped (loss, queue overflow, no route, TTL, policy).
    /// `pkt` is present when the dropper still had the packet in hand.
    Drop {
        /// The dropped packet, if known at the drop site.
        pkt: Option<PktInfo>,
        /// Why it was dropped.
        reason: String,
    },
    /// A protocol state change worth seeing (BEX transitions, TCP states).
    State {
        /// Human-readable description.
        detail: String,
    },
    /// A timer fired and was dispatched.
    TimerFire {
        /// Which layer owned the timer.
        owner: TimerOwner,
        /// Owner-defined token.
        token: u64,
    },
    /// A live cancellable timer was cancelled.
    TimerCancel {
        /// Opaque id of the cancelled token.
        token: u64,
    },
    /// A fault episode transition (link down/up, crash/restart,
    /// partition/heal) applied by the injector.
    Fault {
        /// Human-readable description of the transition.
        detail: String,
    },
}

/// The coarse kind of a record (cheap filtering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet handed to a link.
    Tx,
    /// Packet delivered to a node.
    Rx,
    /// Packet dropped.
    Drop,
    /// Protocol state change.
    State,
    /// Timer dispatched.
    TimerFire,
    /// Timer cancelled.
    TimerCancel,
    /// Fault episode transition.
    Fault,
}

impl TraceData {
    /// The record's coarse kind.
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceData::Tx(_) => TraceKind::Tx,
            TraceData::Rx(_) => TraceKind::Rx,
            TraceData::Drop { .. } => TraceKind::Drop,
            TraceData::State { .. } => TraceKind::State,
            TraceData::TimerFire { .. } => TraceKind::TimerFire,
            TraceData::TimerCancel { .. } => TraceKind::TimerCancel,
            TraceData::Fault { .. } => TraceKind::Fault,
        }
    }

    /// The packet info, for Tx/Rx/Drop records that carry one.
    pub fn pkt(&self) -> Option<&PktInfo> {
        match self {
            TraceData::Tx(p) | TraceData::Rx(p) => Some(p),
            TraceData::Drop { pkt, .. } => pkt.as_ref(),
            _ => None,
        }
    }
}

fn owner_str(o: TimerOwner) -> String {
    match o {
        TimerOwner::Tcp => "tcp".to_string(),
        TimerOwner::Shim => "shim".to_string(),
        TimerOwner::Node => "node".to_string(),
        TimerOwner::App(i) => format!("app:{i}"),
    }
}

fn owner_parse(s: &str) -> Option<TimerOwner> {
    match s {
        "tcp" => Some(TimerOwner::Tcp),
        "shim" => Some(TimerOwner::Shim),
        "node" => Some(TimerOwner::Node),
        _ => s.strip_prefix("app:").and_then(|i| i.parse().ok()).map(TimerOwner::App),
    }
}

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Which node reported it.
    pub node: NodeId,
    /// Coarse kind (derived from `data`, stored for cheap filtering).
    pub kind: TraceKind,
    /// The typed record.
    pub data: TraceData,
}

impl TraceEntry {
    /// Human-readable rendering of the record payload.
    pub fn detail(&self) -> String {
        match &self.data {
            TraceData::Tx(p) | TraceData::Rx(p) => {
                format!("{} -> {} proto {} len {}", p.src, p.dst, p.proto, p.len)
            }
            TraceData::Drop { pkt: Some(p), reason } => {
                format!("{reason} ({} -> {} proto {} len {})", p.src, p.dst, p.proto, p.len)
            }
            TraceData::Drop { pkt: None, reason } => reason.clone(),
            TraceData::State { detail } => detail.clone(),
            TraceData::TimerFire { owner, token } => {
                format!("owner {} token {token}", owner_str(*owner))
            }
            TraceData::TimerCancel { token } => format!("token {token}"),
            TraceData::Fault { detail } => detail.clone(),
        }
    }

    /// Serializes the entry as one flat JSON object (no trailing
    /// newline). Round-trips through [`TraceEntry::parse_json_line`].
    pub fn to_json_line(&self) -> String {
        let mut w = obs::json::ObjWriter::new();
        w.raw_field("t", self.at.as_nanos());
        w.raw_field("node", self.node.0);
        let kind = match self.kind {
            TraceKind::Tx => "tx",
            TraceKind::Rx => "rx",
            TraceKind::Drop => "drop",
            TraceKind::State => "state",
            TraceKind::TimerFire => "timer_fire",
            TraceKind::TimerCancel => "timer_cancel",
            TraceKind::Fault => "fault",
        };
        w.str_field("kind", kind);
        match &self.data {
            TraceData::Tx(p) | TraceData::Rx(p) => {
                w.str_field("src", &p.src.to_string());
                w.str_field("dst", &p.dst.to_string());
                w.raw_field("proto", p.proto);
                w.raw_field("len", p.len);
            }
            TraceData::Drop { pkt, reason } => {
                w.str_field("reason", reason);
                if let Some(p) = pkt {
                    w.str_field("src", &p.src.to_string());
                    w.str_field("dst", &p.dst.to_string());
                    w.raw_field("proto", p.proto);
                    w.raw_field("len", p.len);
                }
            }
            TraceData::State { detail } => {
                w.str_field("detail", detail);
            }
            TraceData::TimerFire { owner, token } => {
                w.str_field("owner", &owner_str(*owner));
                w.raw_field("token", token);
            }
            TraceData::TimerCancel { token } => {
                w.raw_field("token", token);
            }
            TraceData::Fault { detail } => {
                w.str_field("detail", detail);
            }
        }
        w.finish()
    }

    /// Parses one JSONL line back into an entry. Returns `None` on
    /// malformed input.
    pub fn parse_json_line(line: &str) -> Option<TraceEntry> {
        let kv = obs::json::parse_flat(line)?;
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let at = SimTime(get("t")?.as_u64()?);
        let node = NodeId(get("node")?.as_u64()? as usize);
        let pkt = || -> Option<PktInfo> {
            Some(PktInfo {
                src: get("src")?.as_str()?.parse().ok()?,
                dst: get("dst")?.as_str()?.parse().ok()?,
                proto: get("proto")?.as_u64()? as u8,
                len: get("len")?.as_u64()? as u32,
            })
        };
        let data = match get("kind")?.as_str()? {
            "tx" => TraceData::Tx(pkt()?),
            "rx" => TraceData::Rx(pkt()?),
            "drop" => TraceData::Drop { pkt: pkt(), reason: get("reason")?.as_str()?.to_string() },
            "state" => TraceData::State { detail: get("detail")?.as_str()?.to_string() },
            "timer_fire" => TraceData::TimerFire {
                owner: owner_parse(get("owner")?.as_str()?)?,
                token: get("token")?.as_u64()?,
            },
            "timer_cancel" => TraceData::TimerCancel { token: get("token")?.as_u64()? },
            "fault" => TraceData::Fault { detail: get("detail")?.as_str()?.to_string() },
            _ => return None,
        };
        Some(TraceEntry { at, node, kind: data.kind(), data })
    }
}

/// A bounded in-memory trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    timers: bool,
    entries: Vec<TraceEntry>,
    /// Cap so pathological runs cannot exhaust memory.
    cap: usize,
    /// Entries lost to the cap while enabled.
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace retaining up to `cap` entries. Timer records
    /// are off by default (high volume); see [`Trace::with_timers`].
    pub fn enabled(cap: usize) -> Self {
        Trace { enabled: true, cap, ..Default::default() }
    }

    /// Enables or disables timer fire/cancel records.
    pub fn with_timers(mut self, on: bool) -> Self {
        self.timers = on;
        self
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether timer records are captured.
    pub fn timers_enabled(&self) -> bool {
        self.enabled && self.timers
    }

    /// Records an entry if enabled and below the cap. `data` is built
    /// lazily so disabled traces never allocate; past the cap, the
    /// entry is counted as dropped instead.
    pub fn record(&mut self, at: SimTime, node: NodeId, data: impl FnOnce() -> TraceData) {
        if !self.enabled {
            return;
        }
        if self.entries.len() < self.cap {
            let data = data();
            self.entries.push(TraceEntry { at, node, kind: data.kind(), data });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// How many entries were lost because the buffer hit its cap.
    /// Non-zero means [`Trace::entries`] is a truncated prefix and
    /// harnesses should say so instead of reporting a short trace.
    pub fn truncated(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as text, one entry per line.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&format!(
                "{:>12.6} node{:<3} {:?} {}\n",
                e.at.as_secs_f64(),
                e.node.0,
                e.kind,
                e.detail()
            ));
        }
        s
    }

    /// The whole buffer as JSON Lines (one object per entry).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_json_line());
            s.push('\n');
        }
        s
    }

    /// Writes the buffer as JSONL to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn sample_entries() -> Vec<TraceEntry> {
        let mk = |at, data: TraceData| TraceEntry { at, kind: data.kind(), node: NodeId(3), data };
        vec![
            mk(
                SimTime(1),
                TraceData::Tx(PktInfo { src: ip("10.0.0.1"), dst: ip("10.0.0.2"), proto: 6, len: 1500 }),
            ),
            mk(
                SimTime(u64::MAX - 1),
                TraceData::Rx(PktInfo { src: ip("fd00::1"), dst: ip("fd00::2"), proto: 50, len: 96 }),
            ),
            mk(SimTime(5), TraceData::Drop { pkt: None, reason: "no route, \"dark\" dest".into() }),
            mk(
                SimTime(6),
                TraceData::Drop {
                    pkt: Some(PktInfo { src: ip("192.168.1.9"), dst: ip("8.8.8.8"), proto: 17, len: 64 }),
                    reason: "queue overflow".into(),
                },
            ),
            mk(SimTime(7), TraceData::State { detail: "I1 -> R1, puzzle k=10\nline2".into() }),
            mk(SimTime(8), TraceData::TimerFire { owner: TimerOwner::App(2), token: 42 }),
            mk(SimTime(9), TraceData::TimerCancel { token: (7 << 32) | 1 }),
            mk(SimTime(10), TraceData::Fault { detail: "link 2 down".into() }),
        ]
    }

    #[test]
    fn jsonl_round_trip_is_identical() {
        for e in sample_entries() {
            let line = e.to_json_line();
            let back = TraceEntry::parse_json_line(&line)
                .unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(back, e, "line: {line}");
        }
    }

    #[test]
    fn trace_buffer_round_trips_through_jsonl() {
        let mut t = Trace::enabled(100).with_timers(true);
        for e in sample_entries() {
            let data = e.data.clone();
            t.record(e.at, e.node, || data);
        }
        let text = t.to_jsonl();
        let parsed: Vec<TraceEntry> =
            text.lines().map(|l| TraceEntry::parse_json_line(l).unwrap()).collect();
        assert_eq!(parsed, t.entries());
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, NodeId(0), || TraceData::State { detail: "x".into() });
        assert!(t.entries().is_empty());
        assert_eq!(t.truncated(), 0);
    }

    #[test]
    fn enabled_records_up_to_cap_and_counts_overflow() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.record(SimTime(i), NodeId(0), || TraceData::State { detail: format!("p{i}") });
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.truncated(), 3);
        assert_eq!(t.of_kind(TraceKind::State).count(), 2);
        assert_eq!(t.of_kind(TraceKind::Drop).count(), 0);
        assert!(t.dump().contains("p0"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(TraceEntry::parse_json_line("{}").is_none());
        assert!(TraceEntry::parse_json_line("{\"t\":1,\"node\":0,\"kind\":\"warp\"}").is_none());
        assert!(TraceEntry::parse_json_line("garbage").is_none());
    }
}
