//! Lightweight event tracing.
//!
//! Tests and experiment harnesses can enable tracing to see every packet
//! hop, drop and timer; production sweeps leave it disabled (the trace is
//! a no-op unless `enabled` is set, so the hot path pays one branch).

use crate::link::NodeId;
use crate::time::SimTime;

/// One traced occurrence.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Which node reported it.
    pub node: NodeId,
    /// What kind of occurrence.
    pub kind: TraceKind,
    /// Human-readable detail.
    pub detail: String,
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet handed to a link.
    Tx,
    /// Packet delivered to a node.
    Rx,
    /// Packet dropped (loss, queue overflow, no route, TTL, policy).
    Drop,
    /// A protocol state change worth seeing (BEX transitions, TCP states).
    State,
}

/// A bounded in-memory trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<TraceEntry>,
    /// Cap so pathological runs cannot exhaust memory.
    cap: usize,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace { enabled: false, entries: Vec::new(), cap: 0 }
    }

    /// An enabled trace retaining up to `cap` entries.
    pub fn enabled(cap: usize) -> Self {
        Trace { enabled: true, entries: Vec::new(), cap }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry if enabled and below the cap. `detail` is built
    /// lazily so disabled traces never allocate.
    pub fn record(&mut self, at: SimTime, node: NodeId, kind: TraceKind, detail: impl FnOnce() -> String) {
        if self.enabled && self.entries.len() < self.cap {
            self.entries.push(TraceEntry { at, node, kind, detail: detail() });
        }
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Renders the trace as text, one entry per line.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&format!(
                "{:>12.6} node{:<3} {:?} {}\n",
                e.at.as_secs_f64(),
                e.node.0,
                e.kind,
                e.detail
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, NodeId(0), TraceKind::Tx, || "x".into());
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_records_up_to_cap() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.record(SimTime(i), NodeId(0), TraceKind::Rx, || format!("p{i}"));
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.of_kind(TraceKind::Rx).count(), 2);
        assert_eq!(t.of_kind(TraceKind::Drop).count(), 0);
        assert!(t.dump().contains("p0"));
    }
}
