//! A small DNS model: names, records, messages, and a server node app.
//!
//! The paper's future-work section leans on HIP's DNS integration (HIP
//! resource records per RFC 5205, dynamic DNS for re-contact). We model a
//! structured DNS message over UDP port 53 with A/AAAA records plus the
//! HIP RR carrying a HIT, a serialized Host Identity, and optional
//! rendezvous servers.

use std::collections::HashMap;
use std::net::IpAddr;

/// Well-known DNS port.
pub const DNS_PORT: u16 = 53;

/// A DNS record type selector for queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// IPv6 address.
    Aaaa,
    /// HIP resource record (RFC 5205): HIT + Host Identity + RVS list.
    Hip,
    /// All records for the name.
    Any,
}

/// A DNS resource record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// IPv4 locator.
    A(IpAddr),
    /// IPv6 locator.
    Aaaa(IpAddr),
    /// HIP RR: the Host Identity Tag, the serialized public key (HI), and
    /// zero or more rendezvous server names/addresses.
    Hip {
        /// The Host Identity Tag.
        hit: [u8; 16],
        /// The serialized Host Identity (public key).
        host_identity: Vec<u8>,
        /// Rendezvous server locators, if any.
        rendezvous: Vec<IpAddr>,
    },
}

impl Record {
    /// Whether this record answers a query of `rtype`.
    #[allow(clippy::match_like_matches_macro)] // arm-per-type reads better
    pub fn matches(&self, rtype: RecordType) -> bool {
        match (self, rtype) {
            (_, RecordType::Any) => true,
            (Record::A(_), RecordType::A) => true,
            (Record::Aaaa(_), RecordType::Aaaa) => true,
            (Record::Hip { .. }, RecordType::Hip) => true,
            _ => false,
        }
    }

    /// Approximate wire size of the record (name compression ignored).
    pub fn wire_len(&self) -> usize {
        match self {
            Record::A(_) => 16,
            Record::Aaaa(_) => 28,
            Record::Hip { host_identity, rendezvous, .. } => {
                16 + 16 + host_identity.len() + rendezvous.len() * 16
            }
        }
    }
}

/// A DNS query or response.
#[derive(Clone, Debug)]
pub enum DnsMessage {
    /// A query for `name` records of `rtype`, tagged with a client id.
    Query {
        /// Client-chosen transaction id, echoed in the response.
        id: u16,
        /// The name being resolved.
        name: String,
        /// Which records are wanted.
        rtype: RecordType,
    },
    /// The response; empty `answers` means NXDOMAIN / no data.
    Response {
        /// Echoed transaction id.
        id: u16,
        /// Echoed name.
        name: String,
        /// Matching records.
        answers: Vec<Record>,
    },
}

impl DnsMessage {
    /// Approximate wire size.
    pub fn wire_len(&self) -> usize {
        match self {
            DnsMessage::Query { name, .. } => 12 + name.len() + 4,
            DnsMessage::Response { name, answers, .. } => {
                12 + name.len() + 4 + answers.iter().map(Record::wire_len).sum::<usize>()
            }
        }
    }
}

/// An authoritative zone: name → records. Cloned into the DNS server app.
#[derive(Clone, Debug, Default)]
pub struct Zone {
    records: HashMap<String, Vec<Record>>,
}

impl Zone {
    /// An empty zone.
    pub fn new() -> Self {
        Zone::default()
    }

    /// Adds a record for `name` (names are case-insensitive).
    pub fn add(&mut self, name: &str, record: Record) {
        self.records.entry(name.to_ascii_lowercase()).or_default().push(record);
    }

    /// Removes all records for `name`, returning how many were removed.
    /// (This is what HIP dynamic-DNS re-registration does on relocation.)
    pub fn remove(&mut self, name: &str) -> usize {
        self.records.remove(&name.to_ascii_lowercase()).map_or(0, |v| v.len())
    }

    /// Looks up records of `rtype` for `name`.
    pub fn lookup(&self, name: &str, rtype: RecordType) -> Vec<Record> {
        self.records
            .get(&name.to_ascii_lowercase())
            .map(|recs| recs.iter().filter(|r| r.matches(rtype)).cloned().collect())
            .unwrap_or_default()
    }

    /// Number of names with at least one record.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::v4;

    #[test]
    fn zone_add_lookup() {
        let mut z = Zone::new();
        z.add("web1.cloud", Record::A(v4(10, 0, 0, 5)));
        z.add(
            "web1.cloud",
            Record::Hip { hit: [9; 16], host_identity: vec![1, 2, 3], rendezvous: vec![] },
        );
        assert_eq!(z.lookup("web1.cloud", RecordType::A).len(), 1);
        assert_eq!(z.lookup("WEB1.CLOUD", RecordType::A).len(), 1, "case-insensitive");
        assert_eq!(z.lookup("web1.cloud", RecordType::Hip).len(), 1);
        assert_eq!(z.lookup("web1.cloud", RecordType::Any).len(), 2);
        assert_eq!(z.lookup("web1.cloud", RecordType::Aaaa).len(), 0);
        assert!(z.lookup("nosuch.cloud", RecordType::Any).is_empty());
    }

    #[test]
    fn zone_remove_supports_dynamic_dns() {
        let mut z = Zone::new();
        z.add("vm.cloud", Record::A(v4(10, 0, 0, 1)));
        assert_eq!(z.remove("vm.cloud"), 1);
        assert!(z.lookup("vm.cloud", RecordType::A).is_empty());
        // Re-register at the new locator.
        z.add("vm.cloud", Record::A(v4(10, 0, 1, 1)));
        assert_eq!(z.lookup("vm.cloud", RecordType::A), vec![Record::A(v4(10, 0, 1, 1))]);
    }

    #[test]
    fn message_wire_len_scales_with_answers() {
        let q = DnsMessage::Query { id: 1, name: "a.b".into(), rtype: RecordType::A };
        let r = DnsMessage::Response {
            id: 1,
            name: "a.b".into(),
            answers: vec![Record::A(v4(1, 1, 1, 1)), Record::Aaaa(v4(1, 1, 1, 1))],
        };
        assert!(r.wire_len() > q.wire_len());
    }
}
