//! TCP: reliable byte streams over the simulated network.
//!
//! A real windowed TCP, not a fluid model: three-way handshake, MSS
//! segmentation, cumulative ACKs, RTT estimation (RFC 6298), slow start
//! and congestion avoidance, fast retransmit on three duplicate ACKs,
//! exponential RTO backoff, receiver flow control with a configurable
//! window (the paper's iperf run uses 85.3 KB server / 16 KB client
//! windows), and FIN/RST teardown.
//!
//! The layer is embedded in a host ([`crate::host::Host`]). It never
//! touches the event queue directly; it accumulates outgoing packets,
//! application events and timer requests which the host drains after
//! each call — keeping this module purely about protocol state.

use crate::fx::FxHashMap;
use crate::packet::{Packet, Payload, TcpFlags, TcpSegment};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::net::IpAddr;

/// Connection 4-tuple: (local addr, local port, remote addr, remote port).
type ConnKey = (IpAddr, u16, IpAddr, u16);

/// Upper bound on a GSO super-segment (bytes), before MSS alignment.
const GSO_MAX: usize = 65_536;

/// Identifies a socket within one host's TCP layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SockId(pub usize);

/// Events the TCP layer reports to applications (via the host).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcpEvent {
    /// Active open completed.
    Connected(SockId),
    /// A listener accepted a new connection.
    Accepted {
        /// The port the listener was bound to.
        listener_port: u16,
        /// The newly created connection socket.
        sock: SockId,
    },
    /// New in-order data is available via `recv`.
    Data(SockId),
    /// The peer closed its direction (EOF after draining `recv`).
    PeerClosed(SockId),
    /// The connection is fully closed and the socket released.
    Closed(SockId),
    /// Active open failed (RST or SYN retransmission exhausted).
    ConnectFailed(SockId),
    /// The connection was reset by the peer.
    Reset(SockId),
}

/// Sender-side segmentation offload (GSO) policy.
///
/// Batching is a *simulator-mechanism* optimization: the TCP layer
/// emits one super-segment per send burst instead of one packet per
/// MSS, and the NIC layer turns it back into per-frame wire traffic.
/// What varies between the modes is how much of the per-frame work is
/// recreated, and therefore how strong the equivalence guarantee is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GsoMode {
    /// One MSS-sized segment per packet (the pre-batching behavior).
    Off,
    /// Emit super-segments; the NIC layer (host `send_wire` for plain
    /// TCP, the ESP shim for HIP) splits them into per-frame wire
    /// packets immediately before the link, drawing per-frame
    /// loss/jitter in the same order as `Off`. Every wire-visible event
    /// is identical to `Off` — goldens stay bit-identical — while TCP
    /// segmentation and ESP crypto run once per burst.
    Exact,
    /// Super-segments survive onto the wire as merged arrivals (GRO):
    /// the link still draws loss/jitter and accounts wire bytes,
    /// serialization and drops per frame, but surviving contiguous
    /// frame runs deliver as a single event ACKed once. Application
    /// streams stay byte-identical and wire/drop counters match on
    /// clean links; delivery timing is approximate. Opt-in for
    /// bulk-transfer benchmarks (Basic TCP only; the ESP shim always
    /// splits exactly).
    Merged,
}

/// TCP tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: usize,
    /// Advertised receive window in bytes.
    pub recv_window: u32,
    /// Initial congestion window in segments.
    pub init_cwnd_segments: u32,
    /// Initial retransmission timeout.
    pub rto_initial: SimDuration,
    /// Lower bound on the RTO.
    pub rto_min: SimDuration,
    /// SYN retries before giving up.
    pub syn_retries: u32,
    /// Disable congestion control (window limited by receiver only) —
    /// not used by the experiments but handy for microbenchmarks.
    pub congestion_control: bool,
    /// Sender-side segmentation offload policy (see [`GsoMode`]).
    pub gso: GsoMode,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            recv_window: 87_347, // the paper's 85.3 KB default window
            init_cwnd_segments: 10,
            rto_initial: SimDuration::from_millis(1000),
            rto_min: SimDuration::from_millis(200),
            syn_retries: 5,
            congestion_control: true,
            gso: GsoMode::Exact,
        }
    }
}

/// Connection states (simplified TIME-WAIT).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TcpState {
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
    Closed,
}

struct TcpSocket {
    id: SockId,
    owner_app: usize,
    local: (IpAddr, u16),
    remote: (IpAddr, u16),
    state: TcpState,
    cfg: TcpConfig,

    // --- send state ---
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Bytes awaiting ACK or transmission, starting at `snd_una`.
    send_buf: VecDeque<u8>,
    /// Peer's advertised window.
    snd_wnd: u32,
    /// Congestion window (bytes).
    cwnd: u64,
    /// Slow-start threshold (bytes).
    ssthresh: u64,
    dup_acks: u32,
    /// FIN queued after the data currently buffered.
    fin_pending: bool,
    /// Sequence number consumed by our FIN once sent.
    fin_seq: Option<u32>,

    // --- RTT estimation ---
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    /// One outstanding RTT sample: (seq that must be acked, send time).
    rtt_sample: Option<(u32, SimTime)>,
    /// Retransmission deadline (lazy-cancelled timers check this).
    rtx_deadline: Option<SimTime>,
    rtx_count: u32,
    /// When the handshake started (SYN sent or received), for the
    /// connect/accept latency metric.
    opened_at: SimTime,

    // --- receive state ---
    rcv_nxt: u32,
    recv_buf: Vec<u8>,
    /// Out-of-order segments keyed by sequence number.
    ooo: BTreeMap<u32, Bytes>,
    peer_fin_seq: Option<u32>,

    /// TIME-WAIT expiry.
    time_wait_deadline: Option<SimTime>,
}

/// Sequence-number comparison helpers (RFC 793 modular arithmetic).
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// The per-host TCP layer.
pub struct TcpLayer {
    sockets: Vec<Option<TcpSocket>>,
    conn_map: FxHashMap<ConnKey, SockId>,
    /// One-entry MRU cache in front of `conn_map`: bulk transfers hit
    /// the same flow for long runs of segments.
    last_flow: Option<(ConnKey, SockId)>,
    /// Sockets grouped by remote address, so `abort_to` is a lookup
    /// instead of a scan over every socket.
    by_remote: FxHashMap<IpAddr, Vec<SockId>>,
    listeners: FxHashMap<u16, usize>,
    next_ephemeral: u16,
    /// Default configuration for new sockets.
    pub config: TcpConfig,
    /// Outgoing packets accumulated for the host to flush.
    pub out: Vec<Packet>,
    /// Application events accumulated for the host to dispatch.
    pub events: Vec<(usize, TcpEvent)>,
    /// Timer requests `(delay, token)` the host must arm (owner = Tcp).
    pub timer_reqs: Vec<(SimDuration, u64)>,
    /// Tokens whose pending engine timer is no longer needed; the host
    /// cancels these *before* arming `timer_reqs` so a cancel-then-rearm
    /// sequence inside one dispatch leaves the rearm live. (An arm that is
    /// later obsoleted in the same dispatch merely pops stale — the
    /// per-socket deadline checks in `on_timer` remain the backstop.)
    pub cancel_reqs: Vec<u64>,
    /// Metric observations for the host to fold into the registry
    /// (drained each pump; purely observational).
    pub metric_evs: Vec<TcpMetric>,
}

/// A metric observation from the TCP layer, recorded by the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpMetric {
    /// Active open completed: SYN sent → Established, in sim-ns.
    ConnectNs(u64),
    /// Passive open completed: SYN received → Established, in sim-ns.
    AcceptNs(u64),
    /// A retransmission timeout fired.
    Rtx,
}

impl TcpLayer {
    /// Creates an empty layer.
    pub fn new(config: TcpConfig) -> Self {
        TcpLayer {
            sockets: Vec::new(),
            conn_map: FxHashMap::default(),
            last_flow: None,
            by_remote: FxHashMap::default(),
            listeners: FxHashMap::default(),
            next_ephemeral: 49152,
            config,
            out: Vec::new(),
            events: Vec::new(),
            timer_reqs: Vec::new(),
            cancel_reqs: Vec::new(),
            metric_evs: Vec::new(),
        }
    }

    /// Starts listening on `port`, delivering accepts to `app`.
    /// Returns false if the port is taken.
    pub fn listen(&mut self, port: u16, app: usize) -> bool {
        if self.listeners.contains_key(&port) {
            return false;
        }
        self.listeners.insert(port, app);
        true
    }

    /// Stops listening on `port`.
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    /// Opens a connection from `local_addr` to `remote`; `iss` is the
    /// initial sequence number (host supplies randomness).
    pub fn connect(
        &mut self,
        local_addr: IpAddr,
        remote: (IpAddr, u16),
        app: usize,
        iss: u32,
        now: SimTime,
    ) -> SockId {
        let local_port = self.alloc_port();
        let id = self.alloc_sock();
        let cfg = self.config;
        let mut sock = TcpSocket::new(id, app, (local_addr, local_port), remote, cfg);
        sock.state = TcpState::SynSent;
        sock.opened_at = now;
        sock.snd_una = iss;
        sock.snd_nxt = iss.wrapping_add(1);
        self.conn_map.insert((local_addr, local_port, remote.0, remote.1), id);
        self.by_remote.entry(remote.0).or_default().push(id);
        let syn = sock.make_segment(iss, TcpFlags::SYN, Bytes::new());
        sock.arm_rtx(now, &mut self.timer_reqs);
        self.out.push(syn);
        self.sockets[id.0] = Some(sock);
        id
    }

    /// Queues `data` for transmission.
    pub fn send(&mut self, sock: SockId, data: &[u8], now: SimTime) {
        let Some(s) = self.sockets.get_mut(sock.0).and_then(Option::as_mut) else { return };
        if !matches!(s.state, TcpState::Established | TcpState::CloseWait) {
            return;
        }
        s.send_buf.extend(data.iter().copied());
        s.try_output(&mut self.out, now, &mut self.timer_reqs);
    }

    /// Reads and drains all in-order received bytes.
    pub fn recv(&mut self, sock: SockId) -> Vec<u8> {
        match self.sockets.get_mut(sock.0).and_then(Option::as_mut) {
            Some(s) => std::mem::take(&mut s.recv_buf),
            None => Vec::new(),
        }
    }

    /// Bytes queued in the send buffer (unacked + unsent) — lets bulk
    /// senders (iperf) keep the pipe full without unbounded buffering.
    pub fn buffered(&self, sock: SockId) -> usize {
        self.sockets
            .get(sock.0)
            .and_then(Option::as_ref)
            .map_or(0, |s| s.send_buf.len())
    }

    /// Bytes available without draining.
    pub fn recv_len(&self, sock: SockId) -> usize {
        self.sockets
            .get(sock.0)
            .and_then(Option::as_ref)
            .map_or(0, |s| s.recv_buf.len())
    }

    /// The remote endpoint of a socket.
    pub fn peer_of(&self, sock: SockId) -> Option<(IpAddr, u16)> {
        self.sockets.get(sock.0).and_then(Option::as_ref).map(|s| s.remote)
    }

    /// The local endpoint of a socket.
    pub fn local_of(&self, sock: SockId) -> Option<(IpAddr, u16)> {
        self.sockets.get(sock.0).and_then(Option::as_ref).map(|s| s.local)
    }

    /// Whether the socket still exists (not fully closed).
    pub fn is_open(&self, sock: SockId) -> bool {
        self.sockets.get(sock.0).and_then(Option::as_ref).is_some()
    }

    /// Closes the sending direction (sends FIN after queued data).
    pub fn close(&mut self, sock: SockId, now: SimTime) {
        let Some(s) = self.sockets.get_mut(sock.0).and_then(Option::as_mut) else { return };
        match s.state {
            TcpState::Established => {
                s.fin_pending = true;
                s.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                s.fin_pending = true;
                s.state = TcpState::LastAck;
            }
            TcpState::SynSent => {
                // Abort before establishment.
                let id = s.id;
                self.release(id);
                return;
            }
            _ => return,
        }
        s.try_output(&mut self.out, now, &mut self.timer_reqs);
    }

    /// Aborts with RST.
    pub fn abort(&mut self, sock: SockId) {
        let Some(s) = self.sockets.get_mut(sock.0).and_then(Option::as_mut) else { return };
        let rst = s.make_segment(s.snd_nxt, TcpFlags::RST, Bytes::new());
        self.out.push(rst);
        let id = s.id;
        let app = s.owner_app;
        self.release(id);
        self.events.push((app, TcpEvent::Closed(id)));
    }

    /// Aborts every connection whose remote address is `remote` — used
    /// when the layer-3.5 shim determines the peer is unreachable (BEX
    /// retransmission exhausted after a crash). Sockets still in the
    /// handshake report [`TcpEvent::ConnectFailed`], established ones
    /// [`TcpEvent::Reset`]. No RST is sent: the peer is unreachable.
    pub fn abort_to(&mut self, remote: IpAddr) {
        let mut ids = self.by_remote.get(&remote).cloned().unwrap_or_default();
        // The index is insertion-ordered (and `release` swap-removes);
        // sort so events fire in socket-index order like the old full
        // scan did — event order is part of the determinism contract.
        ids.sort_unstable();
        for id in ids {
            let Some(s) = self.sockets.get(id.0).and_then(Option::as_ref) else { continue };
            let app = s.owner_app;
            let ev = if s.state == TcpState::SynSent {
                TcpEvent::ConnectFailed(id)
            } else {
                TcpEvent::Reset(id)
            };
            self.release(id);
            self.events.push((app, ev));
        }
    }

    /// Handles an inbound segment addressed to this host.
    pub fn segment_arrives(&mut self, src: IpAddr, dst: IpAddr, seg: TcpSegment, now: SimTime) {
        let key = (dst, seg.dst_port, src, seg.src_port);
        // MRU hint first: long bursts hit the same flow back-to-back.
        // `release` clears the hint, so a hit is never stale.
        if let Some((hint_key, id)) = self.last_flow {
            if hint_key == key {
                self.on_segment(id, seg, now);
                return;
            }
        }
        if let Some(&id) = self.conn_map.get(&key) {
            self.last_flow = Some((key, id));
            self.on_segment(id, seg, now);
            return;
        }
        // New connection?
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&app) = self.listeners.get(&seg.dst_port) {
                let id = self.alloc_sock();
                let cfg = self.config;
                let mut sock =
                    TcpSocket::new(id, app, (dst, seg.dst_port), (src, seg.src_port), cfg);
                sock.state = TcpState::SynReceived;
                sock.opened_at = now;
                // Derive our ISS deterministically from the peer's (the
                // host layer has the RNG; this keeps the API small).
                let iss = seg.seq.wrapping_mul(2654435761).wrapping_add(0x9e3779b9);
                sock.snd_una = iss;
                sock.snd_nxt = iss.wrapping_add(1);
                sock.rcv_nxt = seg.seq.wrapping_add(1);
                sock.snd_wnd = seg.window;
                let synack = sock.make_segment(iss, TcpFlags::SYN_ACK, Bytes::new());
                sock.arm_rtx(now, &mut self.timer_reqs);
                self.conn_map.insert(key, id);
                self.by_remote.entry(src).or_default().push(id);
                self.out.push(synack);
                self.sockets[id.0] = Some(sock);
                return;
            }
        }
        // No socket: RST anything that is not itself an RST.
        if !seg.flags.rst {
            let rst = Packet::new(
                dst,
                src,
                Payload::Tcp(TcpSegment {
                    src_port: seg.dst_port,
                    dst_port: seg.src_port,
                    seq: if seg.flags.ack { seg.ack } else { 0 },
                    ack: seg.seq.wrapping_add(seg.data.len() as u32 + u32::from(seg.flags.syn)),
                    flags: TcpFlags::RST,
                    window: 0,
                    data: Bytes::new(),
                    gso_mss: 0,
                }),
            );
            self.out.push(rst);
        }
    }

    /// A TCP timer fired; `token` is the socket index.
    pub fn on_timer(&mut self, token: u64, now: SimTime) {
        let idx = token as usize;
        let Some(Some(s)) = self.sockets.get_mut(idx) else { return };
        // TIME-WAIT expiry.
        if let Some(tw) = s.time_wait_deadline {
            if now >= tw {
                let id = s.id;
                let app = s.owner_app;
                self.release(id);
                self.events.push((app, TcpEvent::Closed(id)));
                return;
            }
        }
        let Some(deadline) = s.rtx_deadline else { return };
        if now < deadline {
            return; // stale timer; a fresher one is queued
        }
        // Retransmission timeout.
        s.rtx_count += 1;
        self.metric_evs.push(TcpMetric::Rtx);
        if s.state == TcpState::SynSent && s.rtx_count > s.cfg.syn_retries {
            let id = s.id;
            let app = s.owner_app;
            self.events.push((app, TcpEvent::ConnectFailed(id)));
            self.release(id);
            return;
        }
        if s.rtx_count > 15 {
            let id = s.id;
            let app = s.owner_app;
            self.events.push((app, TcpEvent::Reset(id)));
            self.release(id);
            return;
        }
        // Exponential backoff, collapse cwnd, retransmit one segment.
        s.rto = SimDuration::from_nanos(s.rto.as_nanos().saturating_mul(2).min(60_000_000_000));
        // Congestion state only exists once data flows: handshake
        // timeouts must not collapse the initial window (RFC 5681 sets
        // IW at establishment, not before).
        if !matches!(s.state, TcpState::SynSent | TcpState::SynReceived) {
            let flight = s.snd_nxt.wrapping_sub(s.snd_una) as u64;
            s.ssthresh = (flight / 2).max(2 * s.cfg.mss as u64);
            s.cwnd = s.cfg.mss as u64;
        }
        s.dup_acks = 0;
        s.rtt_sample = None; // Karn's algorithm
        s.retransmit_head(&mut self.out);
        s.arm_rtx(now, &mut self.timer_reqs);
    }

    fn on_segment(&mut self, id: SockId, seg: TcpSegment, now: SimTime) {
        let Some(s) = self.sockets.get_mut(id.0).and_then(Option::as_mut) else { return };
        let app = s.owner_app;

        if seg.flags.rst {
            let ev = if s.state == TcpState::SynSent {
                TcpEvent::ConnectFailed(id)
            } else {
                TcpEvent::Reset(id)
            };
            self.events.push((app, ev));
            self.release(id);
            return;
        }

        match s.state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == s.snd_nxt {
                    s.rcv_nxt = seg.seq.wrapping_add(1);
                    s.snd_una = seg.ack;
                    s.snd_wnd = seg.window;
                    s.state = TcpState::Established;
                    s.rtx_deadline = None;
                    s.rtx_count = 0;
                    self.cancel_reqs.push(id.0 as u64);
                    // RFC 6298 §5.7: the RTO backed off by SYN losses must
                    // be re-initialized when data transmission begins.
                    s.rto = s.cfg.rto_initial;
                    let ack = s.make_segment(s.snd_nxt, TcpFlags::ACK, Bytes::new());
                    self.out.push(ack);
                    self.events.push((app, TcpEvent::Connected(id)));
                    self.metric_evs.push(TcpMetric::ConnectNs(
                        now.as_nanos().saturating_sub(s.opened_at.as_nanos()),
                    ));
                }
            }
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack == s.snd_nxt {
                    s.state = TcpState::Established;
                    s.snd_una = seg.ack;
                    s.snd_wnd = seg.window;
                    s.rtx_deadline = None;
                    s.rtx_count = 0;
                    self.cancel_reqs.push(id.0 as u64);
                    s.rto = s.cfg.rto_initial;
                    let port = s.local.1;
                    self.events.push((app, TcpEvent::Accepted { listener_port: port, sock: id }));
                    self.metric_evs.push(TcpMetric::AcceptNs(
                        now.as_nanos().saturating_sub(s.opened_at.as_nanos()),
                    ));
                    // The handshake-completing ACK may carry data.
                    if !seg.data.is_empty() || seg.flags.fin {
                        self.process_established(id, seg, now);
                    }
                }
            }
            _ => self.process_established(id, seg, now),
        }
    }

    /// Data/ACK/FIN processing common to synchronized states.
    fn process_established(&mut self, id: SockId, seg: TcpSegment, now: SimTime) {
        let Some(s) = self.sockets.get_mut(id.0).and_then(Option::as_mut) else { return };
        let app = s.owner_app;
        let mut need_ack = false;
        let mut had_new_data = false;

        // --- ACK processing ---
        if seg.flags.ack {
            s.snd_wnd = seg.window;
            let ack = seg.ack;
            if seq_lt(s.snd_una, ack) && seq_le(ack, s.snd_nxt) {
                let newly_acked = ack.wrapping_sub(s.snd_una) as usize;
                // Account for FIN occupying one sequence number.
                let fin_acked = s.fin_seq.is_some_and(|f| seq_lt(f, ack));
                let data_acked = newly_acked - usize::from(fin_acked);
                for _ in 0..data_acked.min(s.send_buf.len()) {
                    s.send_buf.pop_front();
                }
                s.snd_una = ack;
                s.dup_acks = 0;
                // RTT sample (Karn: only for non-retransmitted data).
                if let Some((sample_seq, sent_at)) = s.rtt_sample {
                    if seq_le(sample_seq, ack) {
                        s.update_rtt(now.since(sent_at));
                        s.rtt_sample = None;
                    }
                }
                // Congestion window growth.
                if s.cfg.congestion_control {
                    if s.cwnd < s.ssthresh {
                        // Merged-mode GRO decimates ACKs (one per merged
                        // arrival); byte-counting keeps slow start growing
                        // at the same per-byte rate (RFC 3465 style).
                        let inc = if s.cfg.gso == GsoMode::Merged {
                            data_acked as u64
                        } else {
                            (data_acked as u64).min(s.cfg.mss as u64)
                        };
                        s.cwnd += inc;
                    } else {
                        let inc = (s.cfg.mss as u64 * s.cfg.mss as u64 / s.cwnd.max(1)).max(1);
                        s.cwnd += inc;
                    }
                }
                if s.snd_una == s.snd_nxt {
                    s.rtx_deadline = None;
                    s.rtx_count = 0;
                    self.cancel_reqs.push(id.0 as u64);
                } else {
                    s.arm_rtx(now, &mut self.timer_reqs);
                }
                // State advances on FIN ack.
                if fin_acked {
                    match s.state {
                        TcpState::FinWait1 => s.state = TcpState::FinWait2,
                        TcpState::Closing => s.enter_time_wait(now, &mut self.timer_reqs),
                        TcpState::LastAck => {
                            self.events.push((app, TcpEvent::Closed(id)));
                            self.release(id);
                            return;
                        }
                        _ => {}
                    }
                }
            } else if ack == s.snd_una && s.snd_una != s.snd_nxt && seg.data.is_empty() {
                // Duplicate ACK.
                s.dup_acks += 1;
                if s.dup_acks == 3 && s.cfg.congestion_control {
                    let flight = s.snd_nxt.wrapping_sub(s.snd_una) as u64;
                    s.ssthresh = (flight / 2).max(2 * s.cfg.mss as u64);
                    s.cwnd = s.ssthresh;
                    s.rtt_sample = None;
                    s.retransmit_head(&mut self.out);
                    s.arm_rtx(now, &mut self.timer_reqs);
                }
            }
        }

        // --- data ---
        if !seg.data.is_empty() {
            need_ack = true;
            if seg.seq == s.rcv_nxt {
                // In-window check against our advertised window is skipped:
                // the sender honours it, and the sim has no renege path.
                s.recv_buf.extend_from_slice(&seg.data);
                s.rcv_nxt = s.rcv_nxt.wrapping_add(seg.data.len() as u32);
                had_new_data = true;
                // Drain contiguous out-of-order segments.
                while let Some((&q_seq, _)) = s.ooo.first_key_value() {
                    if q_seq != s.rcv_nxt {
                        if seq_lt(q_seq, s.rcv_nxt) {
                            // Stale/overlapping: drop it.
                            s.ooo.pop_first();
                            continue;
                        }
                        break;
                    }
                    let (_, data) = s.ooo.pop_first().expect("peeked");
                    s.rcv_nxt = s.rcv_nxt.wrapping_add(data.len() as u32);
                    s.recv_buf.extend_from_slice(&data);
                }
            } else if seq_lt(s.rcv_nxt, seg.seq) {
                s.ooo.insert(seg.seq, seg.data.clone());
            }
            // else: old retransmission — just re-ACK.
        }

        // --- FIN ---
        if seg.flags.fin {
            let fin_seq = seg.seq.wrapping_add(seg.data.len() as u32);
            s.peer_fin_seq = Some(fin_seq);
        }
        if let Some(fin_seq) = s.peer_fin_seq {
            if s.rcv_nxt == fin_seq {
                s.rcv_nxt = s.rcv_nxt.wrapping_add(1);
                s.peer_fin_seq = None;
                need_ack = true;
                self.events.push((app, TcpEvent::PeerClosed(id)));
                match s.state {
                    TcpState::Established => s.state = TcpState::CloseWait,
                    TcpState::FinWait1 => s.state = TcpState::Closing,
                    TcpState::FinWait2 => s.enter_time_wait(now, &mut self.timer_reqs),
                    _ => {}
                }
            }
        }

        // Try to transmit anything newly permitted (window opened, etc.).
        s.try_output(&mut self.out, now, &mut self.timer_reqs);
        if need_ack {
            let ack = s.make_segment(s.snd_nxt_wire(), TcpFlags::ACK, Bytes::new());
            self.out.push(ack);
        }
        if had_new_data {
            self.events.push((app, TcpEvent::Data(id)));
        }
    }

    fn alloc_sock(&mut self) -> SockId {
        for (i, slot) in self.sockets.iter().enumerate() {
            if slot.is_none() {
                return SockId(i);
            }
        }
        self.sockets.push(None);
        SockId(self.sockets.len() - 1)
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if self.next_ephemeral == u16::MAX { 49152 } else { self.next_ephemeral + 1 };
        p
    }

    fn release(&mut self, id: SockId) {
        if let Some(Some(s)) = self.sockets.get(id.0) {
            let key = (s.local.0, s.local.1, s.remote.0, s.remote.1);
            let remote = s.remote.0;
            self.conn_map.remove(&key);
            if self.last_flow.is_some_and(|(_, hint_id)| hint_id == id) {
                self.last_flow = None;
            }
            if let Some(v) = self.by_remote.get_mut(&remote) {
                if let Some(pos) = v.iter().position(|&x| x == id) {
                    v.swap_remove(pos);
                }
                if v.is_empty() {
                    self.by_remote.remove(&remote);
                }
            }
            self.cancel_reqs.push(id.0 as u64);
        }
        if let Some(slot) = self.sockets.get_mut(id.0) {
            *slot = None;
        }
    }

    /// Number of live sockets (for tests/diagnostics).
    pub fn open_sockets(&self) -> usize {
        self.sockets.iter().filter(|s| s.is_some()).count()
    }
}

impl TcpSocket {
    fn new(
        id: SockId,
        owner_app: usize,
        local: (IpAddr, u16),
        remote: (IpAddr, u16),
        cfg: TcpConfig,
    ) -> Self {
        TcpSocket {
            id,
            owner_app,
            local,
            remote,
            state: TcpState::Closed,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            send_buf: VecDeque::new(),
            snd_wnd: cfg.recv_window,
            cwnd: cfg.init_cwnd_segments as u64 * cfg.mss as u64,
            ssthresh: u64::MAX / 2,
            dup_acks: 0,
            fin_pending: false,
            fin_seq: None,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.rto_initial,
            rtt_sample: None,
            rtx_deadline: None,
            rtx_count: 0,
            opened_at: SimTime::ZERO,
            rcv_nxt: 0,
            recv_buf: Vec::new(),
            ooo: BTreeMap::new(),
            peer_fin_seq: None,
            time_wait_deadline: None,
        }
    }

    fn make_segment(&self, seq: u32, flags: TcpFlags, data: Bytes) -> Packet {
        Packet::new(
            self.local.0,
            self.remote.0,
            Payload::Tcp(TcpSegment {
                src_port: self.local.1,
                dst_port: self.remote.1,
                seq,
                ack: self.rcv_nxt,
                flags,
                window: self.cfg.recv_window,
                data,
                gso_mss: 0,
            }),
        )
    }

    /// The sequence number an empty ACK should carry (past FIN if sent).
    fn snd_nxt_wire(&self) -> u32 {
        self.snd_nxt
    }

    /// Sends as much buffered data as windows allow; sends FIN when the
    /// buffer drains and a close is pending.
    ///
    /// The burst the windows permit is carved out of the send deque in
    /// one allocation and every emitted segment is a zero-copy slice of
    /// it. Under [`GsoMode::Exact`]/[`GsoMode::Merged`] the loop emits
    /// super-segments of up to [`GSO_MAX`] bytes, clamped to a multiple
    /// of the MSS so a capped super ends exactly on a per-MSS frame
    /// boundary — the NIC-layer split then reproduces `Off`-mode wire
    /// frames byte for byte.
    fn try_output(
        &mut self,
        out: &mut Vec<Packet>,
        now: SimTime,
        timer_reqs: &mut Vec<(SimDuration, u64)>,
    ) {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::LastAck | TcpState::Closing
        ) {
            return;
        }
        let mut sent_any = false;
        let flight = self.snd_nxt.wrapping_sub(self.snd_una) as u64;
        let wnd = if self.cfg.congestion_control {
            self.cwnd.min(self.snd_wnd as u64)
        } else {
            self.snd_wnd as u64
        };
        // When a FIN is in flight the buffer offset excludes it.
        let burst_off = (self.snd_nxt.wrapping_sub(self.snd_una) as usize).min(self.send_buf.len());
        let burst_total = (self.send_buf.len() - burst_off)
            .min(wnd.saturating_sub(flight) as usize);
        let burst: Bytes = if burst_total > 0 && self.fin_seq.is_none() {
            Bytes::from(self.copy_send_range(burst_off, burst_total))
        } else {
            Bytes::new()
        };
        let seg_cap = match self.cfg.gso {
            GsoMode::Off => self.cfg.mss,
            _ => (GSO_MAX / self.cfg.mss).max(1) * self.cfg.mss,
        };
        let mut off = 0;
        while off < burst.len() {
            let take = (burst.len() - off).min(seg_cap);
            let seq = self.snd_nxt;
            let mut flags = TcpFlags::ACK;
            // Piggyback FIN on the last segment if closing and this
            // drains the buffer.
            if self.fin_pending && burst_off + off + take == self.send_buf.len() {
                flags.fin = true;
            }
            let mut pkt = self.make_segment(seq, flags, burst.slice(off..off + take));
            if take > self.cfg.mss {
                if let Payload::Tcp(s) = &mut pkt.payload {
                    s.gso_mss = self.cfg.mss as u16;
                }
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
            if flags.fin {
                self.fin_seq = Some(self.snd_nxt);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.fin_pending = false;
            }
            if self.rtt_sample.is_none() {
                // Must match per-MSS emission: the sample is pinned to
                // the end of the burst's FIRST wire frame (+1 if that
                // frame also carries the FIN).
                let first = take.min(self.cfg.mss);
                let fin_on_first = flags.fin && take <= self.cfg.mss;
                self.rtt_sample = Some((
                    seq.wrapping_add(first as u32).wrapping_add(u32::from(fin_on_first)),
                    now,
                ));
            }
            out.push(pkt);
            sent_any = true;
            off += take;
        }
        // Bare FIN (no data left to carry it).
        if self.fin_pending
            && burst_off + burst.len() == self.send_buf.len()
            && self.fin_seq.is_none()
        {
            let seq = self.snd_nxt;
            let pkt = self.make_segment(seq, TcpFlags::FIN_ACK, Bytes::new());
            self.fin_seq = Some(seq);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_pending = false;
            out.push(pkt);
            sent_any = true;
        }
        if sent_any {
            self.arm_rtx(now, timer_reqs);
        }
    }

    /// Retransmits the first unacknowledged segment.
    fn retransmit_head(&mut self, out: &mut Vec<Packet>) {
        let flight_data = self.send_buf.len();
        if flight_data > 0 {
            let take = flight_data.min(self.cfg.mss);
            let chunk = self.copy_send_range(0, take);
            let mut flags = TcpFlags::ACK;
            if self.fin_seq.is_some() && take == flight_data {
                // FIN rides again on the tail retransmission.
                flags.fin = self.snd_nxt.wrapping_sub(self.snd_una) as usize == flight_data + 1;
            }
            let pkt = self.make_segment(self.snd_una, flags, Bytes::from(chunk));
            out.push(pkt);
        } else if self.fin_seq.is_some() {
            let pkt = self.make_segment(self.snd_una, TcpFlags::FIN_ACK, Bytes::new());
            out.push(pkt);
        } else if self.state == TcpState::SynSent {
            let pkt = self.make_segment(self.snd_una, TcpFlags::SYN, Bytes::new());
            out.push(pkt);
        } else if self.state == TcpState::SynReceived {
            let pkt = self.make_segment(self.snd_una, TcpFlags::SYN_ACK, Bytes::new());
            out.push(pkt);
        }
    }

    /// Copies `len` bytes starting at `off` out of the send buffer using
    /// the deque's contiguous slices (a `skip(off)` walk is O(buffer)).
    fn copy_send_range(&self, off: usize, len: usize) -> Vec<u8> {
        let mut chunk = Vec::with_capacity(len);
        let (a, b) = self.send_buf.as_slices();
        if off < a.len() {
            let n = (a.len() - off).min(len);
            chunk.extend_from_slice(&a[off..off + n]);
            chunk.extend_from_slice(&b[..len - n]);
        } else {
            let off = off - a.len();
            chunk.extend_from_slice(&b[off..off + len]);
        }
        chunk
    }

    fn arm_rtx(&mut self, now: SimTime, timer_reqs: &mut Vec<(SimDuration, u64)>) {
        let deadline = now + self.rto;
        self.rtx_deadline = Some(deadline);
        timer_reqs.push((self.rto, self.id.0 as u64));
    }

    fn enter_time_wait(&mut self, now: SimTime, timer_reqs: &mut Vec<(SimDuration, u64)>) {
        self.state = TcpState::TimeWait;
        let linger = SimDuration::from_millis(500); // 2*MSL shortened for sims
        self.time_wait_deadline = Some(now + linger);
        self.rtx_deadline = None;
        timer_reqs.push((linger, self.id.0 as u64));
    }

    /// RFC 6298 SRTT/RTTVAR update.
    fn update_rtt(&mut self, sample: SimDuration) {
        let r = sample.as_nanos() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto_ns = (self.srtt.unwrap() + 4.0 * self.rttvar) as u64;
        self.rto = SimDuration::from_nanos(rto_ns).max(self.cfg.rto_min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::v4;

    fn addr_a() -> IpAddr {
        v4(10, 0, 0, 1)
    }
    fn addr_b() -> IpAddr {
        v4(10, 0, 0, 2)
    }

    /// Shuttles packets between two TCP layers with zero latency,
    /// returning the number of packets moved.
    fn pump(a: &mut TcpLayer, b: &mut TcpLayer, now: SimTime) -> usize {
        let mut moved = 0;
        loop {
            let from_a = std::mem::take(&mut a.out);
            let from_b = std::mem::take(&mut b.out);
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            moved += from_a.len() + from_b.len();
            for p in from_a {
                if let Payload::Tcp(seg) = p.payload {
                    b.segment_arrives(p.src, p.dst, seg, now);
                }
            }
            for p in from_b {
                if let Payload::Tcp(seg) = p.payload {
                    a.segment_arrives(p.src, p.dst, seg, now);
                }
            }
        }
        moved
    }

    fn connected_pair() -> (TcpLayer, TcpLayer, SockId, SockId) {
        connected_pair_with(TcpConfig::default())
    }

    fn connected_pair_with(cfg: TcpConfig) -> (TcpLayer, TcpLayer, SockId, SockId) {
        let mut a = TcpLayer::new(cfg);
        let mut b = TcpLayer::new(cfg);
        b.listen(80, 0);
        let ca = a.connect(addr_a(), (addr_b(), 80), 0, 1000, SimTime::ZERO);
        pump(&mut a, &mut b, SimTime::ZERO);
        let sb = b
            .events
            .iter()
            .find_map(|(_, e)| match e {
                TcpEvent::Accepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .expect("accepted");
        assert!(a.events.iter().any(|(_, e)| *e == TcpEvent::Connected(ca)));
        a.events.clear();
        b.events.clear();
        (a, b, ca, sb)
    }

    #[test]
    fn three_way_handshake() {
        let (_a, b, _ca, sb) = connected_pair();
        assert!(b.is_open(sb));
    }

    #[test]
    fn data_transfer_small() {
        let (mut a, mut b, ca, sb) = connected_pair();
        a.send(ca, b"hello tcp", SimTime(1));
        pump(&mut a, &mut b, SimTime(1));
        assert_eq!(b.recv(sb), b"hello tcp");
        assert!(b.events.iter().any(|(_, e)| *e == TcpEvent::Data(sb)));
    }

    #[test]
    fn data_transfer_large_multi_segment() {
        let (mut a, mut b, ca, sb) = connected_pair();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        a.send(ca, &data, SimTime(1));
        // Repeated pumping simulates many RTTs for window growth.
        for t in 2..200 {
            pump(&mut a, &mut b, SimTime(t));
        }
        let got = b.recv(sb);
        assert_eq!(got.len(), data.len());
        assert_eq!(got, data);
    }

    #[test]
    fn bidirectional_transfer() {
        let (mut a, mut b, ca, sb) = connected_pair();
        a.send(ca, b"ping", SimTime(1));
        b.send(sb, b"pong", SimTime(1));
        pump(&mut a, &mut b, SimTime(1));
        assert_eq!(b.recv(sb), b"ping");
        assert_eq!(a.recv(ca), b"pong");
    }

    #[test]
    fn connect_to_closed_port_fails() {
        let mut a = TcpLayer::new(TcpConfig::default());
        let mut b = TcpLayer::new(TcpConfig::default());
        let ca = a.connect(addr_a(), (addr_b(), 81), 0, 5, SimTime::ZERO);
        pump(&mut a, &mut b, SimTime::ZERO);
        assert!(a.events.iter().any(|(_, e)| *e == TcpEvent::ConnectFailed(ca)));
        assert!(!a.is_open(ca));
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut a, mut b, ca, sb) = connected_pair();
        a.send(ca, b"bye", SimTime(1));
        a.close(ca, SimTime(1));
        pump(&mut a, &mut b, SimTime(1));
        assert_eq!(b.recv(sb), b"bye");
        assert!(b.events.iter().any(|(_, e)| *e == TcpEvent::PeerClosed(sb)));
        b.close(sb, SimTime(2));
        pump(&mut a, &mut b, SimTime(2));
        assert!(a.events.iter().any(|(_, e)| *e == TcpEvent::PeerClosed(ca)));
        // b's socket fully closes once its FIN is acked.
        assert!(b.events.iter().any(|(_, e)| *e == TcpEvent::Closed(sb)));
        assert!(!b.is_open(sb));
    }

    #[test]
    fn retransmission_recovers_lost_segment() {
        let (mut a, mut b, ca, sb) = connected_pair();
        a.send(ca, b"lost in the mail", SimTime(1));
        // Drop the data packet.
        let dropped = std::mem::take(&mut a.out);
        assert!(!dropped.is_empty());
        // Fire the retransmission timer.
        let (delay, token) = *a.timer_reqs.last().expect("rtx armed");
        let fire_at = SimTime(1) + delay;
        a.on_timer(token, fire_at);
        assert!(!a.out.is_empty(), "retransmission emitted");
        pump(&mut a, &mut b, fire_at);
        assert_eq!(b.recv(sb), b"lost in the mail");
    }

    #[test]
    fn syn_retry_exhaustion_reports_failure() {
        let mut a = TcpLayer::new(TcpConfig { syn_retries: 2, ..TcpConfig::default() });
        let ca = a.connect(addr_a(), (addr_b(), 80), 0, 1, SimTime::ZERO);
        a.out.clear();
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            if let Some((delay, token)) = a.timer_reqs.pop() {
                now += delay;
                a.on_timer(token, now);
            }
        }
        assert!(a.events.iter().any(|(_, e)| *e == TcpEvent::ConnectFailed(ca)));
    }

    #[test]
    fn out_of_order_segments_reassembled() {
        let (mut a, mut b, ca, sb) =
            connected_pair_with(TcpConfig { gso: GsoMode::Off, ..TcpConfig::default() });
        a.send(ca, &vec![7u8; 4000], SimTime(1)); // 3 segments at mss 1448
        let mut pkts = std::mem::take(&mut a.out);
        assert!(pkts.len() >= 2);
        pkts.reverse(); // deliver out of order
        for p in pkts {
            if let Payload::Tcp(seg) = p.payload {
                b.segment_arrives(p.src, p.dst, seg, SimTime(1));
            }
        }
        pump(&mut a, &mut b, SimTime(2));
        assert_eq!(b.recv(sb).len(), 4000);
    }

    #[test]
    fn fast_retransmit_on_triple_dupack() {
        let cfg = TcpConfig { gso: GsoMode::Off, ..TcpConfig::default() };
        let (mut a, mut b, ca, sb) = connected_pair_with(cfg);
        let data: Vec<u8> = vec![1u8; cfg.mss * 5];
        a.send(ca, &data, SimTime(1));
        let mut pkts = std::mem::take(&mut a.out);
        assert!(pkts.len() >= 4, "got {}", pkts.len());
        // Drop the first data segment; deliver the rest → dupacks.
        pkts.remove(0);
        for p in pkts {
            if let Payload::Tcp(seg) = p.payload {
                b.segment_arrives(p.src, p.dst, seg, SimTime(1));
            }
        }
        // Feed the dupacks back to a.
        let acks = std::mem::take(&mut b.out);
        assert!(acks.len() >= 3);
        for p in acks {
            if let Payload::Tcp(seg) = p.payload {
                a.segment_arrives(p.src, p.dst, seg, SimTime(2));
            }
        }
        // a should have fast-retransmitted the head segment.
        assert!(
            !a.out.is_empty(),
            "fast retransmit after 3 dupacks should emit the missing segment"
        );
        pump(&mut a, &mut b, SimTime(3));
        assert_eq!(b.recv(sb).len(), data.len());
    }

    #[test]
    fn window_limits_inflight_bytes() {
        let cfg = TcpConfig { recv_window: 4096, ..TcpConfig::default() };
        let mut a = TcpLayer::new(cfg);
        let mut b = TcpLayer::new(cfg);
        b.listen(80, 0);
        let ca = a.connect(addr_a(), (addr_b(), 80), 0, 1, SimTime::ZERO);
        pump(&mut a, &mut b, SimTime::ZERO);
        a.events.clear();
        a.send(ca, &vec![0u8; 100_000], SimTime(1));
        let sent: usize = a
            .out
            .iter()
            .map(|p| match &p.payload {
                Payload::Tcp(s) => s.data.len(),
                _ => 0,
            })
            .sum();
        assert!(sent <= 4096, "inflight {sent} exceeds peer window");
    }

    #[test]
    fn rst_on_established_reports_reset() {
        let (mut a, mut b, ca, sb) = connected_pair();
        b.abort(sb);
        pump(&mut a, &mut b, SimTime(1));
        assert!(a.events.iter().any(|(_, e)| *e == TcpEvent::Reset(ca)));
        assert!(!a.is_open(ca));
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let mut s = TcpSocket::new(
            SockId(0),
            0,
            (addr_a(), 1),
            (addr_b(), 2),
            TcpConfig::default(),
        );
        s.update_rtt(SimDuration::from_millis(100));
        // First sample: RTO = srtt + 4*rttvar = 100 + 200 = 300ms.
        assert_eq!(s.rto, SimDuration::from_millis(300));
        s.update_rtt(SimDuration::from_millis(100));
        assert!(s.rto >= TcpConfig::default().rto_min);
        assert!(s.rto < SimDuration::from_millis(300));
    }

    #[test]
    fn seq_comparisons_wrap() {
        assert!(seq_lt(u32::MAX - 1, 5));
        assert!(!seq_lt(5, u32::MAX - 1));
        assert!(seq_le(7, 7));
    }

    #[test]
    fn gso_emits_super_segments_that_split_to_off_mode_frames() {
        let cfg = TcpConfig::default(); // gso: Exact
        let (mut a, _b, ca, _sb) = connected_pair_with(cfg);
        let (mut a2, _b2, ca2, _sb2) =
            connected_pair_with(TcpConfig { gso: GsoMode::Off, ..cfg });
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        a.send(ca, &data, SimTime(1));
        a2.send(ca2, &data, SimTime(1));
        // Exact mode sends fewer packets...
        assert!(a.out.len() < a2.out.len(), "{} vs {}", a.out.len(), a2.out.len());
        // ...but splitting the supers reproduces the Off-mode frames exactly.
        let mut frames = Vec::new();
        for p in &a.out {
            let Payload::Tcp(seg) = &p.payload else { panic!("tcp") };
            if seg.gso_mss > 0 {
                frames.extend(crate::packet::split_gso(seg));
            } else {
                frames.push(seg.clone());
            }
        }
        let off_frames: Vec<_> = a2
            .out
            .iter()
            .map(|p| match &p.payload {
                Payload::Tcp(seg) => seg.clone(),
                _ => panic!("tcp"),
            })
            .collect();
        assert_eq!(frames.len(), off_frames.len());
        for (f, o) in frames.iter().zip(&off_frames) {
            assert_eq!(f.seq, o.seq);
            assert_eq!(f.data, o.data);
            assert_eq!(f.flags, o.flags);
            assert_eq!(f.ack, o.ack);
            assert_eq!(f.window, o.window);
            assert_eq!(f.gso_mss, 0);
        }
    }

    #[test]
    fn gso_receiver_accepts_super_segments_directly() {
        // Layer-level pumping passes supers through unsplit (Merged-style
        // arrival): streams must still be byte-identical.
        let (mut a, mut b, ca, sb) = connected_pair();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        a.send(ca, &data, SimTime(1));
        for t in 2..200 {
            pump(&mut a, &mut b, SimTime(t));
        }
        assert_eq!(b.recv(sb), data);
    }

    #[test]
    fn abort_to_uses_remote_index() {
        let mut a = TcpLayer::new(TcpConfig::default());
        let c1 = a.connect(addr_a(), (addr_b(), 80), 0, 1, SimTime::ZERO);
        let c2 = a.connect(addr_a(), (addr_b(), 81), 0, 2, SimTime::ZERO);
        let c3 = a.connect(addr_a(), (v4(10, 0, 0, 3), 80), 0, 3, SimTime::ZERO);
        a.abort_to(addr_b());
        assert!(!a.is_open(c1));
        assert!(!a.is_open(c2));
        assert!(a.is_open(c3), "other remotes untouched");
        // Events fire in socket-index order.
        let ids: Vec<_> = a
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                TcpEvent::ConnectFailed(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![c1, c2]);
    }
}
