//! Address-family helpers and the special-purpose ranges the stack must
//! recognize.
//!
//! Three IANA allocations matter to the host stack's demultiplexing:
//!
//! - **ORCHID** `2001:10::/28` — Host Identity Tags live here (RFC 4843).
//!   A destination in this range is an *identity*, not a locator, and is
//!   handed to the layer-3.5 shim.
//! - **LSI** `1.0.0.0/8` — Local-Scope Identifiers, the IPv4 aliases HIP
//!   hands to legacy applications (RFC 5338 uses a locally scoped range;
//!   HIPL uses 1/8).
//! - **Teredo** `2001::/32` — IPv6 addresses reachable by UDP tunneling
//!   (RFC 4380), with the server IPv4, obfuscated client port and
//!   obfuscated client IPv4 embedded in the address.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// True if `addr` is an ORCHID (a HIT).
pub fn is_hit(addr: &IpAddr) -> bool {
    match addr {
        IpAddr::V6(v6) => {
            let seg = v6.segments();
            seg[0] == 0x2001 && (seg[1] & 0xfff0) == 0x0010
        }
        IpAddr::V4(_) => false,
    }
}

/// True if `addr` is a Local-Scope Identifier (1.0.0.0/8).
pub fn is_lsi(addr: &IpAddr) -> bool {
    match addr {
        IpAddr::V4(v4) => v4.octets()[0] == 1,
        IpAddr::V6(_) => false,
    }
}

/// True if `addr` is an identity (HIT or LSI) rather than a locator.
pub fn is_identity(addr: &IpAddr) -> bool {
    is_hit(addr) || is_lsi(addr)
}

/// True if `addr` is in the Teredo prefix 2001::/32.
pub fn is_teredo(addr: &IpAddr) -> bool {
    match addr {
        IpAddr::V6(v6) => {
            let seg = v6.segments();
            seg[0] == 0x2001 && seg[1] == 0x0000
        }
        IpAddr::V4(_) => false,
    }
}

/// Constructs a Teredo IPv6 address per RFC 4380 §4: the server IPv4 in
/// bits 32..64, flags, then the client's external port and IPv4, both
/// bit-inverted ("obfuscated").
pub fn teredo_address(server: Ipv4Addr, client_external: Ipv4Addr, client_port: u16) -> Ipv6Addr {
    let s = server.octets();
    let c = client_external.octets();
    let obfuscated_port = !client_port;
    let obf = [!c[0], !c[1], !c[2], !c[3]];
    Ipv6Addr::new(
        0x2001,
        0x0000,
        u16::from_be_bytes([s[0], s[1]]),
        u16::from_be_bytes([s[2], s[3]]),
        0x0000, // flags: cone
        obfuscated_port,
        u16::from_be_bytes([obf[0], obf[1]]),
        u16::from_be_bytes([obf[2], obf[3]]),
    )
}

/// Recovers `(server, client_external, client_port)` from a Teredo
/// address built by [`teredo_address`]. Returns `None` for non-Teredo
/// input.
pub fn teredo_decode(addr: &Ipv6Addr) -> Option<(Ipv4Addr, Ipv4Addr, u16)> {
    if !is_teredo(&IpAddr::V6(*addr)) {
        return None;
    }
    let seg = addr.segments();
    let server = Ipv4Addr::from(((seg[2] as u32) << 16) | seg[3] as u32);
    let port = !seg[5];
    let client = Ipv4Addr::from(!(((seg[6] as u32) << 16) | seg[7] as u32));
    Some((server, client, port))
}

/// Picks the address in `candidates` that best matches talking to `dst`:
/// same family, and identity-ness must match (HIT↔HIT, LSI↔LSI).
pub fn select_source(candidates: &[IpAddr], dst: &IpAddr) -> Option<IpAddr> {
    // Exact class match first.
    candidates
        .iter()
        .find(|a| {
            a.is_ipv4() == dst.is_ipv4()
                && is_hit(a) == is_hit(dst)
                && is_lsi(a) == is_lsi(dst)
        })
        .or_else(|| candidates.iter().find(|a| a.is_ipv4() == dst.is_ipv4()))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{v4, v6};

    #[test]
    fn hit_detection() {
        assert!(is_hit(&v6([0x2001, 0x0010, 0, 0, 0, 0, 0, 1])));
        assert!(is_hit(&v6([0x2001, 0x001f, 0xffff, 0, 0, 0, 0, 1])));
        assert!(!is_hit(&v6([0x2001, 0x0020, 0, 0, 0, 0, 0, 1])));
        assert!(!is_hit(&v6([0x2001, 0, 0, 0, 0, 0, 0, 1]))); // teredo, not hit
        assert!(!is_hit(&v4(1, 2, 3, 4)));
    }

    #[test]
    fn lsi_detection() {
        assert!(is_lsi(&v4(1, 0, 0, 1)));
        assert!(is_lsi(&v4(1, 255, 3, 9)));
        assert!(!is_lsi(&v4(10, 0, 0, 1)));
        assert!(!is_lsi(&v6([0x2001, 0x10, 0, 0, 0, 0, 0, 1])));
    }

    #[test]
    fn teredo_round_trip() {
        let server = Ipv4Addr::new(192, 0, 2, 1);
        let client = Ipv4Addr::new(203, 0, 113, 77);
        let addr = teredo_address(server, client, 40000);
        assert!(is_teredo(&IpAddr::V6(addr)));
        assert!(!is_hit(&IpAddr::V6(addr)));
        let (s, c, p) = teredo_decode(&addr).unwrap();
        assert_eq!(s, server);
        assert_eq!(c, client);
        assert_eq!(p, 40000);
    }

    #[test]
    fn teredo_decode_rejects_non_teredo() {
        let hit = match v6([0x2001, 0x10, 0, 0, 0, 0, 0, 5]) {
            IpAddr::V6(v) => v,
            _ => unreachable!(),
        };
        assert!(teredo_decode(&hit).is_none());
    }

    #[test]
    fn source_selection_prefers_matching_class() {
        let hit = v6([0x2001, 0x0010, 0, 0, 0, 0, 0, 1]);
        let lsi = v4(1, 0, 0, 1);
        let ip4 = v4(10, 0, 0, 1);
        let ip6 = v6([0xfd00, 0, 0, 0, 0, 0, 0, 1]);
        let candidates = [hit, lsi, ip4, ip6];
        assert_eq!(select_source(&candidates, &v6([0x2001, 0x0010, 0, 0, 0, 0, 0, 9])), Some(hit));
        assert_eq!(select_source(&candidates, &v4(1, 0, 0, 9)), Some(lsi));
        assert_eq!(select_source(&candidates, &v4(10, 0, 0, 9)), Some(ip4));
        assert_eq!(select_source(&candidates, &v6([0xfd00, 0, 0, 0, 0, 0, 0, 9])), Some(ip6));
    }

    #[test]
    fn source_selection_falls_back_to_family() {
        let ip4 = v4(10, 0, 0, 1);
        // No LSI available: any v4 will do for an LSI destination.
        assert_eq!(select_source(&[ip4], &v4(1, 0, 0, 9)), Some(ip4));
        assert_eq!(select_source(&[ip4], &v6([0xfd00, 0, 0, 0, 0, 0, 0, 1])), None);
    }
}
