//! Virtual time.
//!
//! The simulator runs on a single `u64` nanosecond clock. All protocol
//! timing (link latency, CPU service time, retransmission timeouts) is
//! expressed in [`SimDuration`] and accumulated into [`SimTime`], so a
//! run is bit-for-bit reproducible regardless of host wall-clock.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds; panics on negative).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// From fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: Self) -> Self {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl Mul<u32> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u32) -> SimDuration {
        SimDuration(self.0 * u64::from(k))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_micros(1);
        assert_eq!(t2.since(t), SimDuration::from_micros(1));
        assert_eq!(t.since(t2), SimDuration::ZERO); // saturates
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis_f64(), 500.0);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimTime(1_500_000_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
