//! Point-to-point links.
//!
//! A link connects two node interfaces with configurable latency,
//! bandwidth, random loss and jitter. Serialization delay is charged per
//! direction against a `busy_until` watermark, which models an output
//! queue: back-to-back packets queue behind each other, so TCP sees a
//! genuine bandwidth bottleneck rather than an abstract rate cap.

use crate::time::{SimDuration, SimTime};

/// Identifies a link within the simulation world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub usize);

/// Identifies a node within the simulation world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One endpoint of a link: a node and its interface index on that node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// The attached node.
    pub node: NodeId,
    /// The interface index on that node.
    pub iface: usize,
}

/// Link configuration.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bits per second each direction can carry.
    pub bandwidth_bps: u64,
    /// Probability in [0, 1) that a packet is silently dropped.
    pub loss: f64,
    /// Maximum uniform random extra delay added per packet.
    pub jitter: SimDuration,
    /// Output queue capacity in bytes per direction; packets that would
    /// queue beyond this are dropped (tail drop). `usize::MAX` = infinite.
    pub queue_bytes: usize,
}

impl LinkParams {
    /// A typical intra-datacenter link: 1 Gbit/s, 250 µs one-way.
    pub fn datacenter() -> Self {
        LinkParams {
            latency: SimDuration::from_micros(250),
            bandwidth_bps: 1_000_000_000,
            loss: 0.0,
            jitter: SimDuration::ZERO,
            queue_bytes: 512 * 1024,
        }
    }

    /// A WAN link between data centers: 100 Mbit/s, 10 ms one-way.
    pub fn wan() -> Self {
        LinkParams {
            latency: SimDuration::from_millis(10),
            bandwidth_bps: 100_000_000,
            loss: 0.0,
            jitter: SimDuration::ZERO,
            queue_bytes: 1024 * 1024,
        }
    }

    /// A consumer access link: 20 Mbit/s, 15 ms one-way.
    pub fn access() -> Self {
        LinkParams {
            latency: SimDuration::from_millis(15),
            bandwidth_bps: 20_000_000,
            loss: 0.0,
            jitter: SimDuration::ZERO,
            queue_bytes: 256 * 1024,
        }
    }

    /// Sets the loss probability (builder style).
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss));
        self.loss = loss;
        self
    }

    /// Sets the jitter bound (builder style).
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets latency (builder style).
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Sets bandwidth (builder style).
    pub fn with_bandwidth(mut self, bps: u64) -> Self {
        assert!(bps > 0);
        self.bandwidth_bps = bps;
        self
    }
}

/// A bidirectional link instance with per-direction queue state.
#[derive(Clone, Debug)]
pub struct Link {
    /// This link's id in the world registry.
    pub id: LinkId,
    /// One endpoint.
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Latency/bandwidth/loss configuration.
    pub params: LinkParams,
    /// `busy_until[0]` covers a→b, `[1]` covers b→a.
    busy_until: [SimTime; 2],
    /// Administratively down (an explicit `LinkDown` fault episode).
    admin_down: bool,
    /// Down because a `Partition` fault separates its endpoints. Kept
    /// separate from `admin_down` so `LinkUp` and `Heal` each restore
    /// only the state their counterpart episode set.
    partitioned: bool,
    /// Extra loss probability during a `LossBurst` episode (0 = none);
    /// the effective loss is `max(params.loss, burst_loss)`.
    burst_loss: f64,
    /// Extra one-way delay during a `LatencySpike` episode.
    extra_latency: SimDuration,
}

/// Why a link refused a packet (drives the trace `drop` reason, so
/// `jq`-based triage can split injected faults from organic loss).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// Random loss from `LinkParams::loss` (organic).
    Loss,
    /// Loss from an injected `LossBurst` episode.
    Burst,
    /// Output queue tail drop (organic congestion).
    QueueOverflow,
    /// The link is administratively down (`LinkDown` episode).
    LinkDown,
    /// The link is severed by a `Partition` episode.
    Partition,
}

impl DropCause {
    /// The trace `drop` reason string for this cause.
    pub fn reason(self) -> &'static str {
        match self {
            DropCause::Loss => "link drop",
            DropCause::Burst => "fault.loss_burst",
            DropCause::QueueOverflow => "queue overflow",
            DropCause::LinkDown => "fault.link_down",
            DropCause::Partition => "fault.partition",
        }
    }
}

/// The outcome of offering a packet to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxResult {
    /// Packet will arrive at the far endpoint at this time.
    Deliver {
        /// The receiving endpoint.
        to: Endpoint,
        /// Arrival time.
        at: SimTime,
    },
    /// Packet was dropped.
    Dropped {
        /// Why the link refused it.
        cause: DropCause,
    },
}

impl Link {
    /// Creates a link between two endpoints.
    pub fn new(id: LinkId, a: Endpoint, b: Endpoint, params: LinkParams) -> Self {
        Link {
            id,
            a,
            b,
            params,
            busy_until: [SimTime::ZERO; 2],
            admin_down: false,
            partitioned: false,
            burst_loss: 0.0,
            extra_latency: SimDuration::ZERO,
        }
    }

    /// Sets/clears the administrative down flag (`LinkDown`/`LinkUp`).
    pub fn set_admin_down(&mut self, down: bool) {
        self.admin_down = down;
    }

    /// Sets/clears the partition flag (`Partition`/`Heal`).
    pub fn set_partitioned(&mut self, cut: bool) {
        self.partitioned = cut;
    }

    /// Sets the burst-loss override (0 clears it).
    pub fn set_burst_loss(&mut self, loss: f64) {
        assert!((0.0..1.0).contains(&loss));
        self.burst_loss = loss;
    }

    /// Sets the latency-spike overlay (zero clears it).
    pub fn set_extra_latency(&mut self, extra: SimDuration) {
        self.extra_latency = extra;
    }

    /// True while either down flag is set.
    pub fn is_down(&self) -> bool {
        self.admin_down || self.partitioned
    }

    /// True while any fault overlay (down flag, burst loss, latency
    /// spike) is active — used to assert that a healed plan leaks nothing.
    pub fn is_faulted(&self) -> bool {
        self.is_down() || self.burst_loss > 0.0 || self.extra_latency > SimDuration::ZERO
    }

    /// The endpoint opposite `node`, if `node` terminates this link.
    pub fn peer_of(&self, node: NodeId) -> Option<Endpoint> {
        if self.a.node == node {
            Some(self.b)
        } else if self.b.node == node {
            Some(self.a)
        } else {
            None
        }
    }

    /// Offers a packet of `wire_len` bytes for transmission from `from`.
    ///
    /// `loss_draw` and `jitter_draw` are uniform samples in [0,1) supplied
    /// by the caller so the link itself stays RNG-free (determinism is
    /// owned by the simulator's single seeded RNG).
    pub fn transmit(
        &mut self,
        from: NodeId,
        wire_len: usize,
        now: SimTime,
        loss_draw: f64,
        jitter_draw: f64,
    ) -> TxResult {
        let (dir, to) = if self.a.node == from {
            (0, self.b)
        } else if self.b.node == from {
            (1, self.a)
        } else {
            panic!("node {from:?} is not an endpoint of link {:?}", self.id);
        };
        // Fault checks happen after the caller's RNG draws, so a fault
        // episode never changes the draw sequence of the rest of the run.
        if self.admin_down {
            return TxResult::Dropped { cause: DropCause::LinkDown };
        }
        if self.partitioned {
            return TxResult::Dropped { cause: DropCause::Partition };
        }
        if loss_draw < self.params.loss {
            return TxResult::Dropped { cause: DropCause::Loss };
        }
        if loss_draw < self.burst_loss {
            return TxResult::Dropped { cause: DropCause::Burst };
        }
        let ser_ns = (wire_len as u64 * 8).saturating_mul(1_000_000_000) / self.params.bandwidth_bps;
        let ser = SimDuration::from_nanos(ser_ns.max(1));
        let start = self.busy_until[dir].max(now);
        // Tail drop: how many bytes are already queued ahead of us?
        let backlog_ns = start.since(now).as_nanos();
        let backlog_bytes = (backlog_ns.saturating_mul(self.params.bandwidth_bps) / 8 / 1_000_000_000) as usize;
        if backlog_bytes > self.params.queue_bytes {
            return TxResult::Dropped { cause: DropCause::QueueOverflow };
        }
        self.busy_until[dir] = start + ser;
        let jitter =
            SimDuration::from_nanos((jitter_draw * self.params.jitter.as_nanos() as f64) as u64);
        TxResult::Deliver { to, at: self.busy_until[dir] + self.params.latency + self.extra_latency + jitter }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(
            LinkId(0),
            Endpoint { node: NodeId(0), iface: 0 },
            Endpoint { node: NodeId(1), iface: 0 },
            LinkParams {
                latency: SimDuration::from_millis(1),
                bandwidth_bps: 8_000_000, // 1 byte/µs
                loss: 0.0,
                jitter: SimDuration::ZERO,
                queue_bytes: 10_000,
            },
        )
    }

    #[test]
    fn delivery_time_includes_serialization_and_latency() {
        let mut l = link();
        let r = l.transmit(NodeId(0), 1000, SimTime::ZERO, 0.9, 0.0);
        // 1000 bytes at 1 byte/µs = 1 ms serialization + 1 ms latency.
        match r {
            TxResult::Deliver { to, at } => {
                assert_eq!(to.node, NodeId(1));
                assert_eq!(at, SimTime(2_000_000));
            }
            _ => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = link();
        let t1 = match l.transmit(NodeId(0), 1000, SimTime::ZERO, 0.9, 0.0) {
            TxResult::Deliver { at, .. } => at,
            _ => panic!(),
        };
        let t2 = match l.transmit(NodeId(0), 1000, SimTime::ZERO, 0.9, 0.0) {
            TxResult::Deliver { at, .. } => at,
            _ => panic!(),
        };
        assert_eq!(t2.since(t1), SimDuration::from_millis(1), "second serializes after first");
    }

    #[test]
    fn directions_independent() {
        let mut l = link();
        let a = match l.transmit(NodeId(0), 1000, SimTime::ZERO, 0.9, 0.0) {
            TxResult::Deliver { at, .. } => at,
            _ => panic!(),
        };
        let b = match l.transmit(NodeId(1), 1000, SimTime::ZERO, 0.9, 0.0) {
            TxResult::Deliver { at, .. } => at,
            _ => panic!(),
        };
        assert_eq!(a, b, "reverse direction does not queue behind forward");
    }

    #[test]
    fn loss_draw_respected() {
        let mut l = link();
        l.params.loss = 0.5;
        assert_eq!(
            l.transmit(NodeId(0), 10, SimTime::ZERO, 0.49, 0.0),
            TxResult::Dropped { cause: DropCause::Loss }
        );
        assert!(matches!(
            l.transmit(NodeId(0), 10, SimTime::ZERO, 0.51, 0.0),
            TxResult::Deliver { .. }
        ));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = link();
        l.params.queue_bytes = 1500;
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.transmit(NodeId(0), 1000, SimTime::ZERO, 0.9, 0.0) {
                TxResult::Deliver { .. } => delivered += 1,
                TxResult::Dropped { cause } => {
                    assert_eq!(cause, DropCause::QueueOverflow);
                    dropped += 1;
                }
            }
        }
        assert!(delivered >= 2 && dropped > 0, "delivered={delivered} dropped={dropped}");
    }

    #[test]
    fn fault_overlays_drop_and_restore() {
        let mut l = link();
        l.set_admin_down(true);
        assert_eq!(
            l.transmit(NodeId(0), 10, SimTime::ZERO, 0.9, 0.0),
            TxResult::Dropped { cause: DropCause::LinkDown }
        );
        // Partition is tracked independently: clearing admin-down while
        // partitioned keeps the link dead, and vice versa.
        l.set_partitioned(true);
        l.set_admin_down(false);
        assert_eq!(
            l.transmit(NodeId(0), 10, SimTime::ZERO, 0.9, 0.0),
            TxResult::Dropped { cause: DropCause::Partition }
        );
        l.set_partitioned(false);
        assert!(!l.is_faulted());
        // Burst loss on top of zero organic loss.
        l.set_burst_loss(0.8);
        assert_eq!(
            l.transmit(NodeId(0), 10, SimTime::ZERO, 0.5, 0.0),
            TxResult::Dropped { cause: DropCause::Burst }
        );
        assert!(matches!(
            l.transmit(NodeId(0), 10, SimTime::ZERO, 0.9, 0.0),
            TxResult::Deliver { .. }
        ));
        l.set_burst_loss(0.0);
        assert!(!l.is_faulted());
    }

    #[test]
    fn latency_spike_adds_delay() {
        let mut l = link();
        l.set_extra_latency(SimDuration::from_millis(5));
        match l.transmit(NodeId(0), 1000, SimTime::ZERO, 0.9, 0.0) {
            // 1 ms serialization + 1 ms latency + 5 ms spike.
            TxResult::Deliver { at, .. } => assert_eq!(at, SimTime(7_000_000)),
            _ => panic!("dropped"),
        }
        l.set_extra_latency(SimDuration::ZERO);
        assert!(!l.is_faulted());
    }

    #[test]
    fn peer_of() {
        let l = link();
        assert_eq!(l.peer_of(NodeId(0)).unwrap().node, NodeId(1));
        assert_eq!(l.peer_of(NodeId(1)).unwrap().node, NodeId(0));
        assert!(l.peer_of(NodeId(7)).is_none());
    }

    #[test]
    #[should_panic]
    fn transmit_from_non_endpoint_panics() {
        let mut l = link();
        let _ = l.transmit(NodeId(9), 10, SimTime::ZERO, 0.9, 0.0);
    }
}
