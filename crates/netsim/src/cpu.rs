//! A simple multi-core CPU service model.
//!
//! Each VM/host owns a [`CpuModel`]: a set of cores with busy-until
//! watermarks and a speed factor expressed in *compute units* (matching
//! EC2 flavors: a micro instance bursts "up to 2 EC2 compute units", a
//! large instance has 4 spread over 2 virtual cores). Work items are
//! charged to the earliest-available core; the returned delay is the
//! queueing + service time. This is what makes throughput saturate as
//! concurrency grows in the Figure 2 reproduction: crypto work occupies
//! cores, requests queue, and the knee appears.

use crate::time::{SimDuration, SimTime};

/// CPU burst-credit state (the t1.micro token bucket: short bursts at
/// full speed, sustained load throttled to a baseline — the mechanism
/// behind EC2's "up to 2 EC2 compute units").
#[derive(Clone, Copy, Debug)]
struct Burst {
    /// Baseline speed once credits are exhausted.
    sustained_speed: f64,
    /// Credits (core-seconds of burst-speed execution) currently banked.
    credits: f64,
    /// Credit cap.
    max_credits: f64,
    /// Credits earned per second of wall time.
    accrual_per_sec: f64,
    /// Last time the bucket was updated.
    updated: SimTime,
}

/// Per-host CPU state.
#[derive(Clone, Debug)]
pub struct CpuModel {
    cores: Vec<SimTime>,
    /// Speed multiplier: work completes in `work / speed` core-time.
    speed: f64,
    /// Total busy core-time accumulated (for utilization reporting).
    busy_accum: SimDuration,
    burst: Option<Burst>,
}

impl CpuModel {
    /// `cores` cores, each running at `speed` compute units.
    pub fn new(cores: usize, speed: f64) -> Self {
        assert!(cores > 0 && speed > 0.0);
        CpuModel { cores: vec![SimTime::ZERO; cores], speed, busy_accum: SimDuration::ZERO, burst: None }
    }

    /// A burstable CPU: runs at `burst_speed` while credits last, then
    /// throttles to `sustained_speed`. Credits accrue at
    /// `accrual_per_sec` core-seconds per second up to `max_credits`.
    pub fn burstable(
        cores: usize,
        burst_speed: f64,
        sustained_speed: f64,
        accrual_per_sec: f64,
        initial_credits: f64,
    ) -> Self {
        assert!(sustained_speed > 0.0 && burst_speed >= sustained_speed);
        let mut cpu = CpuModel::new(cores, burst_speed);
        cpu.burst = Some(Burst {
            sustained_speed,
            credits: initial_credits,
            max_credits: initial_credits.max(1.0),
            accrual_per_sec,
            updated: SimTime::ZERO,
        });
        cpu
    }

    /// A generous default for infrastructure nodes whose CPU is not the
    /// experiment's subject (routers, load generators).
    pub fn infinite() -> Self {
        CpuModel::new(64, 1000.0)
    }

    /// Remaining burst credits (diagnostics; `None` for fixed-speed CPUs).
    pub fn credits(&self) -> Option<f64> {
        self.burst.as_ref().map(|b| b.credits)
    }

    /// Service time for `work`, spending burst credits. A job larger
    /// than the banked credits runs the remainder at the sustained
    /// baseline — so persistent overspending really does throttle, while
    /// idle periods rebuild the bucket.
    fn service_time(&mut self, now: SimTime, work: SimDuration) -> f64 {
        let burst_speed = self.speed;
        let Some(b) = &mut self.burst else {
            return work.as_secs_f64() / burst_speed;
        };
        // Accrue credits for wall time since the last update.
        let elapsed = now.since(b.updated).as_secs_f64();
        if elapsed > 0.0 {
            b.credits = (b.credits + elapsed * b.accrual_per_sec).min(b.max_credits);
            b.updated = now;
        }
        let w = work.as_secs_f64();
        let burst_service_needed = w / burst_speed;
        if b.credits >= burst_service_needed {
            b.credits -= burst_service_needed;
            burst_service_needed
        } else {
            // Burn what is banked at burst speed, the rest throttled.
            let burst_service = b.credits;
            let work_done_bursting = burst_service * burst_speed;
            b.credits = 0.0;
            burst_service + (w - work_done_bursting) / b.sustained_speed
        }
    }

    /// Charges `work` (expressed at speed 1.0) and returns the delay from
    /// `now` until the work completes on this CPU.
    pub fn charge(&mut self, now: SimTime, work: SimDuration) -> SimDuration {
        if work == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let secs = self.service_time(now, work);
        let service = SimDuration::from_nanos(((secs * 1e9).round() as u64).max(1));
        // Earliest-available core.
        let core = self
            .cores
            .iter_mut()
            .min_by_key(|t| t.as_nanos())
            .expect("at least one core");
        let start = (*core).max(now);
        *core = start + service;
        self.busy_accum += service;
        core.since(now)
    }

    /// Queueing delay a new unit of work would currently experience.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.cores
            .iter()
            .map(|c| c.since(now))
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total busy core-time charged so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_accum
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::new(1, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_serves_immediately() {
        let mut cpu = CpuModel::new(1, 1.0);
        let d = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(10));
    }

    #[test]
    fn busy_cpu_queues() {
        let mut cpu = CpuModel::new(1, 1.0);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        let d = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(20), "second job waits for the first");
        assert_eq!(cpu.backlog(SimTime::ZERO), SimDuration::from_millis(20));
    }

    #[test]
    fn two_cores_serve_in_parallel() {
        let mut cpu = CpuModel::new(2, 1.0);
        let d1 = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        let d2 = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d1, SimDuration::from_millis(10));
        assert_eq!(d2, SimDuration::from_millis(10));
        let d3 = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d3, SimDuration::from_millis(20));
    }

    #[test]
    fn speed_scales_service_time() {
        let mut cpu = CpuModel::new(1, 2.0);
        let d = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(5));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut cpu = CpuModel::new(1, 1.0);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        // After the core went idle, a new job at t=1s starts fresh.
        let d = cpu.charge(SimTime(1_000_000_000), SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(10));
    }

    #[test]
    fn zero_work_is_free() {
        let mut cpu = CpuModel::new(1, 1.0);
        assert_eq!(cpu.charge(SimTime::ZERO, SimDuration::ZERO), SimDuration::ZERO);
        assert_eq!(cpu.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn burstable_throttles_when_credits_exhaust() {
        // 1 core, burst 2.0 / sustained 0.5, no accrual, 0.02 core-sec.
        let mut cpu = CpuModel::burstable(1, 2.0, 0.5, 0.0, 0.02);
        // First job runs at burst speed: 20ms work → 10ms service,
        // consuming 0.01 credits.
        let d1 = cpu.charge(SimTime::ZERO, SimDuration::from_millis(20));
        assert_eq!(d1, SimDuration::from_millis(10));
        // Second identical job drains the rest.
        let t1 = SimTime(1_000_000_000);
        let d2 = cpu.charge(t1, SimDuration::from_millis(20));
        assert_eq!(d2, SimDuration::from_millis(10));
        assert_eq!(cpu.credits(), Some(0.0));
        // Third job is throttled: 20ms work at 0.5 → 40ms.
        let t2 = SimTime(2_000_000_000);
        let d3 = cpu.charge(t2, SimDuration::from_millis(20));
        assert_eq!(d3, SimDuration::from_millis(40));
    }

    #[test]
    fn burstable_credits_accrue_over_idle_time() {
        let mut cpu = CpuModel::burstable(1, 2.0, 0.5, 0.1, 0.0);
        // No credits: throttled.
        let d = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(20));
        // After 1 s idle, 0.1 credits banked: burst again.
        let later = SimTime(1_000_000_000 + 20_000_000);
        let d = cpu.charge(later, SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(5));
    }

    #[test]
    fn fixed_speed_cpu_has_no_credits() {
        let cpu = CpuModel::new(1, 1.0);
        assert_eq!(cpu.credits(), None);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut cpu = CpuModel::new(2, 1.0);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(3));
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(4));
        assert_eq!(cpu.busy_time(), SimDuration::from_millis(7));
    }
}
