//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a scripted list of fault episodes — link cuts,
//! loss bursts, latency spikes, node crash/restart, network partitions —
//! each anchored at an offset from the moment the plan is scheduled.
//! [`FaultPlan::schedule`] compiles the episodes into
//! [`FaultAction`] events pushed through the ordinary calendar queue, so
//! fault timing obeys the same `(time, seq)` determinism contract as
//! every packet and timer: the same seed plus the same plan replays
//! bit-identically, and fault-state checks in [`crate::link::Link`] are
//! placed *after* the caller's RNG draws so an episode never shifts the
//! draw sequence of surviving traffic.
//!
//! Every transition is emitted as a `fault` trace record and counted in
//! the metrics registry (`fault.*.episodes`), so episodes are visible in
//! run manifests; packets refused by a faulted link carry the drop
//! reasons `fault.link_down` / `fault.partition` / `fault.loss_burst`
//! so `jq`-based triage can split injected faults from organic loss.

use crate::engine::{FaultAction, Sim};
use crate::link::{Link, LinkId, NodeId};
use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One scripted fault episode. Timed episodes (`LossBurst`,
/// `LatencySpike`, `Partition`) carry their own duration and schedule
/// their clearing transition automatically; `LinkDown` and `NodeCrash`
/// persist until an explicit `LinkUp` / `NodeRestart` episode.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEpisode {
    /// Administratively cut a link.
    LinkDown {
        /// The link to cut.
        link: LinkId,
    },
    /// Restore an administratively cut link.
    LinkUp {
        /// The link to restore.
        link: LinkId,
    },
    /// Raise a link's loss to `prob` for `duration`, then clear.
    LossBurst {
        /// The affected link.
        link: LinkId,
        /// Loss probability in [0, 1) during the burst.
        prob: f64,
        /// How long the burst lasts.
        duration: SimDuration,
    },
    /// Add `extra` one-way delay to a link for `duration`, then clear.
    LatencySpike {
        /// The affected link.
        link: LinkId,
        /// The extra one-way delay.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// Crash a node (stack reset; traffic and timers discarded).
    NodeCrash {
        /// The node to crash.
        node: NodeId,
    },
    /// Restart a crashed node.
    NodeRestart {
        /// The node to restart.
        node: NodeId,
    },
    /// Sever every link with one endpoint in `group_a` and the other in
    /// `group_b` for `duration`, then heal. Nodes in neither group keep
    /// all their links. The crossing set is resolved against the world's
    /// link registry at schedule time.
    Partition {
        /// One side of the partition.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
        /// How long the partition lasts.
        duration: SimDuration,
    },
}

/// A scripted, schedulable fault storyline: `(offset, episode)` pairs,
/// offsets measured from the simulation time at which
/// [`FaultPlan::schedule`] is called.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    episodes: Vec<(SimDuration, FaultEpisode)>,
}

/// The links with one endpoint in `a` and the other in `b`.
pub fn crossing_links(links: &[Link], a: &[NodeId], b: &[NodeId]) -> Vec<LinkId> {
    links
        .iter()
        .filter(|l| {
            let (x, y) = (l.a.node, l.b.node);
            (a.contains(&x) && b.contains(&y)) || (a.contains(&y) && b.contains(&x))
        })
        .map(|l| l.id)
        .collect()
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an episode at `offset` from schedule time (builder style).
    pub fn at(mut self, offset: SimDuration, episode: FaultEpisode) -> Self {
        self.episodes.push((offset, episode));
        self
    }

    /// Adds an episode in place.
    pub fn push(&mut self, offset: SimDuration, episode: FaultEpisode) {
        self.episodes.push((offset, episode));
    }

    /// The scripted episodes, in insertion order.
    pub fn episodes(&self) -> &[(SimDuration, FaultEpisode)] {
        &self.episodes
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Compiles the plan into engine fault events on `sim`'s queue,
    /// offsets measured from `sim.now()`. Timed episodes also schedule
    /// their clearing transition at `offset + duration`.
    pub fn schedule(&self, sim: &mut Sim) {
        for (at, ep) in &self.episodes {
            match ep {
                FaultEpisode::LinkDown { link } => {
                    sim.schedule_fault(*at, FaultAction::LinkDown(*link));
                }
                FaultEpisode::LinkUp { link } => {
                    sim.schedule_fault(*at, FaultAction::LinkUp(*link));
                }
                FaultEpisode::LossBurst { link, prob, duration } => {
                    sim.schedule_fault(*at, FaultAction::BurstStart { link: *link, loss: *prob });
                    sim.schedule_fault(*at + *duration, FaultAction::BurstEnd { link: *link });
                }
                FaultEpisode::LatencySpike { link, extra, duration } => {
                    sim.schedule_fault(*at, FaultAction::SpikeStart { link: *link, extra: *extra });
                    sim.schedule_fault(*at + *duration, FaultAction::SpikeEnd { link: *link });
                }
                FaultEpisode::NodeCrash { node } => {
                    sim.schedule_fault(*at, FaultAction::NodeCrash(*node));
                }
                FaultEpisode::NodeRestart { node } => {
                    sim.schedule_fault(*at, FaultAction::NodeRestart(*node));
                }
                FaultEpisode::Partition { group_a, group_b, duration } => {
                    let cut = crossing_links(sim.world.links(), group_a, group_b);
                    sim.schedule_fault(*at, FaultAction::Partition { links: cut.clone() });
                    sim.schedule_fault(*at + *duration, FaultAction::Heal { links: cut });
                }
            }
        }
    }

    /// The largest offset at which the plan still transitions (including
    /// the self-scheduled clears of timed episodes): after
    /// `schedule time + horizon` the network is in its final state.
    pub fn horizon(&self) -> SimDuration {
        self.episodes
            .iter()
            .map(|(at, ep)| match ep {
                FaultEpisode::LossBurst { duration, .. }
                | FaultEpisode::LatencySpike { duration, .. }
                | FaultEpisode::Partition { duration, .. } => *at + *duration,
                _ => *at,
            })
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Whether the plan leaves everything restored once it has fully
    /// played out: every `LinkDown` is followed (at a later or equal
    /// offset) by a `LinkUp` of the same link, every `NodeCrash` by a
    /// `NodeRestart`; timed episodes always self-clear.
    pub fn ends_restored(&self) -> bool {
        // Replay only the persistent transitions in schedule order
        // (stable sort by offset = queue order for equal times).
        let mut seq: Vec<(SimDuration, &FaultEpisode)> =
            self.episodes.iter().map(|(at, ep)| (*at, ep)).collect();
        seq.sort_by_key(|(at, _)| *at);
        let mut down_links: Vec<LinkId> = Vec::new();
        let mut crashed: Vec<NodeId> = Vec::new();
        for (_, ep) in seq {
            match ep {
                FaultEpisode::LinkDown { link } if !down_links.contains(link) => {
                    down_links.push(*link);
                }
                FaultEpisode::LinkUp { link } => down_links.retain(|l| l != link),
                FaultEpisode::NodeCrash { node } if !crashed.contains(node) => {
                    crashed.push(*node);
                }
                FaultEpisode::NodeRestart { node } => crashed.retain(|n| n != node),
                _ => {}
            }
        }
        down_links.is_empty() && crashed.is_empty()
    }

    /// Generates a deterministic random plan over the given candidate
    /// links and nodes: 1–4 episodes inside `window`, always paired so
    /// the plan [`FaultPlan::ends_restored`]. The same seed yields the
    /// same plan.
    pub fn random(seed: u64, links: &[LinkId], nodes: &[NodeId], window: SimDuration) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let span = window.as_nanos().max(2);
        let count = rng.random_range(1..=4u64);
        for _ in 0..count {
            let start = SimDuration::from_nanos(rng.random_range(0..span / 2));
            let dur = SimDuration::from_nanos(rng.random_range(1..span / 2));
            let kind = rng.random_range(0..5u64);
            match kind {
                0 if !links.is_empty() => {
                    let link = links[rng.random_range(0..links.len() as u64) as usize];
                    plan.push(start, FaultEpisode::LinkDown { link });
                    plan.push(start + dur, FaultEpisode::LinkUp { link });
                }
                1 if !links.is_empty() => {
                    let link = links[rng.random_range(0..links.len() as u64) as usize];
                    let prob = 0.2 + rng.random::<f64>() * 0.7;
                    plan.push(start, FaultEpisode::LossBurst { link, prob, duration: dur });
                }
                2 if !links.is_empty() => {
                    let link = links[rng.random_range(0..links.len() as u64) as usize];
                    let extra = SimDuration::from_millis(1 + rng.random_range(0..50u64));
                    plan.push(start, FaultEpisode::LatencySpike { link, extra, duration: dur });
                }
                3 if !nodes.is_empty() => {
                    let node = nodes[rng.random_range(0..nodes.len() as u64) as usize];
                    plan.push(start, FaultEpisode::NodeCrash { node });
                    plan.push(start + dur, FaultEpisode::NodeRestart { node });
                }
                _ if nodes.len() >= 2 => {
                    let split = 1 + rng.random_range(0..(nodes.len() - 1) as u64) as usize;
                    plan.push(
                        start,
                        FaultEpisode::Partition {
                            group_a: nodes[..split].to_vec(),
                            group_b: nodes[split..].to_vec(),
                            duration: dur,
                        },
                    );
                }
                _ => {}
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Event, Node, TimerHandle};
    use crate::link::{Endpoint, LinkParams};
    use crate::packet::{v4, IcmpKind, IcmpMessage, Payload};
    use crate::packet::Packet;
    use crate::time::SimTime;
    use crate::trace::{Trace, TraceKind};
    use std::any::Any;

    struct Counter {
        received: u32,
        crashes: u32,
        restarts: u32,
    }
    impl Node for Counter {
        fn handle_packet(&mut self, _iface: usize, _pkt: Packet, _ctx: &mut Ctx) {
            self.received += 1;
        }
        fn handle_timer(&mut self, _t: TimerHandle, _ctx: &mut Ctx) {}
        fn on_crash(&mut self, _ctx: &mut Ctx) {
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Ctx) {
            self.restarts += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn pkt() -> Packet {
        Packet::new(
            v4(10, 0, 0, 1),
            v4(10, 0, 0, 2),
            Payload::Icmp(IcmpMessage { kind: IcmpKind::EchoRequest, ident: 1, seq: 1, payload_len: 56 }),
        )
    }

    fn pair() -> (Sim, NodeId, NodeId, LinkId) {
        let mut sim = Sim::new(3);
        let a = sim.world.add_node(Box::new(Counter { received: 0, crashes: 0, restarts: 0 }));
        let b = sim.world.add_node(Box::new(Counter { received: 0, crashes: 0, restarts: 0 }));
        let l = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        (sim, a, b, l)
    }

    #[test]
    fn link_down_window_drops_then_restores() {
        let (mut sim, a, b, l) = pair();
        let plan = FaultPlan::new()
            .at(SimDuration::from_millis(10), FaultEpisode::LinkDown { link: l })
            .at(SimDuration::from_millis(30), FaultEpisode::LinkUp { link: l });
        assert!(plan.ends_restored());
        assert_eq!(plan.horizon(), SimDuration::from_millis(30));
        sim.trace = Trace::enabled(1000);
        plan.schedule(&mut sim);
        // One packet before, one during, one after the outage.
        for at_ms in [5u64, 20, 40] {
            sim.schedule(
                SimDuration::from_millis(at_ms),
                Event::LinkTx { from: a, link: l, pkt: pkt() },
            );
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.world.node::<Counter>(b).unwrap().received, 2, "middle packet dropped");
        assert!(!sim.world.links()[l.0].is_faulted(), "link restored");
        let drops: Vec<_> = sim
            .trace
            .of_kind(TraceKind::Drop)
            .map(|e| e.detail())
            .collect();
        assert_eq!(drops.len(), 1);
        assert!(drops[0].contains("fault.link_down"), "{drops:?}");
        assert_eq!(sim.trace.of_kind(TraceKind::Fault).count(), 2, "down + up transitions traced");
        assert_eq!(sim.metrics.counter_value("fault.link_down.episodes"), Some(1));
        assert_eq!(sim.metrics.counter_value("fault.link_down"), Some(1), "one packet refused");
    }

    #[test]
    fn crash_window_discards_and_hooks_fire() {
        let (mut sim, a, b, l) = pair();
        let plan = FaultPlan::new()
            .at(SimDuration::from_millis(10), FaultEpisode::NodeCrash { node: b })
            .at(SimDuration::from_millis(30), FaultEpisode::NodeRestart { node: b });
        assert!(plan.ends_restored());
        plan.schedule(&mut sim);
        for at_ms in [5u64, 20, 40] {
            sim.schedule(
                SimDuration::from_millis(at_ms),
                Event::LinkTx { from: a, link: l, pkt: pkt() },
            );
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let bn = sim.world.node::<Counter>(b).unwrap();
        assert_eq!(bn.received, 2, "mid-crash packet discarded");
        assert_eq!(bn.crashes, 1);
        assert_eq!(bn.restarts, 1);
        assert!(!sim.is_crashed(b));
    }

    #[test]
    fn partition_resolves_crossing_links() {
        let mut sim = Sim::new(5);
        let n: Vec<NodeId> = (0..4)
            .map(|_| sim.world.add_node(Box::new(Counter { received: 0, crashes: 0, restarts: 0 })))
            .collect();
        // 0-1, 1-2, 2-3: partition {0,1} | {2,3} must cut only 1-2.
        let mut links = Vec::new();
        for w in n.windows(2) {
            links.push(sim.world.connect(
                Endpoint { node: w[0], iface: 0 },
                Endpoint { node: w[1], iface: 1 },
                LinkParams::datacenter(),
            ));
        }
        let cut = crossing_links(sim.world.links(), &n[..2], &n[2..]);
        assert_eq!(cut, vec![links[1]]);
        let plan = FaultPlan::new().at(
            SimDuration::from_millis(1),
            FaultEpisode::Partition {
                group_a: n[..2].to_vec(),
                group_b: n[2..].to_vec(),
                duration: SimDuration::from_millis(10),
            },
        );
        assert!(plan.ends_restored(), "partitions self-heal");
        plan.schedule(&mut sim);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(5));
        assert!(sim.world.links()[links[1].0].is_down());
        assert!(!sim.world.links()[links[0].0].is_down());
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(20));
        assert!(sim.world.links().iter().all(|l| !l.is_faulted()), "healed");
    }

    #[test]
    fn unbalanced_plans_are_flagged() {
        let l = LinkId(0);
        assert!(!FaultPlan::new().at(SimDuration::ZERO, FaultEpisode::LinkDown { link: l }).ends_restored());
        assert!(!FaultPlan::new()
            .at(SimDuration::ZERO, FaultEpisode::NodeCrash { node: NodeId(1) })
            .ends_restored());
        // Up-then-down (wrong order at different offsets) stays broken.
        assert!(!FaultPlan::new()
            .at(SimDuration::from_millis(5), FaultEpisode::LinkDown { link: l })
            .at(SimDuration::from_millis(1), FaultEpisode::LinkUp { link: l })
            .ends_restored());
    }

    #[test]
    fn random_plans_are_deterministic_and_restored() {
        let links = [LinkId(0), LinkId(1)];
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        for seed in 0..50 {
            let a = FaultPlan::random(seed, &links, &nodes, SimDuration::from_secs(5));
            let b = FaultPlan::random(seed, &links, &nodes, SimDuration::from_secs(5));
            assert_eq!(a, b, "same seed, same plan");
            assert!(a.ends_restored(), "seed {seed}: generated plan must self-restore");
            assert!(a.horizon() <= SimDuration::from_secs(5));
        }
    }
}
