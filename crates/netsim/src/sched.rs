//! The event scheduler: a hierarchical calendar queue.
//!
//! The engine orders events by `(time, seq)` — the sequence number makes
//! simultaneous events FIFO, which is what makes a run bit-for-bit
//! deterministic. A single global `BinaryHeap` gives that order in
//! O(log n) per operation; at sustained simulation load (tens of
//! thousands of in-flight TCP segments, timers and link transmissions)
//! the heap's cache-hostile sift dominates the profile.
//!
//! [`CalendarQueue`] keeps the identical total order with O(1) amortized
//! scheduling for the common case (events within a short horizon of
//! now). Structure:
//!
//! * a **current bucket** — a vector sorted descending by `(time, seq)`
//!   holding events in `[cur_start, cur_start + width)`, popped from the
//!   tail in O(1);
//! * a **wheel** of `nbuckets` unsorted vectors covering
//!   `[cur_start + width, cur_start + horizon)`, indexed by absolute
//!   time (`(t >> width_log2) & mask`), with an occupancy bitmap so
//!   sparse wheels advance by jumping straight to the next full bucket;
//! * an **overflow** min-heap for events at or beyond the horizon
//!   (long retransmission timeouts, SA lifetimes), migrated into the
//!   wheel as the window approaches them.
//!
//! Ordering proof sketch: `cur_start` never passes an unpopped event
//! (advances go to `min(next occupied bucket, overflow min)`), every
//! wheel bucket not yet drained starts strictly after the current
//! window, and overflow is consulted before the wheel whenever its
//! minimum is earlier — so the pop sequence equals the sorted
//! `(time, seq)` sequence, exactly what the old global heap produced.
//! The property test in `tests/sched_equivalence.rs` checks this
//! against a reference `BinaryHeap` under random workloads.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default bucket width: 2^13 ns ≈ 8.2 µs. Narrow enough that the
/// sorted current bucket stays shallow at high event density, wide
/// enough that sparse runs don't advance through empty buckets.
pub const DEFAULT_WIDTH_LOG2: u32 = 13;
/// Default bucket count: 2048 buckets ≈ 16.8 ms horizon, covering link
/// RTTs and CPU service times. The wheel is deliberately small — 48 KB
/// of `Vec` headers stays cache-resident, where a bigger wheel costs a
/// cache miss per push at typical (hundreds-in-flight) queue depths.
/// Far-future timers (retransmission, SA lifetimes) go to the overflow
/// heap and migrate in as the window approaches.
pub const DEFAULT_NBUCKETS_LOG2: u32 = 11;

#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters the engine folds into its stats snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Pushes that landed in the current-bucket heap.
    pub pushed_current: u64,
    /// Pushes that landed in a wheel bucket (the O(1) fast path).
    pub pushed_wheel: u64,
    /// Pushes that landed in the overflow heap (beyond the horizon).
    pub pushed_overflow: u64,
    /// Times the window advanced to a new bucket.
    pub advances: u64,
    /// Events migrated from overflow into the active window.
    pub migrated: u64,
}

/// A calendar queue ordered by `(time, seq)`, generic over the payload.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    width_log2: u32,
    mask: u64,
    horizon: u64,
    /// Start of the current bucket's interval (bucket-aligned). All
    /// events before `cur_start` have been popped.
    cur_start: u64,
    /// Current bucket, sorted *descending* by `(at, seq)`: the minimum
    /// is at the tail, so pops are O(1) and draining a wheel bucket is
    /// one `sort_unstable` instead of per-event heap sifts.
    cur: Vec<Entry<T>>,
    wheel: Vec<Vec<Entry<T>>>,
    /// One bit per wheel bucket; set iff the bucket is non-empty.
    occ: Vec<u64>,
    wheel_len: usize,
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
    stats: QueueStats,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// A queue with the default geometry (8.2 µs × 2048 ≈ 16.8 ms horizon).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_WIDTH_LOG2, DEFAULT_NBUCKETS_LOG2)
    }

    /// A queue with `2^width_log2` ns buckets, `2^nbuckets_log2` of them.
    pub fn with_geometry(width_log2: u32, nbuckets_log2: u32) -> Self {
        assert!(width_log2 + nbuckets_log2 < 63, "horizon must fit in u64");
        let nbuckets = 1usize << nbuckets_log2;
        CalendarQueue {
            width_log2,
            mask: (nbuckets as u64) - 1,
            horizon: (nbuckets as u64) << width_log2,
            cur_start: 0,
            cur: Vec::new(),
            wheel: (0..nbuckets).map(|_| Vec::new()).collect(),
            occ: vec![0u64; nbuckets.div_ceil(64)],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            stats: QueueStats::default(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    fn width(&self) -> u64 {
        1u64 << self.width_log2
    }

    fn bucket_index(&self, t: u64) -> usize {
        ((t >> self.width_log2) & self.mask) as usize
    }

    fn set_occ(&mut self, idx: usize) {
        self.occ[idx / 64] |= 1u64 << (idx % 64);
    }

    fn clear_occ(&mut self, idx: usize) {
        self.occ[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Ring distance (in buckets) from the current bucket to the next
    /// occupied one, or `None` if the wheel is empty. Distance 0 is
    /// never returned: the current bucket's events live in `cur`.
    fn next_occupied_distance(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let nbuckets = self.wheel.len();
        let start = self.bucket_index(self.cur_start);
        if nbuckets < 64 {
            // Sub-word ring (only tiny test geometries): the ring wraps
            // *inside* one bitmap word, so the word-skip scan below
            // would shift past wrapped buckets. Plain scan instead.
            let word = self.occ[0];
            for dist in 1..=nbuckets {
                let idx = (start + dist) & (self.mask as usize);
                if word & (1u64 << idx) != 0 {
                    return Some(dist as u64);
                }
            }
            return None;
        }
        // Scan the bitmap from start+1, wrapping once around the ring.
        let mut dist = 1usize;
        while dist <= nbuckets {
            let idx = (start + dist) & (self.mask as usize);
            let word = self.occ[idx / 64];
            if word == 0 {
                // Skip to the end of this 64-bucket word.
                let skip = 64 - (idx % 64);
                dist += skip;
                continue;
            }
            let shifted = word >> (idx % 64);
            if shifted != 0 {
                let d = dist + shifted.trailing_zeros() as usize;
                if d <= nbuckets {
                    return Some(d as u64);
                }
                return None; // only occupancy behind us — unreachable when wheel_len > 0
            }
            dist += 64 - (idx % 64);
        }
        None
    }

    /// Schedules `item` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.len += 1;
        self.push_entry(Entry { at: at.as_nanos(), seq, item });
    }

    fn push_entry(&mut self, e: Entry<T>) {
        if e.at < self.cur_start.saturating_add(self.width()) {
            // Current bucket (or a straggler before the window —
            // impossible during a run, but the ordered insert below
            // handles it anyway). Sorted-descending insert; the bucket
            // is small, so the memmove is cheap and rare.
            self.stats.pushed_current += 1;
            let pos = self.cur.partition_point(|x| (x.at, x.seq) > (e.at, e.seq));
            self.cur.insert(pos, e);
        } else if e.at < self.cur_start.saturating_add(self.horizon) {
            self.stats.pushed_wheel += 1;
            let idx = self.bucket_index(e.at);
            self.wheel[idx].push(e);
            self.set_occ(idx);
            self.wheel_len += 1;
        } else {
            self.stats.pushed_overflow += 1;
            self.overflow.push(Reverse(e));
        }
    }

    /// Moves the window forward until `cur` holds the global minimum.
    /// Returns false if the queue is empty.
    fn advance(&mut self) -> bool {
        loop {
            if !self.cur.is_empty() {
                return true;
            }
            let over_min = self.overflow.peek().map(|Reverse(e)| e.at);
            let wheel_dist = self.next_occupied_distance();
            match (wheel_dist, over_min) {
                (None, None) => return false,
                (Some(d), o) => {
                    let next_start = self.cur_start + d * self.width();
                    if o.is_some_and(|m| m < next_start) {
                        self.migrate_overflow(o.expect("checked"));
                    } else {
                        // Drain the next occupied bucket into `cur`.
                        self.stats.advances += 1;
                        self.cur_start = next_start;
                        let idx = self.bucket_index(self.cur_start);
                        // Swap the buffers so the old `cur` allocation
                        // becomes the bucket's next fill.
                        std::mem::swap(&mut self.cur, &mut self.wheel[idx]);
                        self.clear_occ(idx);
                        self.wheel_len -= self.cur.len();
                        self.cur.sort_unstable_by(|a, b| b.cmp(a));
                        // Overflow events can fall *inside* this bucket's
                        // window: they were pushed when the horizon ended
                        // before it. Merge them now or they would pop
                        // after later wheel events from the same bucket.
                        let window_end = self.cur_start.saturating_add(self.width());
                        while self.overflow.peek().is_some_and(|Reverse(e)| e.at < window_end) {
                            let Reverse(e) = self.overflow.pop().expect("peeked");
                            self.stats.migrated += 1;
                            self.push_entry(e);
                        }
                    }
                }
                (None, Some(m)) => self.migrate_overflow(m),
            }
        }
    }

    /// Jumps the window to `over_min`'s bucket and pulls every overflow
    /// event inside the new horizon into the window. All live wheel
    /// events stay valid: their absolute-time bucket mapping is
    /// unchanged and they remain inside the new window.
    fn migrate_overflow(&mut self, over_min: u64) {
        self.stats.advances += 1;
        self.cur_start = over_min & !(self.width() - 1);
        let end = self.cur_start.saturating_add(self.horizon);
        while let Some(Reverse(e)) = self.overflow.peek() {
            if e.at >= end {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            self.stats.migrated += 1;
            // `len` is unchanged: the event moves between tiers.
            self.push_entry(e);
        }
    }

    /// The `(time, seq)` key of the earliest event, advancing the window
    /// if needed (hence `&mut`).
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.advance() {
            return None;
        }
        self.cur.last().map(|e| (SimTime(e.at), e.seq))
    }

    /// The earliest event — key plus a borrow of the item — without
    /// popping it, advancing the window if needed (hence `&mut`).
    pub fn peek(&mut self) -> Option<(SimTime, u64, &T)> {
        if !self.advance() {
            return None;
        }
        self.cur.last().map(|e| (SimTime(e.at), e.seq, &e.item))
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if !self.advance() {
            return None;
        }
        let e = self.cur.pop().expect("advance filled cur");
        self.len -= 1;
        Some((SimTime(e.at), e.seq, e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at.as_nanos(), seq));
        }
        out
    }

    #[test]
    fn orders_across_all_tiers() {
        // One event per tier: current bucket, wheel, overflow.
        let mut q = CalendarQueue::with_geometry(10, 4); // 1 µs × 16 = 16 µs horizon
        q.push(SimTime(20_000_000), 1, 0); // far overflow
        q.push(SimTime(500), 2, 0); // current bucket
        q.push(SimTime(5_000), 3, 0); // wheel
        q.push(SimTime(500), 4, 0); // FIFO tie with seq 2
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(500, 2), (500, 4), (5_000, 3), (20_000_000, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_before_wheel_when_earlier() {
        // Regression for the window-jump ordering hazard: an overflow
        // event must pop before a *later* wheel event even though the
        // wheel is non-empty.
        let mut q = CalendarQueue::with_geometry(10, 4);
        let horizon = 16 * 1024u64;
        // Fill and drain a first wave so cur_start advances.
        q.push(SimTime(1_000), 1, 0);
        assert!(q.pop().is_some());
        // A at just past the original horizon -> overflow.
        q.push(SimTime(horizon + 100), 2, 0);
        // B later than A but within the (advanced) wheel window.
        q.push(SimTime(horizon + 9_000), 3, 0);
        assert_eq!(drain(&mut q), vec![(horizon + 100, 2), (horizon + 9_000, 3)]);
    }

    #[test]
    fn overflow_event_inside_drained_bucket_window() {
        // Regression: an overflow event whose time lands *inside* the
        // bucket being drained (not strictly before it) must merge into
        // that drain, or it pops after later wheel events. Geometry:
        // 16 ns × 4 buckets = 64 ns horizon.
        let mut q = CalendarQueue::with_geometry(4, 2);
        q.push(SimTime(0), 1, 0); // current bucket
        q.push(SimTime(70), 2, 0); // beyond horizon -> overflow
        assert_eq!(q.pop().map(|(t, s, _)| (t.as_nanos(), s)), Some((0, 1)));
        q.push(SimTime(20), 3, 0); // wheel
        assert_eq!(q.pop().map(|(t, s, _)| (t.as_nanos(), s)), Some((20, 3)));
        // cur_start is now 16; horizon ends at 80, so 76 goes to the
        // wheel — the *same* absolute bucket [64, 80) that holds the
        // overflow event at 70.
        q.push(SimTime(76), 4, 0);
        assert_eq!(drain(&mut q), vec![(70, 2), (76, 4)]);
    }

    #[test]
    fn equal_times_pop_in_seq_order_across_tiers() {
        let mut q = CalendarQueue::with_geometry(10, 4);
        for seq in (1..=50).rev() {
            q.push(SimTime(42_000), seq, 0);
        }
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 50);
        assert!(popped.windows(2).all(|w| w[0].1 < w[1].1), "FIFO at equal time");
    }

    #[test]
    fn matches_reference_heap_on_dense_and_sparse_mix() {
        use std::cmp::Reverse as R;
        let mut q = CalendarQueue::new();
        let mut heap = std::collections::BinaryHeap::new();
        let mut state = 0x12345u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for _ in 0..5_000 {
            // Interleave pushes (at >= now) and pops.
            if rng() % 3 != 0 || heap.is_empty() {
                seq += 1;
                // Mix of short (µs), medium (ms) and long (s) delays.
                let delay = match rng() % 10 {
                    0 => rng() % 1_000_000_000,       // up to 1 s
                    1..=3 => rng() % 50_000_000,      // up to 50 ms
                    _ => rng() % 300_000,             // up to 300 µs
                };
                let at = now + delay;
                q.push(SimTime(at), seq, 0u32);
                heap.push(R((at, seq)));
            } else {
                let R((at, s)) = heap.pop().expect("non-empty");
                expected.push((at, s));
                let (qt, qs, _) = q.pop().expect("same length");
                got.push((qt.as_nanos(), qs));
                now = at;
            }
        }
        while let Some(R(k)) = heap.pop() {
            expected.push(k);
        }
        while let Some((t, s, _)) = q.pop() {
            got.push((t.as_nanos(), s));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn len_tracks_through_migration() {
        let mut q: CalendarQueue<()> = CalendarQueue::with_geometry(10, 4);
        for i in 0..100u64 {
            q.push(SimTime(i * 1_000_000), i, ());
        }
        assert_eq!(q.len(), 100);
        for _ in 0..40 {
            q.pop();
        }
        assert_eq!(q.len(), 60);
        let st = q.stats();
        assert!(st.pushed_overflow > 0, "long spread must hit overflow");
        assert!(st.migrated > 0, "overflow must migrate back in");
    }
}

