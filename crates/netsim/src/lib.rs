//! # netsim
//!
//! A deterministic, packet-level discrete-event network simulator: the
//! substrate on which the `hipcloud` workspace reproduces the paper's
//! Amazon EC2 / OpenNebula testbed.
//!
//! - [`engine`] — event queue, virtual clock, node dispatch
//! - [`link`] — latency/bandwidth/loss links with real output queues
//! - [`packet`] — typed packets (TCP/UDP/ICMP/ESP/HIP-control)
//! - [`host`] — full end-host stacks: apps, TCP/UDP/ICMP, the layer-3.5
//!   shim hook where HIP plugs in, Teredo, CPU service model
//! - [`tcp`] — windowed TCP with congestion control and retransmission
//! - [`router`], [`nat`], [`teredo`], [`dns`] — middleboxes and naming
//! - [`addr`] — ORCHID/LSI/Teredo address classification
//! - [`cpu`], [`time`], [`trace`] — supporting models
//!
//! Runs are bit-for-bit reproducible for a given seed: one clock, one
//! seeded RNG, FIFO tie-breaking. Parallelism belongs *across* runs
//! (see the `bench` crate), never inside one.

#![warn(missing_docs)]

pub mod addr;
pub mod cpu;
pub mod dns;
pub mod engine;
pub mod fault;
pub mod fx;
pub mod host;
pub mod link;
pub mod nat;
pub mod packet;
pub mod router;
pub mod sched;
pub mod tcp;
pub mod teredo;
pub mod time;
pub mod trace;

pub use cpu::CpuModel;
pub use engine::{
    Ctx, Event, FaultAction, Node, RunOutcome, Sim, SimStats, TimerHandle, TimerOwner, TimerToken,
    World, IFACE_INTERNAL,
};
pub use fault::{FaultEpisode, FaultPlan};
pub use host::{App, AppEvent, Host, HostApi, HostCore, L35Shim, ShimApi};
pub use link::{DropCause, Endpoint, Link, LinkId, LinkParams, NodeId};
pub use packet::{Packet, Payload};
pub use tcp::{SockId, TcpConfig, TcpEvent};
pub use time::{SimDuration, SimTime};
