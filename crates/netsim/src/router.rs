//! IP routers: longest-prefix forwarding between interfaces.
//!
//! Data-center topologies in the experiments are small (a rack switch, a
//! gateway, a WAN router) but real: packets hop through these nodes,
//! paying each link's latency and serialization, so multi-hop paths cost
//! what they should.

use crate::engine::{Ctx, Node};
use crate::link::LinkId;
use crate::packet::Packet;
use std::any::Any;
use std::net::IpAddr;

/// A forwarding table entry.
#[derive(Clone, Debug)]
pub struct Route {
    /// Destination prefix.
    pub prefix: IpAddr,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Interface to forward out of.
    pub out_iface: usize,
}

/// A router node.
pub struct Router {
    /// Diagnostics name.
    pub name: String,
    ifaces: Vec<LinkId>,
    routes: Vec<Route>,
    /// Packets forwarded (diagnostics).
    pub forwarded: u64,
    /// Packets dropped for lack of a route or TTL expiry.
    pub dropped: u64,
}

impl Router {
    /// Creates a router with no interfaces.
    pub fn new(name: &str) -> Self {
        Router { name: name.to_owned(), ifaces: Vec::new(), routes: Vec::new(), forwarded: 0, dropped: 0 }
    }

    /// Attaches an interface; returns its index.
    pub fn add_iface(&mut self, link: LinkId) -> usize {
        self.ifaces.push(link);
        self.ifaces.len() - 1
    }

    /// Adds a forwarding entry.
    pub fn add_route(&mut self, prefix: IpAddr, prefix_len: u8, out_iface: usize) {
        self.routes.push(Route { prefix, prefix_len, out_iface });
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, dst: &IpAddr) -> Option<usize> {
        let mut best: Option<(u8, usize)> = None;
        for r in &self.routes {
            if prefix_match(dst, &r.prefix, r.prefix_len)
                && best.is_none_or(|(len, _)| r.prefix_len > len)
            {
                best = Some((r.prefix_len, r.out_iface));
            }
        }
        best.map(|(_, i)| i)
    }
}

/// Bit-prefix comparison shared with the host's static routes.
pub(crate) fn prefix_match(addr: &IpAddr, prefix: &IpAddr, len: u8) -> bool {
    fn match_bits(a: &[u8], p: &[u8], len: u8) -> bool {
        let full = (len / 8) as usize;
        if a[..full] != p[..full] {
            return false;
        }
        let rem = len % 8;
        if rem == 0 {
            return true;
        }
        let mask = 0xffu8 << (8 - rem);
        (a[full] & mask) == (p[full] & mask)
    }
    match (addr, prefix) {
        (IpAddr::V4(a), IpAddr::V4(p)) => match_bits(&a.octets(), &p.octets(), len),
        (IpAddr::V6(a), IpAddr::V6(p)) => match_bits(&a.octets(), &p.octets(), len),
        _ => false,
    }
}

impl Node for Router {
    fn handle_packet(&mut self, in_iface: usize, mut pkt: Packet, ctx: &mut Ctx) {
        if pkt.ttl <= 1 {
            self.dropped += 1;
            ctx.trace_drop(|| format!("{}: ttl expired for {}", self.name, pkt.dst));
            return;
        }
        pkt.ttl -= 1;
        match self.lookup(&pkt.dst) {
            Some(out) if out != in_iface => {
                self.forwarded += 1;
                ctx.transmit(self.ifaces[out], pkt);
            }
            Some(_) => {
                // Route points back where it came from: drop to avoid loops.
                self.dropped += 1;
                ctx.trace_drop(|| format!("{}: hairpin to {}", self.name, pkt.dst));
            }
            None => {
                self.dropped += 1;
                ctx.trace_drop(|| format!("{}: no route to {}", self.name, pkt.dst));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{v4, v6};

    #[test]
    fn longest_prefix_wins() {
        let mut r = Router::new("r");
        r.add_iface(LinkId(0));
        r.add_iface(LinkId(1));
        r.add_iface(LinkId(2));
        r.add_route(v4(10, 0, 0, 0), 8, 0);
        r.add_route(v4(10, 1, 0, 0), 16, 1);
        r.add_route(v4(0, 0, 0, 0), 0, 2);
        assert_eq!(r.lookup(&v4(10, 2, 3, 4)), Some(0));
        assert_eq!(r.lookup(&v4(10, 1, 3, 4)), Some(1));
        assert_eq!(r.lookup(&v4(192, 168, 0, 1)), Some(2));
    }

    #[test]
    fn families_do_not_cross() {
        let mut r = Router::new("r");
        r.add_iface(LinkId(0));
        r.add_route(v4(0, 0, 0, 0), 0, 0);
        assert_eq!(r.lookup(&v6([0x2001, 0, 0, 0, 0, 0, 0, 1])), None);
    }
}
