//! Packet model.
//!
//! Packets are structured (headers as typed fields, not serialized bytes)
//! except where a protocol genuinely operates on opaque bytes: ESP
//! ciphertext and HIP control payloads are real byte strings produced by
//! real cryptography. Every packet knows its *wire length* so links can
//! charge serialization delay faithfully.

use bytes::Bytes;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::{Arc, OnceLock};

/// IP protocol numbers we model (a subset of the IANA registry).
pub mod proto {
    /// ICMP (v4 and v6 folded together).
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// IPsec Encapsulating Security Payload.
    pub const ESP: u8 = 50;
    /// Host Identity Protocol (RFC 5201 allocates protocol 139).
    pub const HIP: u8 = 139;
}

/// A simulated IP packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Source address (may be a locator, a HIT or an LSI depending on
    /// which layer of the stack the packet is traversing).
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Remaining hop count; routers drop at zero.
    pub ttl: u8,
    /// Transport payload.
    pub payload: Payload,
}

/// Default initial TTL.
pub const DEFAULT_TTL: u8 = 64;

/// Transport-layer content of a packet.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An ICMP message.
    Icmp(IcmpMessage),
    /// An IPsec ESP packet (HIP data plane). The ciphertext is real.
    Esp(EspPacket),
    /// A HIP control packet (serialized, signed bytes).
    HipControl(Bytes),
}

impl Packet {
    /// Builds a packet with the default TTL.
    pub fn new(src: IpAddr, dst: IpAddr, payload: Payload) -> Self {
        Packet { src, dst, ttl: DEFAULT_TTL, payload }
    }

    /// IP protocol number of the payload.
    pub fn protocol(&self) -> u8 {
        match &self.payload {
            Payload::Tcp(_) => proto::TCP,
            Payload::Udp(_) => proto::UDP,
            Payload::Icmp(_) => proto::ICMP,
            Payload::Esp(_) => proto::ESP,
            Payload::HipControl(_) => proto::HIP,
        }
    }

    /// Size of the IP header on the wire for this address family.
    fn ip_header_len(&self) -> usize {
        if self.dst.is_ipv6() { 40 } else { 20 }
    }

    /// Total bytes this packet occupies on a link.
    pub fn wire_len(&self) -> usize {
        self.ip_header_len() + self.payload.wire_len()
    }
}

impl Payload {
    /// Bytes the payload contributes to the wire length.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Tcp(seg) => 20 + seg.data.len(),
            Payload::Udp(d) => 8 + d.data.wire_len(),
            Payload::Icmp(m) => 8 + m.payload_len,
            // SPI (4) + seq (4) + ciphertext (includes IV/padding) + ICV.
            Payload::Esp(e) => e.wire_len(),
            Payload::HipControl(b) => b.len(),
        }
    }
}

/// TCP header flags.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// Synchronize (connection open).
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Finish (sender is done transmitting).
    pub fin: bool,
    /// Reset (abort the connection).
    pub rst: bool,
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.ack {
            s.push('A');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        write!(f, "[{s}]")
    }
}

impl TcpFlags {
    /// Just SYN.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// Just ACK.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };
    /// RST.
    pub const RST: TcpFlags = TcpFlags { syn: false, ack: false, fin: false, rst: true };
}

/// A TCP segment.
#[derive(Clone, Debug)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first data byte (or of SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgement (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Payload bytes.
    pub data: Bytes,
    /// GSO: when non-zero, this is a super-segment logically composed
    /// of MSS-sized frames of this size. The NIC layer splits it back
    /// into wire frames (see [`split_gso`]) before the link; a zero
    /// value marks an ordinary wire segment.
    pub gso_mss: u16,
}

/// Splits a GSO super-segment into its per-frame MSS segments
/// (zero-copy slices of the super's payload). The frames are exactly
/// the segments per-MSS emission would have produced: sequence numbers
/// advance by frame length, FIN rides only on the final frame, and
/// ack/window/flags otherwise replicate.
pub fn split_gso(seg: &TcpSegment) -> Vec<TcpSegment> {
    let mss = seg.gso_mss as usize;
    debug_assert!(mss > 0, "split_gso on a non-GSO segment");
    let mut frames = Vec::with_capacity(seg.data.len().div_ceil(mss.max(1)));
    let mut off = 0;
    while off < seg.data.len() {
        let take = mss.min(seg.data.len() - off);
        let last = off + take == seg.data.len();
        let mut flags = seg.flags;
        flags.fin = seg.flags.fin && last;
        frames.push(TcpSegment {
            src_port: seg.src_port,
            dst_port: seg.dst_port,
            seq: seg.seq.wrapping_add(off as u32),
            ack: seg.ack,
            flags,
            window: seg.window,
            data: seg.data.slice(off..off + take),
            gso_mss: 0,
        });
        off += take;
    }
    frames
}

/// A UDP datagram.
#[derive(Clone, Debug)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// The payload.
    pub data: UdpData,
}

/// UDP payloads: opaque bytes, a tunneled inner packet (Teredo), or a DNS
/// message (kept structured to avoid a DNS codec nobody measures).
#[derive(Clone, Debug)]
pub enum UdpData {
    /// Opaque application bytes.
    Raw(Bytes),
    /// A Teredo-encapsulated inner IPv6 packet (RFC 4380: IPv6-in-UDP).
    Teredo(Box<Packet>),
    /// A structured DNS message.
    Dns(crate::dns::DnsMessage),
}

impl UdpData {
    /// Bytes on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            UdpData::Raw(b) => b.len(),
            UdpData::Teredo(p) => p.wire_len(),
            UdpData::Dns(m) => m.wire_len(),
        }
    }
}

/// An ICMP message (echo only; that is all the experiments need).
#[derive(Clone, Debug)]
pub struct IcmpMessage {
    /// What kind of ICMP message.
    pub kind: IcmpKind,
    /// Identifier distinguishing concurrent ping sessions.
    pub ident: u16,
    /// Sequence number within a session.
    pub seq: u16,
    /// Size of the echo payload (bytes are never inspected, only counted).
    pub payload_len: usize,
}

/// ICMP message kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcmpKind {
    /// Ping request (hosts auto-reply).
    EchoRequest,
    /// Ping reply.
    EchoReply,
    /// Destination unreachable (sent by NAT/routers on drops when enabled).
    Unreachable,
}

/// An IPsec ESP packet as produced by the HIP BEET data plane.
#[derive(Clone, Debug)]
pub struct EspPacket {
    /// Security Parameter Index identifying the SA at the receiver.
    pub spi: u32,
    /// Monotonic sequence number (anti-replay).
    pub seq: u32,
    /// IV + AES-CBC ciphertext of the inner payload. Real bytes.
    /// Empty when `gso` is set — the frame's bytes live in the batch.
    pub ciphertext: Bytes,
    /// Truncated HMAC-SHA-256 integrity check value. Real bytes.
    /// Empty when `gso` is set.
    pub icv: Bytes,
    /// Present when this packet is one frame of a GSO batch that was
    /// encrypted in a single pass. The per-frame wire length is still
    /// declared exactly as unbatched encryption would have produced it.
    pub gso: Option<EspGsoFrame>,
}

impl EspPacket {
    /// Bytes this ESP payload occupies on the wire (excluding IP).
    pub fn wire_len(&self) -> usize {
        match &self.gso {
            // SPI (4) + seq (4) + the frame's declared IV+ct+ICV bytes.
            Some(f) => 8 + f.batch.frames[f.index as usize].wire_payload_len as usize,
            None => 8 + self.ciphertext.len() + self.icv.len(),
        }
    }
}

/// One frame's view into a shared ESP GSO batch.
#[derive(Clone, Debug)]
pub struct EspGsoFrame {
    /// The batch this frame belongs to (shared by all its frames).
    pub batch: Arc<EspBatch>,
    /// Index into [`EspBatch::frames`].
    pub index: u32,
}

/// A batch of ESP frames encrypted with a single AES-CBC/HMAC pass
/// over the concatenated inner encodings. Frames carry consecutive
/// sequence numbers starting at `first_seq`; each declares the wire
/// length unbatched per-frame encryption would have produced, so link
/// accounting is unchanged.
#[derive(Debug)]
pub struct EspBatch {
    /// Sequence number of the first frame.
    pub first_seq: u32,
    /// IV + one CBC pass over the concatenated inner encodings.
    pub ciphertext: Bytes,
    /// One ICV over `spi ‖ first_seq ‖ ciphertext`.
    pub icv: Bytes,
    /// Per-frame offsets into the concatenated plaintext.
    pub frames: Vec<EspFrameMeta>,
    /// Receiver-side memoized decrypt: `None` = batch failed
    /// authentication/decryption; `Some` = the concatenated plaintext.
    /// Initialized at most once no matter how many frames arrive.
    pub plain: OnceLock<Option<Bytes>>,
}

/// Offsets of one frame inside an [`EspBatch`].
#[derive(Clone, Copy, Debug)]
pub struct EspFrameMeta {
    /// Byte offset of this frame's inner encoding in the batch plaintext.
    pub inner_off: u32,
    /// Length of this frame's inner encoding.
    pub inner_len: u32,
    /// IV + ciphertext + ICV bytes this frame would occupy on the wire
    /// had it been encrypted alone (analytic; excludes the 8-byte ESP
    /// header).
    pub wire_payload_len: u32,
}

/// Convenience constructors used across the workspace and in tests.
pub fn v4(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(a, b, c, d))
}

/// Builds an IPv6 address from eight segments.
pub fn v6(segs: [u16; 8]) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(
        segs[0], segs[1], segs[2], segs[3], segs[4], segs[5], segs[6], segs[7],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_tcp() {
        let pkt = Packet::new(
            v4(10, 0, 0, 1),
            v4(10, 0, 0, 2),
            Payload::Tcp(TcpSegment {
                src_port: 1000,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 65535,
                data: Bytes::new(),
                gso_mss: 0,
            }),
        );
        // 20 IP + 20 TCP
        assert_eq!(pkt.wire_len(), 40);
        assert_eq!(pkt.protocol(), proto::TCP);
    }

    #[test]
    fn wire_len_ipv6_header() {
        let pkt = Packet::new(
            v6([0x2001, 0, 0, 0, 0, 0, 0, 1]),
            v6([0x2001, 0, 0, 0, 0, 0, 0, 2]),
            Payload::Icmp(IcmpMessage {
                kind: IcmpKind::EchoRequest,
                ident: 1,
                seq: 1,
                payload_len: 56,
            }),
        );
        assert_eq!(pkt.wire_len(), 40 + 8 + 56);
    }

    #[test]
    fn wire_len_teredo_nesting() {
        let inner = Packet::new(
            v6([0x2001, 0, 0, 0, 0, 0, 0, 1]),
            v6([0x2001, 0, 0, 0, 0, 0, 0, 2]),
            Payload::Udp(UdpDatagram {
                src_port: 1,
                dst_port: 2,
                data: UdpData::Raw(Bytes::from_static(b"hello")),
            }),
        );
        let inner_len = inner.wire_len();
        let outer = Packet::new(
            v4(192, 0, 2, 1),
            v4(192, 0, 2, 2),
            Payload::Udp(UdpDatagram {
                src_port: 3544,
                dst_port: 3544,
                data: UdpData::Teredo(Box::new(inner)),
            }),
        );
        // Outer v4 IP (20) + UDP (8) + full inner packet.
        assert_eq!(outer.wire_len(), 20 + 8 + inner_len);
    }

    #[test]
    fn esp_wire_len_counts_crypto_bytes() {
        let pkt = Packet::new(
            v4(1, 2, 3, 4),
            v4(5, 6, 7, 8),
            Payload::Esp(EspPacket {
                spi: 0x1234,
                seq: 9,
                ciphertext: Bytes::from(vec![0u8; 64]),
                icv: Bytes::from(vec![0u8; 16]),
                gso: None,
            }),
        );
        assert_eq!(pkt.wire_len(), 20 + 8 + 64 + 16);
    }

    #[test]
    fn flags_debug_compact() {
        assert_eq!(format!("{:?}", TcpFlags::SYN_ACK), "[SA]");
        assert_eq!(format!("{:?}", TcpFlags::RST), "[R]");
    }

    #[test]
    fn split_gso_reproduces_per_mss_frames() {
        let data: Vec<u8> = (0..3500u32).map(|i| (i % 251) as u8).collect();
        let sup = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: u32::MAX - 1000, // exercises wraparound
            ack: 42,
            flags: TcpFlags::FIN_ACK,
            window: 8192,
            data: Bytes::from(data.clone()),
            gso_mss: 1448,
        };
        let frames = split_gso(&sup);
        assert_eq!(frames.len(), 3); // 1448 + 1448 + 604
        let mut reassembled = Vec::new();
        let mut expect_seq = sup.seq;
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, expect_seq);
            assert_eq!(f.gso_mss, 0);
            assert_eq!(f.ack, sup.ack);
            assert_eq!(f.window, sup.window);
            assert!(f.flags.ack);
            assert_eq!(f.flags.fin, i == frames.len() - 1, "FIN only on last");
            reassembled.extend_from_slice(&f.data);
            expect_seq = expect_seq.wrapping_add(f.data.len() as u32);
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn gso_esp_frame_declares_unbatched_wire_len() {
        let batch = Arc::new(EspBatch {
            first_seq: 7,
            ciphertext: Bytes::from(vec![0u8; 160]),
            icv: Bytes::from(vec![0u8; 16]),
            frames: vec![
                EspFrameMeta { inner_off: 0, inner_len: 30, wire_payload_len: 16 + 32 + 16 },
                EspFrameMeta { inner_off: 30, inner_len: 40, wire_payload_len: 16 + 48 + 16 },
            ],
            plain: OnceLock::new(),
        });
        let frame = EspPacket {
            spi: 1,
            seq: 8,
            ciphertext: Bytes::new(),
            icv: Bytes::new(),
            gso: Some(EspGsoFrame { batch, index: 1 }),
        };
        assert_eq!(frame.wire_len(), 8 + 16 + 48 + 16);
    }
}
