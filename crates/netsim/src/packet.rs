//! Packet model.
//!
//! Packets are structured (headers as typed fields, not serialized bytes)
//! except where a protocol genuinely operates on opaque bytes: ESP
//! ciphertext and HIP control payloads are real byte strings produced by
//! real cryptography. Every packet knows its *wire length* so links can
//! charge serialization delay faithfully.

use bytes::Bytes;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// IP protocol numbers we model (a subset of the IANA registry).
pub mod proto {
    /// ICMP (v4 and v6 folded together).
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// IPsec Encapsulating Security Payload.
    pub const ESP: u8 = 50;
    /// Host Identity Protocol (RFC 5201 allocates protocol 139).
    pub const HIP: u8 = 139;
}

/// A simulated IP packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Source address (may be a locator, a HIT or an LSI depending on
    /// which layer of the stack the packet is traversing).
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Remaining hop count; routers drop at zero.
    pub ttl: u8,
    /// Transport payload.
    pub payload: Payload,
}

/// Default initial TTL.
pub const DEFAULT_TTL: u8 = 64;

/// Transport-layer content of a packet.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An ICMP message.
    Icmp(IcmpMessage),
    /// An IPsec ESP packet (HIP data plane). The ciphertext is real.
    Esp(EspPacket),
    /// A HIP control packet (serialized, signed bytes).
    HipControl(Bytes),
}

impl Packet {
    /// Builds a packet with the default TTL.
    pub fn new(src: IpAddr, dst: IpAddr, payload: Payload) -> Self {
        Packet { src, dst, ttl: DEFAULT_TTL, payload }
    }

    /// IP protocol number of the payload.
    pub fn protocol(&self) -> u8 {
        match &self.payload {
            Payload::Tcp(_) => proto::TCP,
            Payload::Udp(_) => proto::UDP,
            Payload::Icmp(_) => proto::ICMP,
            Payload::Esp(_) => proto::ESP,
            Payload::HipControl(_) => proto::HIP,
        }
    }

    /// Size of the IP header on the wire for this address family.
    fn ip_header_len(&self) -> usize {
        if self.dst.is_ipv6() { 40 } else { 20 }
    }

    /// Total bytes this packet occupies on a link.
    pub fn wire_len(&self) -> usize {
        self.ip_header_len() + self.payload.wire_len()
    }
}

impl Payload {
    /// Bytes the payload contributes to the wire length.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Tcp(seg) => 20 + seg.data.len(),
            Payload::Udp(d) => 8 + d.data.wire_len(),
            Payload::Icmp(m) => 8 + m.payload_len,
            // SPI (4) + seq (4) + ciphertext (includes IV/padding) + ICV.
            Payload::Esp(e) => 8 + e.ciphertext.len() + e.icv.len(),
            Payload::HipControl(b) => b.len(),
        }
    }
}

/// TCP header flags.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// Synchronize (connection open).
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Finish (sender is done transmitting).
    pub fin: bool,
    /// Reset (abort the connection).
    pub rst: bool,
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.ack {
            s.push('A');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        write!(f, "[{s}]")
    }
}

impl TcpFlags {
    /// Just SYN.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// Just ACK.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };
    /// RST.
    pub const RST: TcpFlags = TcpFlags { syn: false, ack: false, fin: false, rst: true };
}

/// A TCP segment.
#[derive(Clone, Debug)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first data byte (or of SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgement (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Payload bytes.
    pub data: Bytes,
}

/// A UDP datagram.
#[derive(Clone, Debug)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// The payload.
    pub data: UdpData,
}

/// UDP payloads: opaque bytes, a tunneled inner packet (Teredo), or a DNS
/// message (kept structured to avoid a DNS codec nobody measures).
#[derive(Clone, Debug)]
pub enum UdpData {
    /// Opaque application bytes.
    Raw(Bytes),
    /// A Teredo-encapsulated inner IPv6 packet (RFC 4380: IPv6-in-UDP).
    Teredo(Box<Packet>),
    /// A structured DNS message.
    Dns(crate::dns::DnsMessage),
}

impl UdpData {
    /// Bytes on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            UdpData::Raw(b) => b.len(),
            UdpData::Teredo(p) => p.wire_len(),
            UdpData::Dns(m) => m.wire_len(),
        }
    }
}

/// An ICMP message (echo only; that is all the experiments need).
#[derive(Clone, Debug)]
pub struct IcmpMessage {
    /// What kind of ICMP message.
    pub kind: IcmpKind,
    /// Identifier distinguishing concurrent ping sessions.
    pub ident: u16,
    /// Sequence number within a session.
    pub seq: u16,
    /// Size of the echo payload (bytes are never inspected, only counted).
    pub payload_len: usize,
}

/// ICMP message kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcmpKind {
    /// Ping request (hosts auto-reply).
    EchoRequest,
    /// Ping reply.
    EchoReply,
    /// Destination unreachable (sent by NAT/routers on drops when enabled).
    Unreachable,
}

/// An IPsec ESP packet as produced by the HIP BEET data plane.
#[derive(Clone, Debug)]
pub struct EspPacket {
    /// Security Parameter Index identifying the SA at the receiver.
    pub spi: u32,
    /// Monotonic sequence number (anti-replay).
    pub seq: u32,
    /// IV + AES-CBC ciphertext of the inner payload. Real bytes.
    pub ciphertext: Bytes,
    /// Truncated HMAC-SHA-256 integrity check value. Real bytes.
    pub icv: Bytes,
}

/// Convenience constructors used across the workspace and in tests.
pub fn v4(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(a, b, c, d))
}

/// Builds an IPv6 address from eight segments.
pub fn v6(segs: [u16; 8]) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(
        segs[0], segs[1], segs[2], segs[3], segs[4], segs[5], segs[6], segs[7],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_tcp() {
        let pkt = Packet::new(
            v4(10, 0, 0, 1),
            v4(10, 0, 0, 2),
            Payload::Tcp(TcpSegment {
                src_port: 1000,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 65535,
                data: Bytes::new(),
            }),
        );
        // 20 IP + 20 TCP
        assert_eq!(pkt.wire_len(), 40);
        assert_eq!(pkt.protocol(), proto::TCP);
    }

    #[test]
    fn wire_len_ipv6_header() {
        let pkt = Packet::new(
            v6([0x2001, 0, 0, 0, 0, 0, 0, 1]),
            v6([0x2001, 0, 0, 0, 0, 0, 0, 2]),
            Payload::Icmp(IcmpMessage {
                kind: IcmpKind::EchoRequest,
                ident: 1,
                seq: 1,
                payload_len: 56,
            }),
        );
        assert_eq!(pkt.wire_len(), 40 + 8 + 56);
    }

    #[test]
    fn wire_len_teredo_nesting() {
        let inner = Packet::new(
            v6([0x2001, 0, 0, 0, 0, 0, 0, 1]),
            v6([0x2001, 0, 0, 0, 0, 0, 0, 2]),
            Payload::Udp(UdpDatagram {
                src_port: 1,
                dst_port: 2,
                data: UdpData::Raw(Bytes::from_static(b"hello")),
            }),
        );
        let inner_len = inner.wire_len();
        let outer = Packet::new(
            v4(192, 0, 2, 1),
            v4(192, 0, 2, 2),
            Payload::Udp(UdpDatagram {
                src_port: 3544,
                dst_port: 3544,
                data: UdpData::Teredo(Box::new(inner)),
            }),
        );
        // Outer v4 IP (20) + UDP (8) + full inner packet.
        assert_eq!(outer.wire_len(), 20 + 8 + inner_len);
    }

    #[test]
    fn esp_wire_len_counts_crypto_bytes() {
        let pkt = Packet::new(
            v4(1, 2, 3, 4),
            v4(5, 6, 7, 8),
            Payload::Esp(EspPacket {
                spi: 0x1234,
                seq: 9,
                ciphertext: Bytes::from(vec![0u8; 64]),
                icv: Bytes::from(vec![0u8; 16]),
            }),
        );
        assert_eq!(pkt.wire_len(), 20 + 8 + 64 + 16);
    }

    #[test]
    fn flags_debug_compact() {
        assert_eq!(format!("{:?}", TcpFlags::SYN_ACK), "[SA]");
        assert_eq!(format!("{:?}", TcpFlags::RST), "[R]");
    }
}
