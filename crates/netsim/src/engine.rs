//! The discrete-event simulation engine.
//!
//! A calendar queue ([`crate::sched::CalendarQueue`]) orders events by
//! `(time, sequence)`; the sequence number makes simultaneous events
//! FIFO, so a run is fully deterministic given the seed. Nodes are trait
//! objects that receive packets and timers through a [`Ctx`] handle
//! which is the *only* way to affect the world — nodes cannot reach into
//! each other, mirroring the shared-nothing structure the Rust Atomics &
//! Locks / Rayon guidance favours (determinism inside a run; parallelism
//! across runs).
//!
//! Timers come in two flavours: fire-and-forget ([`Ctx::set_timer`])
//! and cancellable ([`Ctx::set_timer_cancellable`]), which returns a
//! generation-stamped [`TimerToken`]. Cancellation is lazy — the queued
//! event stays put and is discarded at pop time if its generation no
//! longer matches — so cancelling never perturbs the RNG draw order or
//! the schedule of other events, keeping traces identical whether or
//! not a protocol layer bothers to cancel.

use crate::link::{DropCause, Endpoint, Link, LinkId, LinkParams, NodeId, TxResult};
use crate::packet::{split_gso, Packet, Payload, TcpSegment};
use crate::sched::CalendarQueue;
use crate::time::{SimDuration, SimTime};
use crate::trace::{PktInfo, Trace, TraceData};
use obs::{CtrId, HistId, MetricsRegistry};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::any::Any;

/// Pre-registered handles for the engine's own metrics, so the
/// dispatch fast path bumps an index instead of hashing a name.
#[derive(Clone, Copy)]
pub(crate) struct EngineIds {
    ev_packet: CtrId,
    ev_timer: CtrId,
    ev_linktx: CtrId,
    pkt_bytes: HistId,
    link_drops: CtrId,
}

impl EngineIds {
    fn register(m: &mut MetricsRegistry) -> Self {
        EngineIds {
            ev_packet: m.counter("engine.ev.packet"),
            ev_timer: m.counter("engine.ev.timer"),
            ev_linktx: m.counter("engine.ev.linktx"),
            pkt_bytes: m.hist("engine.pkt.bytes"),
            link_drops: m.counter("link.drops"),
        }
    }
}

fn pkt_info(pkt: &Packet) -> PktInfo {
    PktInfo { src: pkt.src, dst: pkt.dst, proto: pkt.protocol(), len: pkt.wire_len() as u32 }
}

/// A timer registration: the node-local `owner` routes the expiry to the
/// right sub-layer, `token` is owner-defined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerHandle {
    /// Which sub-layer of the node should receive the expiry.
    pub owner: TimerOwner,
    /// Owner-defined payload.
    pub token: u64,
}

/// Which layer of a node owns a timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimerOwner {
    /// The TCP layer (retransmission, time-wait).
    Tcp,
    /// The layer-3.5 shim (HIP retransmissions, SA lifetimes).
    Shim,
    /// An application, by slot index.
    App(usize),
    /// The node implementation itself (NAT GC, Teredo refresh, ...).
    Node,
}

/// A handle for a cancellable timer: a slot in the engine's generation
/// table plus the generation it was armed under. Cancelling or firing
/// bumps the generation, so stale queue entries (and stale cancels) are
/// recognised and ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerToken {
    slot: u32,
    gen: u32,
}

impl TimerToken {
    /// Opaque numeric identity (slot and generation packed together),
    /// used to correlate timer records in traces.
    pub fn id(self) -> u64 {
        ((self.slot as u64) << 32) | self.gen as u64
    }
}

/// Slot table backing [`TimerToken`]: `gens[slot]` is the live
/// generation; a token is live iff its generation matches.
#[derive(Default)]
struct TimerSlots {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlots {
    fn alloc(&mut self) -> TimerToken {
        match self.free.pop() {
            Some(slot) => TimerToken { slot, gen: self.gens[slot as usize] },
            None => {
                self.gens.push(0);
                TimerToken { slot: (self.gens.len() - 1) as u32, gen: 0 }
            }
        }
    }

    fn is_live(&self, t: TimerToken) -> bool {
        self.gens.get(t.slot as usize) == Some(&t.gen)
    }

    /// Invalidates the token and recycles its slot. Returns whether the
    /// token was still live (false = already fired or cancelled).
    fn retire(&mut self, t: TimerToken) -> bool {
        if !self.is_live(t) {
            return false;
        }
        self.gens[t.slot as usize] = self.gens[t.slot as usize].wrapping_add(1);
        self.free.push(t.slot);
        true
    }
}

/// An event in the queue.
#[derive(Debug)]
pub enum Event {
    /// A packet arrives at `node` on `iface`.
    PacketArrive {
        /// Receiving node.
        node: NodeId,
        /// Interface index on that node ([`IFACE_INTERNAL`] = loopback).
        iface: usize,
        /// The packet.
        pkt: Packet,
    },
    /// A timer fires at `node`.
    Timer {
        /// The node whose timer expired.
        node: NodeId,
        /// The registration being fired.
        timer: TimerHandle,
    },
    /// A cancellable timer fires at `node` — skipped without dispatch
    /// if `token` was cancelled in the meantime.
    CancellableTimer {
        /// The node whose timer expired.
        node: NodeId,
        /// The registration being fired.
        timer: TimerHandle,
        /// The generation stamp checked at pop time.
        token: TimerToken,
    },
    /// A deferred link transmission (packet leaves `from` once its CPU
    /// processing completes; link queueing is resolved at this moment).
    LinkTx {
        /// Transmitting node.
        from: NodeId,
        /// Link to transmit on.
        link: LinkId,
        /// The packet.
        pkt: Packet,
    },
    /// A fault-injection transition (see [`crate::fault`]). Applied by
    /// the engine itself, where the world is owned; every application is
    /// traced and counted so episodes are visible in run manifests.
    Fault {
        /// The transition to apply.
        action: FaultAction,
    },
}

/// A single fault transition the engine knows how to apply. Higher-level
/// episodes ([`crate::fault::FaultEpisode`]) compile down to one or more
/// of these scheduled through the ordinary calendar queue, so fault
/// timing obeys the same `(time, seq)` determinism as everything else.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Administratively cut a link (both directions).
    LinkDown(LinkId),
    /// Restore an administratively cut link.
    LinkUp(LinkId),
    /// Start a loss burst on a link: effective loss becomes
    /// `max(params.loss, loss)`.
    BurstStart {
        /// The affected link.
        link: LinkId,
        /// Burst loss probability in [0, 1).
        loss: f64,
    },
    /// End a loss burst.
    BurstEnd {
        /// The affected link.
        link: LinkId,
    },
    /// Add extra one-way delay to a link.
    SpikeStart {
        /// The affected link.
        link: LinkId,
        /// The extra delay.
        extra: SimDuration,
    },
    /// Remove the extra delay.
    SpikeEnd {
        /// The affected link.
        link: LinkId,
    },
    /// Crash a node: its stack is reset via [`Node::on_crash`] and all
    /// traffic and timers addressed to it are discarded until restart.
    NodeCrash(NodeId),
    /// Restart a crashed node via [`Node::on_restart`].
    NodeRestart(NodeId),
    /// Sever a set of links at once (a network partition). The set is
    /// tracked separately from [`FaultAction::LinkDown`] so healing a
    /// partition never un-cuts an explicitly downed link.
    Partition {
        /// The links crossing the partition boundary.
        links: Vec<LinkId>,
    },
    /// Heal a partition.
    Heal {
        /// The links to restore.
        links: Vec<LinkId>,
    },
}

/// Interface index used for packets a node delivers to itself (e.g. the
/// decrypted inner packet of an ESP tunnel re-entering layer 4).
pub const IFACE_INTERNAL: usize = usize::MAX;

/// A simulated node: host, router, NAT box, Teredo relay, ...
pub trait Node: Any {
    /// Called once before the simulation starts running.
    fn start(&mut self, _ctx: &mut Ctx) {}

    /// A packet arrived on `iface`.
    fn handle_packet(&mut self, iface: usize, pkt: Packet, ctx: &mut Ctx);

    /// A timer this node registered has fired.
    fn handle_timer(&mut self, _timer: TimerHandle, _ctx: &mut Ctx) {}

    /// The node just crashed (a `NodeCrash` fault): drop volatile state
    /// and cancel owned timers. Default: no-op.
    fn on_crash(&mut self, _ctx: &mut Ctx) {}

    /// The node just came back up (a `NodeRestart` fault): re-initialise
    /// as on [`Node::start`]. Default: no-op.
    fn on_restart(&mut self, _ctx: &mut Ctx) {}

    /// Downcasting support for experiment harnesses and tests.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The node/link topology.
#[derive(Default)]
pub struct World {
    nodes: Vec<Option<Box<dyn Node>>>,
    links: Vec<Link>,
}

impl World {
    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two endpoints with a new link.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint, params: LinkParams) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link::new(id, a, b, params));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node, downcast to `T`.
    ///
    /// # Panics
    /// Panics if the node is currently being dispatched (taken out).
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0].as_ref().expect("node is mid-dispatch").as_any().downcast_ref()
    }

    /// Mutable access to a node, downcast to `T`.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0].as_mut().expect("node is mid-dispatch").as_any_mut().downcast_mut()
    }

    /// The link registry (used by tests to inspect parameters).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Mutable link registry (topology builders patch endpoint iface
    /// indices that are only known after router interfaces are added).
    pub fn links_mut(&mut self) -> &mut [Link] {
        &mut self.links
    }
}

/// The dispatch context handed to nodes. All world side effects go
/// through here: transmitting on links, arming timers, tracing, RNG.
pub struct Ctx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node being dispatched.
    pub node: NodeId,
    links: &'a mut [Link],
    rng: &'a mut StdRng,
    trace: &'a mut Trace,
    slots: &'a mut TimerSlots,
    stats: &'a mut SimStats,
    metrics: &'a mut MetricsRegistry,
    ids: EngineIds,
    emitted: Vec<(SimTime, Event)>,
}

impl Ctx<'_> {
    /// Transmits `pkt` on `link`. Loss and queueing are resolved here;
    /// delivery (if any) is scheduled automatically.
    pub fn transmit(&mut self, link: LinkId, pkt: Packet) {
        if matches!(&pkt.payload, Payload::Tcp(seg) if seg.gso_mss > 0) {
            return self.transmit_gso(link, &pkt);
        }
        let l = &mut self.links[link.0];
        let loss_draw: f64 = self.rng.random();
        let jitter_draw: f64 = self.rng.random();
        match l.transmit(self.node, pkt.wire_len(), self.now, loss_draw, jitter_draw) {
            TxResult::Deliver { to, at } => {
                self.trace.record(self.now, self.node, || TraceData::Tx(pkt_info(&pkt)));
                self.emitted.push((at, Event::PacketArrive { node: to.node, iface: to.iface, pkt }));
            }
            TxResult::Dropped { cause } => {
                self.metrics.inc(self.ids.link_drops);
                if matches!(cause, DropCause::Burst | DropCause::LinkDown | DropCause::Partition) {
                    self.metrics.add_name(cause.reason(), 1);
                }
                self.trace.record(self.now, self.node, || TraceData::Drop {
                    pkt: Some(pkt_info(&pkt)),
                    reason: cause.reason().to_string(),
                });
            }
        }
    }

    /// Merged-mode GSO transmit (GRO in one step): the super-segment is
    /// charged to the link as its individual MTU frames — identical
    /// wire bytes, serialization delays, loss/jitter draws, drop traces
    /// and counters — but each surviving run of contiguous frames is
    /// delivered as ONE merged segment at the run's last-frame arrival
    /// time, so the receiver handles one event (and sends one ACK) per
    /// run instead of one per frame. Byte streams are identical to
    /// unbatched; delivery timing within a run is approximated by its
    /// tail. A lost frame splits the super: the runs around it arrive
    /// separately and retransmission covers the gap exactly as in
    /// per-frame mode.
    fn transmit_gso(&mut self, link: LinkId, pkt: &Packet) {
        let Payload::Tcp(seg) = &pkt.payload else { return };
        let frames = split_gso(seg);
        let mut run_start: Option<usize> = None;
        let mut run_last = 0usize;
        let mut run_to: Option<Endpoint> = None;
        let mut run_at = self.now;
        for (i, frame) in frames.iter().enumerate() {
            let fpkt = Packet::new(pkt.src, pkt.dst, Payload::Tcp(frame.clone()));
            let l = &mut self.links[link.0];
            let loss_draw: f64 = self.rng.random();
            let jitter_draw: f64 = self.rng.random();
            match l.transmit(self.node, fpkt.wire_len(), self.now, loss_draw, jitter_draw) {
                TxResult::Deliver { to, at } => {
                    self.trace.record(self.now, self.node, || TraceData::Tx(pkt_info(&fpkt)));
                    if run_start.is_none() {
                        run_start = Some(i);
                    }
                    run_last = i;
                    run_to = Some(to);
                    run_at = at;
                }
                TxResult::Dropped { cause } => {
                    self.metrics.inc(self.ids.link_drops);
                    if matches!(cause, DropCause::Burst | DropCause::LinkDown | DropCause::Partition) {
                        self.metrics.add_name(cause.reason(), 1);
                    }
                    self.trace.record(self.now, self.node, || TraceData::Drop {
                        pkt: Some(pkt_info(&fpkt)),
                        reason: cause.reason().to_string(),
                    });
                    if let (Some(start), Some(to)) = (run_start.take(), run_to.take()) {
                        self.emit_merged(pkt, &frames, start, run_last, to, run_at);
                    }
                }
            }
        }
        if let (Some(start), Some(to)) = (run_start, run_to) {
            self.emit_merged(pkt, &frames, start, run_last, to, run_at);
        }
    }

    /// Delivers frames `start..=last` of a GSO super as one merged
    /// segment arriving at `at` (the run tail's arrival time).
    fn emit_merged(
        &mut self,
        pkt: &Packet,
        frames: &[TcpSegment],
        start: usize,
        last: usize,
        to: Endpoint,
        at: SimTime,
    ) {
        let Payload::Tcp(seg) = &pkt.payload else { return };
        let merged = if start == last {
            frames[start].clone()
        } else {
            let mss = seg.gso_mss as usize;
            let off = start * mss;
            let end = ((last + 1) * mss).min(seg.data.len());
            TcpSegment {
                src_port: seg.src_port,
                dst_port: seg.dst_port,
                seq: frames[start].seq,
                ack: seg.ack,
                flags: frames[last].flags,
                window: seg.window,
                data: seg.data.slice(off..end),
                gso_mss: 0,
            }
        };
        self.emitted.push((
            at,
            Event::PacketArrive {
                node: to.node,
                iface: to.iface,
                pkt: Packet::new(pkt.src, pkt.dst, Payload::Tcp(merged)),
            },
        ));
    }

    /// Transmits `pkt` on `link` after `delay` (models CPU processing
    /// before the packet reaches the NIC; link queueing is evaluated at
    /// departure time, not now).
    pub fn transmit_after(&mut self, delay: SimDuration, link: LinkId, pkt: Packet) {
        if delay == SimDuration::ZERO {
            self.transmit(link, pkt);
        } else {
            self.emitted
                .push((self.now + delay, Event::LinkTx { from: self.node, link, pkt }));
        }
    }

    /// Delivers `pkt` back to this node's own internal interface after
    /// `delay` (decrypted tunnel payloads re-entering the upper stack).
    pub fn deliver_local(&mut self, delay: SimDuration, pkt: Packet) {
        self.emitted.push((
            self.now + delay,
            Event::PacketArrive { node: self.node, iface: IFACE_INTERNAL, pkt },
        ));
    }

    /// Arms a fire-and-forget timer on the current node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: TimerHandle) {
        self.emitted.push((self.now + delay, Event::Timer { node: self.node, timer }));
    }

    /// Arms a cancellable timer on the current node after `delay`. The
    /// returned token can be passed to [`Ctx::cancel_timer`]; a timer
    /// that fires retires its own token, so cancelling after expiry is
    /// a harmless no-op.
    pub fn set_timer_cancellable(&mut self, delay: SimDuration, timer: TimerHandle) -> TimerToken {
        let token = self.slots.alloc();
        self.emitted
            .push((self.now + delay, Event::CancellableTimer { node: self.node, timer, token }));
        token
    }

    /// Cancels a timer armed with [`Ctx::set_timer_cancellable`].
    /// Returns whether the timer was still pending. Lazy: the queued
    /// event is discarded at pop time, so cancellation never changes
    /// the timing or RNG draws of other events.
    pub fn cancel_timer(&mut self, token: TimerToken) -> bool {
        let was_live = self.slots.retire(token);
        if was_live {
            self.stats.timers_cancelled += 1;
            if self.trace.timers_enabled() {
                self.trace.record(self.now, self.node, || TraceData::TimerCancel {
                    token: token.id(),
                });
            }
        }
        was_live
    }

    /// Uniform f64 in [0,1).
    pub fn random_f64(&mut self) -> f64 {
        self.rng.random()
    }

    /// Uniform u64.
    pub fn random_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// Uniform value in `[0, n)`.
    pub fn random_below(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n)
    }

    /// Direct access to the seeded RNG (for key generation etc.).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Records a state-change trace entry.
    pub fn trace_state(&mut self, detail: impl FnOnce() -> String) {
        self.trace.record(self.now, self.node, || TraceData::State { detail: detail() });
    }

    /// Records a drop trace entry (no packet in hand; see
    /// [`Ctx::trace_drop_pkt`] when the packet is known).
    pub fn trace_drop(&mut self, detail: impl FnOnce() -> String) {
        self.trace.record(self.now, self.node, || TraceData::Drop { pkt: None, reason: detail() });
    }

    /// Records a drop trace entry carrying the dropped packet's
    /// identity, so harnesses can filter drops by protocol/address.
    pub fn trace_drop_pkt(&mut self, pkt: &Packet, reason: impl FnOnce() -> String) {
        if self.trace.is_enabled() {
            let info = pkt_info(pkt);
            self.trace
                .record(self.now, self.node, || TraceData::Drop { pkt: Some(info), reason: reason() });
        }
    }

    /// The metrics registry (counters, gauges, histograms). Recording
    /// is a no-op behind one branch when metrics are disabled, and
    /// never perturbs the event schedule or RNG.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }
}

/// Counters the engine keeps while running. Snapshot via
/// [`Sim::stats`]; cheap enough to maintain unconditionally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events pushed into the queue (all kinds).
    pub scheduled: u64,
    /// Events popped and dispatched to a node or link.
    pub dispatched: u64,
    /// Cancellable timers retired before firing.
    pub timers_cancelled: u64,
    /// Cancelled timer events discarded at pop time (never dispatched).
    pub stale_timer_pops: u64,
    /// Pushes that took the O(1) wheel fast path.
    pub queue_wheel_pushes: u64,
    /// Pushes that landed in the far-future overflow heap.
    pub queue_overflow_pushes: u64,
    /// Events migrated from overflow into the active window.
    pub queue_migrations: u64,
    /// Same-tick packet runs dispatched under one node checkout
    /// (runs of length ≥ 2 only).
    pub coalesced_runs: u64,
    /// Packet events that rode in those runs (run lengths summed).
    pub coalesced_events: u64,
}

/// How [`Sim::run_to_quiescence`] ended.
#[must_use = "check whether the run actually quiesced or hit the safety cap"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained: the simulation reached natural quiescence
    /// after dispatching this many events.
    Quiescent(u64),
    /// The `max_events` safety cap was hit with events still queued —
    /// the simulation was cut off, not finished.
    CapReached(u64),
}

impl RunOutcome {
    /// Events dispatched, regardless of how the run ended.
    pub fn processed(self) -> u64 {
        match self {
            RunOutcome::Quiescent(n) | RunOutcome::CapReached(n) => n,
        }
    }

    /// Whether the queue drained naturally.
    pub fn is_quiescent(self) -> bool {
        matches!(self, RunOutcome::Quiescent(_))
    }
}

/// The simulator: world + clock + event queue.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<Event>,
    /// The topology; public so harnesses can build and inspect it.
    pub world: World,
    rng: StdRng,
    /// Trace buffer (disabled by default).
    pub trace: Trace,
    /// Metrics registry (enabled by default; see
    /// [`Sim::set_metrics_enabled`]). Observations never perturb the
    /// event schedule or RNG, so toggling this leaves runs
    /// bit-identical.
    pub metrics: MetricsRegistry,
    engine_ids: EngineIds,
    started: bool,
    slots: TimerSlots,
    stats: SimStats,
    /// `crashed[node]` while a `NodeCrash` fault is in effect: packets,
    /// timers and transmissions involving the node are discarded.
    crashed: Vec<bool>,
    /// Recycled `Ctx::emitted` buffer so each dispatch reuses one
    /// allocation instead of growing a fresh `Vec`.
    scratch_emitted: Vec<(SimTime, Event)>,
    /// Recycled buffer for same-tick packet runs (see `dispatch_run`).
    scratch_run: Vec<(usize, Packet)>,
}

impl Sim {
    /// Creates a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let mut metrics = MetricsRegistry::new();
        let engine_ids = EngineIds::register(&mut metrics);
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            world: World::default(),
            rng: StdRng::seed_from_u64(seed),
            trace: Trace::disabled(),
            metrics,
            engine_ids,
            started: false,
            slots: TimerSlots::default(),
            stats: SimStats::default(),
            crashed: Vec::new(),
            scratch_emitted: Vec::new(),
            scratch_run: Vec::new(),
        }
    }

    /// Turns metric recording on or off (on by default). Purely
    /// observational either way — same-seed runs are bit-identical
    /// regardless of this setting.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics.set_enabled(on);
    }

    /// Takes the accumulated metrics, leaving a fresh enabled registry
    /// (with the engine's own metrics re-registered) in place.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        let mut fresh = MetricsRegistry::new();
        self.engine_ids = EngineIds::register(&mut fresh);
        std::mem::replace(&mut self.metrics, fresh)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counter snapshot, with the calendar queue's internals folded in.
    pub fn stats(&self) -> SimStats {
        let q = self.queue.stats();
        SimStats {
            queue_wheel_pushes: q.pushed_wheel,
            queue_overflow_pushes: q.pushed_overflow,
            queue_migrations: q.migrated,
            ..self.stats
        }
    }

    /// Schedules an event after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, event: Event) {
        let at = self.now + delay;
        self.seq += 1;
        self.stats.scheduled += 1;
        self.queue.push(at, self.seq, event);
    }

    /// Schedules a fault transition after `delay` (sugar for pushing an
    /// [`Event::Fault`] through the ordinary queue).
    pub fn schedule_fault(&mut self, delay: SimDuration, action: FaultAction) {
        self.schedule(delay, Event::Fault { action });
    }

    /// Whether a `NodeCrash` fault is currently in effect for `node`.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.get(node.0).copied().unwrap_or(false)
    }

    fn set_crashed(&mut self, node: NodeId, down: bool) {
        if self.crashed.len() <= node.0 {
            self.crashed.resize(node.0 + 1, false);
        }
        self.crashed[node.0] = down;
    }

    /// Calls `start` on every node exactly once (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.world.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.start(ctx));
        }
    }

    /// Runs until the queue is empty or `deadline` passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start();
        let mut processed = 0;
        while let Some((at, _seq)) = self.queue.peek_key() {
            if at > deadline {
                break;
            }
            let (at, _seq, event) = self.queue.pop().expect("peeked");
            if self.discard_if_stale(&event) {
                continue;
            }
            self.now = at;
            processed += self.dispatch_run(event, u64::MAX);
        }
        // Time advances to the deadline even if the queue drained early.
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Runs until no events remain (natural quiescence) or the
    /// `max_events` safety cap is hit; the [`RunOutcome`] says which —
    /// a capped run means the simulation was cut off mid-flight, which
    /// callers should treat differently from a drained queue.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> RunOutcome {
        self.start();
        let mut processed = 0;
        while processed < max_events {
            let Some((at, _seq, event)) = self.queue.pop() else {
                return RunOutcome::Quiescent(processed);
            };
            if self.discard_if_stale(&event) {
                continue;
            }
            self.now = at;
            processed += self.dispatch_run(event, max_events - processed);
        }
        if self.queue.is_empty() {
            RunOutcome::Quiescent(processed)
        } else {
            RunOutcome::CapReached(processed)
        }
    }

    /// True iff `event` is a cancelled timer that must be dropped
    /// unprocessed (counted, but invisible to nodes, time, and RNG).
    fn discard_if_stale(&mut self, event: &Event) -> bool {
        if let Event::CancellableTimer { token, .. } = event {
            if !self.slots.is_live(*token) {
                self.stats.stale_timer_pops += 1;
                return true;
            }
        }
        false
    }

    /// Dispatches `event`. If it is a `PacketArrive`, also drains the
    /// run of immediately-following queued `PacketArrive`s for the same
    /// node at the same timestamp (stopping at anything else) and
    /// handles the whole run under a single node checkout — one `Ctx`
    /// build and one emission drain instead of one per packet. Event
    /// order, emission order and sequence numbers are unchanged: the
    /// run is exactly the events that would have popped consecutively,
    /// and nothing a handler does can reorder packets already queued
    /// ahead of its own emissions. Returns how many events were
    /// consumed (≥ 1); `limit` caps the run for `run_to_quiescence`.
    fn dispatch_run(&mut self, event: Event, limit: u64) -> u64 {
        let Event::PacketArrive { node, iface, pkt } = event else {
            self.dispatch(event);
            return 1;
        };
        self.stats.dispatched += 1;
        self.metrics.inc(self.engine_ids.ev_packet);
        self.metrics.observe(self.engine_ids.pkt_bytes, pkt.wire_len() as u64);
        let mut run = std::mem::take(&mut self.scratch_run);
        run.clear();
        run.push((iface, pkt));
        while (run.len() as u64) < limit {
            match self.queue.peek() {
                Some((at, _seq, Event::PacketArrive { node: n, .. }))
                    if at == self.now && *n == node => {}
                _ => break,
            }
            let Some((_, _, Event::PacketArrive { iface, pkt, .. })) = self.queue.pop() else {
                unreachable!("peeked a PacketArrive");
            };
            self.stats.dispatched += 1;
            self.metrics.inc(self.engine_ids.ev_packet);
            self.metrics.observe(self.engine_ids.pkt_bytes, pkt.wire_len() as u64);
            run.push((iface, pkt));
        }
        let count = run.len() as u64;
        if count > 1 {
            self.stats.coalesced_runs += 1;
            self.stats.coalesced_events += count;
        }
        if self.world.nodes.get(node.0).map(Option::is_some) != Some(true) {
            // Node removed mid-flight; drop silently.
        } else if self.is_crashed(node) {
            for (_, pkt) in &run {
                self.trace.record(self.now, node, || TraceData::Drop {
                    pkt: Some(pkt_info(pkt)),
                    reason: "fault.node_down".to_string(),
                });
            }
        } else {
            self.with_node(node, |n, ctx| {
                for (iface, pkt) in run.drain(..) {
                    ctx.trace.record(ctx.now, node, || TraceData::Rx(pkt_info(&pkt)));
                    n.handle_packet(iface, pkt, ctx);
                }
            });
        }
        run.clear();
        self.scratch_run = run;
        count
    }

    fn dispatch(&mut self, event: Event) {
        self.stats.dispatched += 1;
        match event {
            Event::PacketArrive { node, iface, pkt } => {
                self.metrics.inc(self.engine_ids.ev_packet);
                self.metrics.observe(self.engine_ids.pkt_bytes, pkt.wire_len() as u64);
                if self.world.nodes.get(node.0).map(Option::is_some) != Some(true) {
                    return; // node removed mid-flight; drop silently
                }
                if self.is_crashed(node) {
                    self.trace.record(self.now, node, || TraceData::Drop {
                        pkt: Some(pkt_info(&pkt)),
                        reason: "fault.node_down".to_string(),
                    });
                    return;
                }
                self.with_node(node, |n, ctx| {
                    ctx.trace.record(ctx.now, node, || TraceData::Rx(pkt_info(&pkt)));
                    n.handle_packet(iface, pkt, ctx);
                });
            }
            Event::Timer { node, timer } => {
                self.metrics.inc(self.engine_ids.ev_timer);
                if self.world.nodes.get(node.0).map(Option::is_some) != Some(true) {
                    return;
                }
                if self.is_crashed(node) {
                    return; // timers die with the node
                }
                if self.trace.timers_enabled() {
                    self.trace.record(self.now, node, || TraceData::TimerFire {
                        owner: timer.owner,
                        token: timer.token,
                    });
                }
                self.with_node(node, |n, ctx| n.handle_timer(timer, ctx));
            }
            Event::CancellableTimer { node, timer, token } => {
                self.metrics.inc(self.engine_ids.ev_timer);
                // Retire before dispatch so the handler can re-arm and
                // a late cancel of this token is a no-op.
                self.slots.retire(token);
                if self.world.nodes.get(node.0).map(Option::is_some) != Some(true) {
                    return;
                }
                if self.is_crashed(node) {
                    return;
                }
                if self.trace.timers_enabled() {
                    self.trace.record(self.now, node, || TraceData::TimerFire {
                        owner: timer.owner,
                        token: timer.token,
                    });
                }
                self.with_node(node, |n, ctx| n.handle_timer(timer, ctx));
            }
            Event::LinkTx { from, link, pkt } => {
                self.metrics.inc(self.engine_ids.ev_linktx);
                // RNG draws happen unconditionally (before the crash
                // check) so a crash never shifts the draw sequence of
                // the surviving traffic within the same plan.
                let loss_draw: f64 = self.rng.random();
                let jitter_draw: f64 = self.rng.random();
                if self.is_crashed(from) {
                    self.trace.record(self.now, from, || TraceData::Drop {
                        pkt: Some(pkt_info(&pkt)),
                        reason: "fault.node_down".to_string(),
                    });
                    return;
                }
                let l = &mut self.world.links[link.0];
                match l.transmit(from, pkt.wire_len(), self.now, loss_draw, jitter_draw) {
                    TxResult::Deliver { to, at } => {
                        self.trace.record(self.now, from, || TraceData::Tx(pkt_info(&pkt)));
                        self.seq += 1;
                        self.stats.scheduled += 1;
                        self.queue.push(
                            at,
                            self.seq,
                            Event::PacketArrive { node: to.node, iface: to.iface, pkt },
                        );
                    }
                    TxResult::Dropped { cause } => {
                        self.metrics.inc(self.engine_ids.link_drops);
                        if matches!(
                            cause,
                            DropCause::Burst | DropCause::LinkDown | DropCause::Partition
                        ) {
                            self.metrics.add_name(cause.reason(), 1);
                        }
                        self.trace.record(self.now, from, || TraceData::Drop {
                            pkt: Some(pkt_info(&pkt)),
                            reason: cause.reason().to_string(),
                        });
                    }
                }
            }
            Event::Fault { action } => self.apply_fault(action),
        }
    }

    /// Applies one fault transition: mutates link/node fault state,
    /// invokes crash/restart hooks, and makes the transition visible in
    /// both the trace and the metrics registry.
    fn apply_fault(&mut self, action: FaultAction) {
        let (node, counter, detail) = match &action {
            FaultAction::LinkDown(l) => {
                self.world.links[l.0].set_admin_down(true);
                (self.world.links[l.0].a.node, "fault.link_down.episodes", format!("link {} down", l.0))
            }
            FaultAction::LinkUp(l) => {
                self.world.links[l.0].set_admin_down(false);
                (self.world.links[l.0].a.node, "fault.link_up.episodes", format!("link {} up", l.0))
            }
            FaultAction::BurstStart { link, loss } => {
                self.world.links[link.0].set_burst_loss(*loss);
                (
                    self.world.links[link.0].a.node,
                    "fault.loss_burst.episodes",
                    format!("link {} loss burst p={loss:.3}", link.0),
                )
            }
            FaultAction::BurstEnd { link } => {
                self.world.links[link.0].set_burst_loss(0.0);
                (self.world.links[link.0].a.node, "fault.loss_burst.cleared", format!("link {} loss burst cleared", link.0))
            }
            FaultAction::SpikeStart { link, extra } => {
                self.world.links[link.0].set_extra_latency(*extra);
                (
                    self.world.links[link.0].a.node,
                    "fault.latency_spike.episodes",
                    format!("link {} latency spike +{:.1}ms", link.0, extra.as_secs_f64() * 1e3),
                )
            }
            FaultAction::SpikeEnd { link } => {
                self.world.links[link.0].set_extra_latency(SimDuration::ZERO);
                (self.world.links[link.0].a.node, "fault.latency_spike.cleared", format!("link {} latency spike cleared", link.0))
            }
            FaultAction::NodeCrash(n) => (*n, "fault.node_crash.episodes", format!("node {} crash", n.0)),
            FaultAction::NodeRestart(n) => (*n, "fault.node_restart.episodes", format!("node {} restart", n.0)),
            FaultAction::Partition { links } => {
                for l in links {
                    self.world.links[l.0].set_partitioned(true);
                }
                let first = links.first().map(|l| self.world.links[l.0].a.node).unwrap_or(NodeId(0));
                (first, "fault.partition.episodes", format!("partition cut {} links", links.len()))
            }
            FaultAction::Heal { links } => {
                for l in links {
                    self.world.links[l.0].set_partitioned(false);
                }
                let first = links.first().map(|l| self.world.links[l.0].a.node).unwrap_or(NodeId(0));
                (first, "fault.heal.episodes", format!("healed {} links", links.len()))
            }
        };
        self.metrics.add_name(counter, 1);
        self.trace.record(self.now, node, || TraceData::Fault { detail });
        match action {
            // Idempotent: crashing a crashed node is a no-op (fault
            // plans may overlap crash windows).
            FaultAction::NodeCrash(n) if !self.is_crashed(n) => {
                // The crash hook runs first (with the node still "up")
                // so it can cancel timers through the context; only then
                // does the crashed flag start discarding traffic.
                if self.world.nodes.get(n.0).map(Option::is_some) == Some(true) {
                    self.with_node(n, |node, ctx| node.on_crash(ctx));
                }
                self.set_crashed(n, true);
            }
            // Idempotent: restarting a running node is a no-op (a
            // second boot would double-start listeners and apps).
            FaultAction::NodeRestart(n) if self.is_crashed(n) => {
                self.set_crashed(n, false);
                if self.world.nodes.get(n.0).map(Option::is_some) == Some(true) {
                    self.with_node(n, |node, ctx| node.on_restart(ctx));
                }
            }
            _ => {}
        }
    }

    /// Runs `f` with the node temporarily taken out of the world so the
    /// node gets `&mut self` while the context can still mutate links.
    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx)) {
        let mut node = self.world.nodes[id.0].take().expect("node exists and not mid-dispatch");
        let mut ctx = Ctx {
            now: self.now,
            node: id,
            links: &mut self.world.links,
            rng: &mut self.rng,
            trace: &mut self.trace,
            slots: &mut self.slots,
            stats: &mut self.stats,
            metrics: &mut self.metrics,
            ids: self.engine_ids,
            emitted: std::mem::take(&mut self.scratch_emitted),
        };
        f(node.as_mut(), &mut ctx);
        let mut emitted = std::mem::take(&mut ctx.emitted);
        self.world.nodes[id.0] = Some(node);
        for (at, event) in emitted.drain(..) {
            self.seq += 1;
            self.stats.scheduled += 1;
            self.queue.push(at, self.seq, event);
        }
        // Hand the (now empty) buffer back for the next dispatch.
        self.scratch_emitted = emitted;
    }

    /// Runs `f` against a node outside the event loop (e.g. to inject a
    /// command from an experiment harness), applying its emissions.
    pub fn with_node_ctx(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx)) {
        self.with_node(id, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{v4, IcmpKind, IcmpMessage, Payload};

    /// A node that counts received packets and echoes them back once.
    struct Echo {
        link: LinkId,
        received: u32,
        echo: bool,
    }

    impl Node for Echo {
        fn handle_packet(&mut self, _iface: usize, pkt: Packet, ctx: &mut Ctx) {
            self.received += 1;
            if self.echo {
                let reply = Packet::new(pkt.dst, pkt.src, pkt.payload.clone());
                ctx.transmit(self.link, reply);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn icmp_packet() -> Packet {
        Packet::new(
            v4(10, 0, 0, 1),
            v4(10, 0, 0, 2),
            Payload::Icmp(IcmpMessage { kind: IcmpKind::EchoRequest, ident: 1, seq: 1, payload_len: 56 }),
        )
    }

    fn two_node_sim() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(1);
        let a = sim.world.add_node(Box::new(Echo { link: LinkId(0), received: 0, echo: false }));
        let b = sim.world.add_node(Box::new(Echo { link: LinkId(0), received: 0, echo: true }));
        sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        (sim, a, b)
    }

    #[test]
    fn packet_travels_and_echoes() {
        let (mut sim, a, b) = two_node_sim();
        sim.schedule(
            SimDuration::ZERO,
            Event::PacketArrive { node: a, iface: 0, pkt: icmp_packet() },
        );
        // a does not echo, so we inject at a... actually send from a to b:
        sim.with_node_ctx(a, |_n, ctx| {
            ctx.transmit(LinkId(0), icmp_packet());
        });
        let outcome = sim.run_to_quiescence(1000);
        assert!(outcome.is_quiescent(), "small sim must drain");
        let n = outcome.processed();
        assert!(n >= 2, "at least delivery + echo, got {n}");
        assert_eq!(sim.world.node::<Echo>(b).unwrap().received, 1);
        assert_eq!(sim.world.node::<Echo>(a).unwrap().received, 2); // injected + echo
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut sim, a, _b) = two_node_sim();
            sim.rng = StdRng::seed_from_u64(seed);
            sim.with_node_ctx(a, |_n, ctx| ctx.transmit(LinkId(0), icmp_packet()));
            let _ = sim.run_to_quiescence(1000);
            sim.now().as_nanos()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, a, _b) = two_node_sim();
        sim.with_node_ctx(a, |_n, ctx| ctx.transmit(LinkId(0), icmp_packet()));
        // Deadline before the ~250 µs link latency: nothing delivered yet.
        let n = sim.run_until(SimTime(1000));
        assert_eq!(n, 0);
        assert_eq!(sim.now(), SimTime(1000));
        let n = sim.run_until(SimTime(1_000_000_000));
        assert!(n > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(20), TimerHandle { owner: TimerOwner::Node, token: 2 });
                ctx.set_timer(SimDuration::from_millis(10), TimerHandle { owner: TimerOwner::Node, token: 1 });
                ctx.set_timer(SimDuration::from_millis(20), TimerHandle { owner: TimerOwner::Node, token: 3 });
            }
            fn handle_packet(&mut self, _: usize, _: Packet, _: &mut Ctx) {}
            fn handle_timer(&mut self, t: TimerHandle, _: &mut Ctx) {
                self.fired.push(t.token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(0);
        let n = sim.world.add_node(Box::new(TimerNode { fired: vec![] }));
        let _ = sim.run_to_quiescence(100);
        // Token 1 first (earlier), then 2 before 3 (FIFO at equal times).
        assert_eq!(sim.world.node::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct CancelNode {
            pending: Vec<TimerToken>,
            fired: Vec<u64>,
        }
        impl Node for CancelNode {
            fn start(&mut self, ctx: &mut Ctx) {
                for tok in 1..=4u64 {
                    let t = ctx.set_timer_cancellable(
                        SimDuration::from_millis(10 * tok),
                        TimerHandle { owner: TimerOwner::Node, token: tok },
                    );
                    self.pending.push(t);
                }
                // Cancel 2 and 4 immediately; 1 and 3 must still fire.
                let second = self.pending[1];
                let fourth = self.pending[3];
                assert!(ctx.cancel_timer(second));
                assert!(ctx.cancel_timer(fourth));
                // Double-cancel is a no-op.
                assert!(!ctx.cancel_timer(second));
            }
            fn handle_packet(&mut self, _: usize, _: Packet, _: &mut Ctx) {}
            fn handle_timer(&mut self, t: TimerHandle, ctx: &mut Ctx) {
                self.fired.push(t.token);
                // Cancelling an already-fired token is a no-op.
                let mine = self.pending[(t.token - 1) as usize];
                assert!(!ctx.cancel_timer(mine));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(0);
        let n = sim.world.add_node(Box::new(CancelNode { pending: vec![], fired: vec![] }));
        let outcome = sim.run_to_quiescence(100);
        assert!(outcome.is_quiescent());
        assert_eq!(sim.world.node::<CancelNode>(n).unwrap().fired, vec![1, 3]);
        let stats = sim.stats();
        assert_eq!(stats.timers_cancelled, 2);
        assert_eq!(stats.stale_timer_pops, 2);
    }

    #[test]
    fn quiescence_cap_is_reported() {
        // An echo pair bouncing a packet forever: the cap must trip and
        // say so.
        let (mut sim, a, b) = two_node_sim();
        sim.world.node_mut::<Echo>(a).unwrap().echo = true;
        let _ = b;
        sim.with_node_ctx(a, |_n, ctx| ctx.transmit(LinkId(0), icmp_packet()));
        let outcome = sim.run_to_quiescence(10);
        assert_eq!(outcome, RunOutcome::CapReached(10));
        assert!(!outcome.is_quiescent());
    }

    #[test]
    fn stats_count_scheduled_and_dispatched() {
        let (mut sim, a, _b) = two_node_sim();
        sim.with_node_ctx(a, |_n, ctx| ctx.transmit(LinkId(0), icmp_packet()));
        let outcome = sim.run_to_quiescence(1000);
        let stats = sim.stats();
        assert_eq!(stats.dispatched, outcome.processed());
        assert!(stats.scheduled >= stats.dispatched);
    }
}
