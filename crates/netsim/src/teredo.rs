//! Teredo: IPv6 connectivity over UDP/IPv4 (RFC 4380).
//!
//! The paper measures HIP-over-Teredo because the HIP implementations of
//! the day lacked native NAT traversal (§VII): "we used Teredo in this
//! paper because the native support was not available". Teredo gives a
//! v4-only VM (EC2 has no native IPv6) an IPv6 address whose bits embed
//! the client's public IPv4 and UDP port, so relays can reach it through
//! NATs without per-peer state.
//!
//! Three components:
//! - [`TeredoClient`]: lives inside a [`crate::host::Host`], qualifies
//!   against a server (RS/RA over UDP), then tunnels IPv6 packets in UDP
//!   via a relay.
//! - [`TeredoServer`]: answers router solicitations with the observed
//!   external address/port ("origin indication").
//! - [`TeredoRelay`]: decapsulates client traffic, forwards it (to a
//!   native v6 network or straight back to another Teredo client), and
//!   encapsulates return traffic toward the address embedded in the
//!   Teredo destination.

use crate::addr::{is_teredo, teredo_address, teredo_decode};
use crate::engine::{Ctx, Node};
use crate::link::LinkId;
use crate::packet::{Packet, Payload, UdpData, UdpDatagram};
use crate::time::SimDuration;
use bytes::Bytes;
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// The Teredo UDP service port.
pub const TEREDO_PORT: u16 = 3544;

/// Router-solicitation magic (simulator wire format).
const RS_MAGIC: &[u8; 4] = b"TRS1";
/// Router-advertisement magic, followed by 4 addr + 2 port bytes.
const RA_MAGIC: &[u8; 4] = b"TRA1";

/// Timer token used by the client's qualification retry.
pub const TIMER_QUALIFY: u64 = 1;

#[derive(Clone, Debug, PartialEq, Eq)]
enum ClientState {
    Unqualified,
    Qualified { addr: Ipv6Addr },
}

/// The host-side Teredo tunneling component.
pub struct TeredoClient {
    server: Ipv4Addr,
    relay: Ipv4Addr,
    /// Our local (pre-NAT) IPv4 address.
    local_v4: Ipv4Addr,
    state: ClientState,
    /// IPv6 packets queued while unqualified.
    pending: Vec<Packet>,
    /// Ready-to-route packets the host must flush after each client call.
    out: Vec<Packet>,
    attempts: u32,
}

impl TeredoClient {
    /// Creates a client that will qualify against `server` and tunnel
    /// through `relay`.
    pub fn new(local_v4: Ipv4Addr, server: Ipv4Addr, relay: Ipv4Addr) -> Self {
        TeredoClient {
            server,
            relay,
            local_v4,
            state: ClientState::Unqualified,
            pending: Vec::new(),
            out: Vec::new(),
            attempts: 0,
        }
    }

    /// Our Teredo IPv6 address once qualified.
    pub fn address(&self) -> Option<Ipv6Addr> {
        match &self.state {
            ClientState::Qualified { addr } => Some(*addr),
            ClientState::Unqualified => None,
        }
    }

    /// Begins qualification (called by the host at simulation start).
    pub fn start(&mut self, ctx: &mut Ctx) {
        self.send_rs();
        ctx.set_timer(
            SimDuration::from_millis(500),
            crate::engine::TimerHandle { owner: crate::engine::TimerOwner::Node, token: TIMER_QUALIFY },
        );
    }

    /// Node-owned timer: retry qualification until it succeeds.
    pub fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TIMER_QUALIFY && self.state == ClientState::Unqualified {
            self.attempts += 1;
            if self.attempts < 10 {
                self.send_rs();
                ctx.set_timer(
                    SimDuration::from_millis(500),
                    crate::engine::TimerHandle {
                        owner: crate::engine::TimerOwner::Node,
                        token: TIMER_QUALIFY,
                    },
                );
            }
        }
    }

    fn send_rs(&mut self) {
        self.out.push(Packet::new(
            IpAddr::V4(self.local_v4),
            IpAddr::V4(self.server),
            Payload::Udp(UdpDatagram {
                src_port: TEREDO_PORT,
                dst_port: TEREDO_PORT,
                data: UdpData::Raw(Bytes::copy_from_slice(RS_MAGIC)),
            }),
        ));
    }

    /// Examines a wire packet. Returns the (possibly decapsulated) packet
    /// to keep processing, or `None` if the client consumed it.
    pub fn wire_in(&mut self, pkt: Packet, ctx: &mut Ctx) -> Option<Packet> {
        let Payload::Udp(udp) = &pkt.payload else { return Some(pkt) };
        if udp.dst_port != TEREDO_PORT {
            return Some(pkt);
        }
        match &udp.data {
            UdpData::Teredo(inner) => Some((**inner).clone()),
            UdpData::Raw(b) if b.len() >= 10 && &b[..4] == RA_MAGIC => {
                let ext = Ipv4Addr::new(b[4], b[5], b[6], b[7]);
                let port = u16::from_be_bytes([b[8], b[9]]);
                let addr = teredo_address(self.server, ext, port);
                if self.state == ClientState::Unqualified {
                    ctx.trace_state(|| format!("teredo qualified: {addr}"));
                }
                self.state = ClientState::Qualified { addr };
                None
            }
            _ => Some(pkt),
        }
    }

    /// Wraps an IPv6 packet for the relay. Returns `None` (and queues the
    /// packet) while unqualified.
    pub fn encapsulate(&mut self, inner: Packet) -> Option<Packet> {
        match &self.state {
            ClientState::Unqualified => {
                self.pending.push(inner);
                None
            }
            ClientState::Qualified { .. } => Some(Packet::new(
                IpAddr::V4(self.local_v4),
                IpAddr::V4(self.relay),
                Payload::Udp(UdpDatagram {
                    src_port: TEREDO_PORT,
                    dst_port: TEREDO_PORT,
                    data: UdpData::Teredo(Box::new(inner)),
                }),
            )),
        }
    }

    /// Takes all packets ready to (re-)enter the host's wire path:
    /// control messages plus any queued IPv6 packets once qualified.
    pub fn drain_ready(&mut self) -> Vec<Packet> {
        let mut out = std::mem::take(&mut self.out);
        if matches!(self.state, ClientState::Qualified { .. }) {
            out.append(&mut self.pending);
        }
        out
    }
}

/// The Teredo server: answers RS with the observed source address/port.
pub struct TeredoServer {
    /// The server's own IPv4 address.
    pub addr: Ipv4Addr,
    link: LinkId,
    /// Qualifications served (diagnostics).
    pub served: u64,
}

impl TeredoServer {
    /// Creates a server reachable at `addr` on `link`.
    pub fn new(addr: Ipv4Addr, link: LinkId) -> Self {
        TeredoServer { addr, link, served: 0 }
    }

    /// Rebinds the uplink (topology builders learn the link id late).
    pub fn set_link(&mut self, link: LinkId) {
        self.link = link;
    }
}

impl Node for TeredoServer {
    fn handle_packet(&mut self, _iface: usize, pkt: Packet, ctx: &mut Ctx) {
        let Payload::Udp(udp) = &pkt.payload else { return };
        let UdpData::Raw(b) = &udp.data else { return };
        if udp.dst_port != TEREDO_PORT || &b[..] != RS_MAGIC {
            return;
        }
        let IpAddr::V4(observed) = pkt.src else { return };
        self.served += 1;
        // Origin indication: the source address and port *we* observed —
        // after any NAT rewriting, which is the whole point.
        let mut ra = Vec::with_capacity(10);
        ra.extend_from_slice(RA_MAGIC);
        ra.extend_from_slice(&observed.octets());
        ra.extend_from_slice(&udp.src_port.to_be_bytes());
        let reply = Packet::new(
            IpAddr::V4(self.addr),
            pkt.src,
            Payload::Udp(UdpDatagram {
                src_port: TEREDO_PORT,
                dst_port: udp.src_port,
                data: UdpData::Raw(Bytes::from(ra)),
            }),
        );
        ctx.transmit(self.link, reply);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The Teredo relay: bridges the UDP/IPv4 world and IPv6.
///
/// Interface 0 faces the IPv4 network (clients); interface 1 (optional)
/// faces a native IPv6 network.
pub struct TeredoRelay {
    /// The relay's IPv4 address.
    pub addr: Ipv4Addr,
    v4_link: LinkId,
    v6_link: Option<LinkId>,
    /// Packets relayed client→client or client→v6 (diagnostics).
    pub relayed: u64,
}

impl TeredoRelay {
    /// Creates a relay with its IPv4-facing link.
    pub fn new(addr: Ipv4Addr, v4_link: LinkId) -> Self {
        TeredoRelay { addr, v4_link, v6_link: None, relayed: 0 }
    }

    /// Attaches a native-IPv6 link.
    pub fn set_v6_link(&mut self, link: LinkId) {
        self.v6_link = Some(link);
    }

    /// Rebinds the IPv4 uplink (topology builders learn the id late).
    pub fn set_v4_link(&mut self, link: LinkId) {
        self.v4_link = link;
    }

    fn encap_toward(&self, inner: Packet, dst_v6: &Ipv6Addr) -> Option<Packet> {
        let (_server, client_v4, client_port) = teredo_decode(dst_v6)?;
        Some(Packet::new(
            IpAddr::V4(self.addr),
            IpAddr::V4(client_v4),
            Payload::Udp(UdpDatagram {
                src_port: TEREDO_PORT,
                dst_port: client_port,
                data: UdpData::Teredo(Box::new(inner)),
            }),
        ))
    }
}

impl Node for TeredoRelay {
    fn handle_packet(&mut self, _iface: usize, pkt: Packet, ctx: &mut Ctx) {
        match &pkt.payload {
            // From a client: decapsulate and forward the inner packet.
            Payload::Udp(udp) if udp.dst_port == TEREDO_PORT => {
                let UdpData::Teredo(inner) = &udp.data else { return };
                let inner = (**inner).clone();
                match inner.dst {
                    IpAddr::V6(v6) if is_teredo(&inner.dst) => {
                        // Hairpin: client → relay → other client.
                        if let Some(out) = self.encap_toward(inner.clone(), &v6) {
                            self.relayed += 1;
                            ctx.transmit(self.v4_link, out);
                        }
                    }
                    IpAddr::V6(_) => {
                        if let Some(link) = self.v6_link {
                            self.relayed += 1;
                            ctx.transmit(link, inner);
                        } else {
                            ctx.trace_drop(|| "relay: no v6 uplink".to_owned());
                        }
                    }
                    IpAddr::V4(_) => {
                        ctx.trace_drop(|| "relay: v4 inside teredo".to_owned());
                    }
                }
            }
            // From the v6 network toward a Teredo client.
            _ if pkt.dst.is_ipv6() && is_teredo(&pkt.dst) => {
                let IpAddr::V6(v6) = pkt.dst else { return };
                if let Some(out) = self.encap_toward(pkt, &v6) {
                    self.relayed += 1;
                    ctx.transmit(self.v4_link, out);
                }
            }
            _ => {
                ctx.trace_drop(|| format!("relay: unhandled {} -> {}", pkt.src, pkt.dst));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::host::{App, AppEvent, Host, HostApi};
    use crate::link::{Endpoint, LinkParams};
    use crate::packet::v4;
    use crate::tcp::TcpEvent;
    use crate::time::SimTime;

    /// Builds: clientA — switch(router) — {server, relay, clientB}.
    /// All nodes IPv4; A and B are Teredo clients.
    struct Net {
        sim: Sim,
        a: crate::link::NodeId,
        b: crate::link::NodeId,
    }

    fn build(apps_a: Vec<Box<dyn App>>, apps_b: Vec<Box<dyn App>>) -> Net {
        let mut sim = Sim::new(7);
        let server_v4 = Ipv4Addr::new(198, 51, 100, 1);
        let relay_v4 = Ipv4Addr::new(198, 51, 100, 2);

        let mut ha = Host::new("a");
        ha.core.teredo = Some(TeredoClient::new(Ipv4Addr::new(10, 0, 0, 1), server_v4, relay_v4));
        for app in apps_a {
            ha.add_app(app);
        }
        let mut hb = Host::new("b");
        hb.core.teredo = Some(TeredoClient::new(Ipv4Addr::new(10, 0, 0, 2), server_v4, relay_v4));
        for app in apps_b {
            hb.add_app(app);
        }

        let a = sim.world.add_node(Box::new(ha));
        let b = sim.world.add_node(Box::new(hb));
        let r = sim.world.add_node(Box::new(crate::router::Router::new("sw")));
        let la = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: r, iface: 0 },
            LinkParams::datacenter(),
        );
        let lb = sim.world.connect(
            Endpoint { node: b, iface: 0 },
            Endpoint { node: r, iface: 1 },
            LinkParams::datacenter(),
        );
        // Server and relay hang off the same switch.
        let sv_tmp = TeredoServer::new(server_v4, LinkId(0));
        let sv = sim.world.add_node(Box::new(sv_tmp));
        let ls = sim.world.connect(
            Endpoint { node: sv, iface: 0 },
            Endpoint { node: r, iface: 2 },
            LinkParams::datacenter(),
        );
        sim.world.node_mut::<TeredoServer>(sv).unwrap().link = ls;
        let rl_tmp = TeredoRelay::new(relay_v4, LinkId(0));
        let rl = sim.world.add_node(Box::new(rl_tmp));
        let lr = sim.world.connect(
            Endpoint { node: rl, iface: 0 },
            Endpoint { node: r, iface: 3 },
            LinkParams::datacenter(),
        );
        sim.world.node_mut::<TeredoRelay>(rl).unwrap().v4_link = lr;

        {
            let h = sim.world.node_mut::<Host>(a).unwrap();
            h.core.add_iface(la, vec![v4(10, 0, 0, 1)]);
        }
        {
            let h = sim.world.node_mut::<Host>(b).unwrap();
            h.core.add_iface(lb, vec![v4(10, 0, 0, 2)]);
        }
        {
            let r = sim.world.node_mut::<crate::router::Router>(r).unwrap();
            r.add_iface(la);
            r.add_iface(lb);
            r.add_iface(ls);
            r.add_iface(lr);
            r.add_route(v4(10, 0, 0, 1), 32, 0);
            r.add_route(v4(10, 0, 0, 2), 32, 1);
            r.add_route(IpAddr::V4(server_v4), 32, 2);
            r.add_route(IpAddr::V4(relay_v4), 32, 3);
        }
        Net { sim, a, b }
    }

    #[test]
    fn clients_qualify() {
        let mut net = build(vec![], vec![]);
        net.sim.run_until(SimTime(3_000_000_000));
        let ha = net.sim.world.node::<Host>(net.a).unwrap();
        let addr = ha.core.teredo.as_ref().unwrap().address().expect("qualified");
        assert!(is_teredo(&IpAddr::V6(addr)));
        let (_s, client, port) = teredo_decode(&addr).unwrap();
        assert_eq!(client, Ipv4Addr::new(10, 0, 0, 1), "no NAT: external == internal");
        assert_eq!(port, TEREDO_PORT);
    }

    /// TCP between two Teredo clients, through the relay hairpin.
    struct V6Server;
    impl App for V6Server {
        fn start(&mut self, api: &mut HostApi) {
            api.tcp_listen(80);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
                let d = api.tcp_recv(s);
                api.tcp_send(s, &d);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct V6Client {
        peer: Option<Ipv6Addr>,
        reply: Vec<u8>,
    }
    impl App for V6Client {
        fn start(&mut self, api: &mut HostApi) {
            // Wait for qualification, then connect (poll via timer).
            api.set_timer(SimDuration::from_millis(1200), 1);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            match ev {
                AppEvent::Timer { token: 1 } => {
                    let peer = self.peer.expect("peer set by test");
                    let sock = api.tcp_connect(IpAddr::V6(peer), 80);
                    assert!(sock.is_some(), "teredo address available as source");
                }
                AppEvent::Tcp(TcpEvent::Connected(s)) => {
                    api.tcp_send(s, b"over teredo");
                }
                AppEvent::Tcp(TcpEvent::Data(s)) => {
                    self.reply.extend(api.tcp_recv(s));
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn tcp_over_teredo_relay_hairpin() {
        let mut net = build(
            vec![Box::new(V6Client { peer: None, reply: vec![] })],
            vec![Box::new(V6Server)],
        );
        // Let qualification finish, then learn B's address and set it on A.
        net.sim.run_until(SimTime(1_000_000_000));
        let b_addr = net
            .sim
            .world
            .node::<Host>(net.b)
            .unwrap()
            .core
            .teredo
            .as_ref()
            .unwrap()
            .address()
            .expect("b qualified");
        net.sim
            .world
            .node_mut::<Host>(net.a)
            .unwrap()
            .app_mut::<V6Client>(0)
            .unwrap()
            .peer = Some(b_addr);
        net.sim.run_until(SimTime(10_000_000_000));
        let reply =
            net.sim.world.node::<Host>(net.a).unwrap().app::<V6Client>(0).unwrap().reply.clone();
        assert_eq!(reply, b"over teredo");
    }
}
