//! End hosts: a full network stack composed of
//!
//! ```text
//!   applications        (trait App: web servers, databases, load gens)
//!   ----------------    AppEvent / HostApi boundary
//!   TCP | UDP | ICMP    (layer 4)
//!   ----------------    layer 3.5: trait L35Shim — where HIP plugs in
//!   IP routing          (+ optional Teredo IPv6-over-UDP tunneling)
//!   ----------------
//!   links               (via the engine Ctx)
//! ```
//!
//! The shim sees every outbound packet whose destination it claims
//! (HITs/LSIs) and every inbound ESP/HIP packet, exactly like the HIPL
//! kernel hooks the paper deployed. Everything above the shim is
//! identity-addressed; everything below uses locators.

use crate::addr::{is_identity, select_source};
use crate::cpu::CpuModel;
use crate::engine::{Ctx, Node, TimerHandle, TimerOwner, TimerToken, IFACE_INTERNAL};
use crate::link::LinkId;
use crate::packet::{
    proto, IcmpKind, IcmpMessage, Packet, Payload, UdpData, UdpDatagram,
};
use crate::tcp::{GsoMode, SockId, TcpConfig, TcpEvent, TcpLayer};
use crate::teredo::TeredoClient;
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;

/// Events delivered to applications.
#[derive(Clone, Debug)]
pub enum AppEvent {
    /// A TCP socket event.
    Tcp(TcpEvent),
    /// A UDP datagram arrived on a bound port.
    UdpDatagram {
        /// The bound local port it arrived on.
        dst_port: u16,
        /// Sender address.
        src: IpAddr,
        /// Sender port.
        src_port: u16,
        /// The payload.
        data: UdpData,
    },
    /// An ICMP echo reply for a registered identifier.
    EchoReply {
        /// The ping session identifier.
        ident: u16,
        /// Sequence number within the session.
        seq: u16,
        /// Who answered.
        from: IpAddr,
    },
    /// An application timer fired.
    Timer {
        /// The token passed to `set_timer`.
        token: u64,
    },
}

/// An application running on a host.
pub trait App: Any {
    /// Called once when the simulation starts.
    fn start(&mut self, _api: &mut HostApi) {}
    /// Called for every event addressed to this app.
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi);
    /// Called when the host crashes: drop all connection state (socket
    /// ids will be reused by the fresh TCP layer after restart) but keep
    /// configuration and accumulated statistics. `start` runs again on
    /// restart.
    fn reset(&mut self) {}
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A layer-3.5 shim (HIP). Installed with [`Host::set_shim`].
pub trait L35Shim: Any {
    /// Called once when the simulation starts.
    fn start(&mut self, _api: &mut ShimApi) {}
    /// Whether outbound packets to `dst` should be given to the shim.
    fn handles_dst(&self, dst: &IpAddr) -> bool;
    /// An outbound upper-layer packet addressed to an identity.
    fn outbound(&mut self, pkt: Packet, api: &mut ShimApi);
    /// An inbound ESP or HIP-control packet from the wire.
    fn inbound(&mut self, pkt: Packet, api: &mut ShimApi);
    /// A shim timer fired.
    fn on_timer(&mut self, _token: u64, _api: &mut ShimApi) {}
    /// The host crashed: cancel engine timers, drop associations and
    /// in-flight exchanges; keep identity and peer configuration.
    /// `start` runs again on restart.
    fn on_crash(&mut self, _api: &mut ShimApi) {}
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A network interface: the link it attaches to and its addresses.
#[derive(Clone, Debug)]
pub struct Iface {
    /// The link this interface attaches to.
    pub link: LinkId,
    /// Addresses configured on it.
    pub addrs: Vec<IpAddr>,
}

/// A static route: destination prefix → interface index.
#[derive(Clone, Debug)]
pub struct HostRoute {
    /// Destination prefix.
    pub prefix: IpAddr,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Outgoing interface index.
    pub iface: usize,
}

/// Everything in the host except the pluggable apps and shim (so those
/// can be dispatched with `&mut` while the rest of the host stays
/// reachable through this struct).
pub struct HostCore {
    /// Human-readable name (diagnostics only).
    pub name: String,
    ifaces: Vec<Iface>,
    routes: Vec<HostRoute>,
    /// The TCP layer.
    pub tcp: TcpLayer,
    /// The UDP layer.
    pub udp: UdpLayer,
    /// The CPU service model; applications and the shim charge work here.
    pub cpu: CpuModel,
    /// Optional Teredo tunneling client.
    pub teredo: Option<TeredoClient>,
    /// Identity addresses (HIT/LSI) registered by the shim.
    virtual_addrs: Vec<IpAddr>,
    icmp_owner: HashMap<u16, usize>,
    app_events: VecDeque<(usize, AppEvent)>,
    upper_out: VecDeque<Packet>,
    /// Live engine timer per TCP socket token, so obsoleted retransmission
    /// timers are cancelled instead of popping stale.
    tcp_timer_tokens: HashMap<u64, TimerToken>,
}

impl HostCore {
    fn new(name: &str) -> Self {
        HostCore {
            name: name.to_owned(),
            ifaces: Vec::new(),
            routes: Vec::new(),
            tcp: TcpLayer::new(TcpConfig::default()),
            udp: UdpLayer::default(),
            cpu: CpuModel::default(),
            teredo: None,
            virtual_addrs: Vec::new(),
            icmp_owner: HashMap::new(),
            app_events: VecDeque::new(),
            upper_out: VecDeque::new(),
            tcp_timer_tokens: HashMap::new(),
        }
    }

    /// Attaches an interface; returns its index.
    pub fn add_iface(&mut self, link: LinkId, addrs: Vec<IpAddr>) -> usize {
        self.ifaces.push(Iface { link, addrs });
        self.ifaces.len() - 1
    }

    /// Adds a static route.
    pub fn add_route(&mut self, prefix: IpAddr, prefix_len: u8, iface: usize) {
        self.routes.push(HostRoute { prefix, prefix_len, iface });
    }

    /// Replaces the addresses of an existing interface (VM migration /
    /// readdressing). The layer-3.5 shim is told separately via its own
    /// relocation API.
    pub fn replace_iface_addrs(&mut self, iface: usize, addrs: Vec<IpAddr>) {
        self.ifaces[iface].addrs = addrs;
    }

    /// Rebinds an existing interface to a different link (VM migration
    /// to another physical host/switch).
    pub fn rebind_iface(&mut self, iface: usize, link: LinkId) {
        self.ifaces[iface].link = link;
    }

    /// All addresses this host answers to (locators + identities).
    pub fn all_addrs(&self) -> Vec<IpAddr> {
        let mut v: Vec<IpAddr> = self.ifaces.iter().flat_map(|i| i.addrs.clone()).collect();
        v.extend(self.virtual_addrs.iter().copied());
        if let Some(t) = &self.teredo {
            if let Some(a) = t.address() {
                v.push(IpAddr::V6(a));
            }
        }
        v
    }

    /// Registers an identity address owned by this host (shim use).
    pub fn register_virtual_addr(&mut self, addr: IpAddr) {
        if !self.virtual_addrs.contains(&addr) {
            self.virtual_addrs.push(addr);
        }
    }

    /// A locator (non-identity address) usable to reach `peer_locator`.
    pub fn locator_for(&self, peer_locator: &IpAddr) -> Option<IpAddr> {
        // Teredo destination → our Teredo address.
        if crate::addr::is_teredo(peer_locator) {
            if let Some(t) = &self.teredo {
                return t.address().map(IpAddr::V6);
            }
        }
        self.ifaces
            .iter()
            .flat_map(|i| i.addrs.iter())
            .find(|a| a.is_ipv4() == peer_locator.is_ipv4() && !is_identity(a))
            .copied()
            .or_else(|| {
                // v6 destination but only v4 ifaces: Teredo if available.
                if peer_locator.is_ipv6() {
                    self.teredo.as_ref().and_then(|t| t.address()).map(IpAddr::V6)
                } else {
                    None
                }
            })
    }

    fn is_local_dst(&self, dst: &IpAddr) -> bool {
        self.ifaces.iter().any(|i| i.addrs.contains(dst))
            || self.virtual_addrs.contains(dst)
            || self
                .teredo
                .as_ref()
                .and_then(TeredoClient::address)
                .is_some_and(|a| IpAddr::V6(a) == *dst)
    }

    fn has_native_v6(&self) -> bool {
        self.ifaces
            .iter()
            .flat_map(|i| i.addrs.iter())
            .any(|a| a.is_ipv6() && !is_identity(a))
    }

    fn route_iface(&self, dst: &IpAddr) -> Option<usize> {
        let mut best: Option<(u8, usize)> = None;
        for r in &self.routes {
            if prefix_match(dst, &r.prefix, r.prefix_len)
                && best.is_none_or(|(len, _)| r.prefix_len > len)
            {
                best = Some((r.prefix_len, r.iface));
            }
        }
        best.map(|(_, i)| i).or(if self.ifaces.is_empty() { None } else { Some(0) })
    }

    /// Sends a locator-addressed packet toward the network after `delay`
    /// (the delay models CPU processing already charged by the caller).
    pub fn send_wire(&mut self, ctx: &mut Ctx, delay: SimDuration, pkt: Packet) {
        if let Payload::Tcp(seg) = &pkt.payload {
            // NIC-level GSO split: a super-segment travels the stack
            // once but hits the wire as per-MTU frames, in the exact
            // order unbatched TCP would have sent them. `Merged` mode
            // keeps the super intact for the link layer to merge on the
            // far side — except over Teredo, which tunnels per frame.
            let needs_teredo = pkt.dst.is_ipv6() && !self.has_native_v6();
            if seg.gso_mss > 0 && (self.tcp.config.gso != GsoMode::Merged || needs_teredo) {
                for frame in crate::packet::split_gso(seg) {
                    let f = Packet::new(pkt.src, pkt.dst, Payload::Tcp(frame));
                    self.send_wire(ctx, delay, f);
                }
                return;
            }
        }
        let mut pkt = pkt;
        // IPv6 destination with no native IPv6: tunnel through Teredo.
        if pkt.dst.is_ipv6() && !self.has_native_v6() {
            let Some(t) = &mut self.teredo else {
                ctx.trace_drop(|| format!("no v6 route and no teredo for {}", pkt.dst));
                return;
            };
            match t.encapsulate(pkt) {
                Some(outer) => pkt = outer,
                None => return, // queued until qualification completes
            }
        }
        let Some(iface_idx) = self.route_iface(&pkt.dst) else {
            ctx.trace_drop(|| format!("no route to {}", pkt.dst));
            return;
        };
        let link = self.ifaces[iface_idx].link;
        ctx.transmit_after(delay, link, pkt);
    }

    /// Layer-4 input: a packet addressed to this host (identities or
    /// locators both land here once the shim has done its work).
    pub fn l4_in(&mut self, pkt: Packet, now: SimTime) {
        match pkt.payload {
            Payload::Tcp(seg) => {
                self.tcp.segment_arrives(pkt.src, pkt.dst, seg, now);
            }
            Payload::Udp(udp) => {
                if let Some(&app) = self.udp.bindings.get(&udp.dst_port) {
                    self.app_events.push_back((
                        app,
                        AppEvent::UdpDatagram {
                            dst_port: udp.dst_port,
                            src: pkt.src,
                            src_port: udp.src_port,
                            data: udp.data,
                        },
                    ));
                }
            }
            Payload::Icmp(icmp) => match icmp.kind {
                IcmpKind::EchoRequest => {
                    let reply = Packet::new(
                        pkt.dst,
                        pkt.src,
                        Payload::Icmp(IcmpMessage { kind: IcmpKind::EchoReply, ..icmp }),
                    );
                    self.upper_out.push_back(reply);
                }
                IcmpKind::EchoReply => {
                    if let Some(&app) = self.icmp_owner.get(&icmp.ident) {
                        self.app_events.push_back((
                            app,
                            AppEvent::EchoReply { ident: icmp.ident, seq: icmp.seq, from: pkt.src },
                        ));
                    }
                }
                IcmpKind::Unreachable => {}
            },
            // ESP/HIP reaching layer 4 means no shim claimed them: drop.
            Payload::Esp(_) | Payload::HipControl(_) => {}
        }
    }

    /// Moves TCP/UDP layer outputs into the host queues and arms timers.
    fn collect_layer_outputs(&mut self, ctx: &mut Ctx) {
        for pkt in self.tcp.out.drain(..) {
            self.upper_out.push_back(pkt);
        }
        for (app, ev) in self.tcp.events.drain(..) {
            self.app_events.push_back((app, AppEvent::Tcp(ev)));
        }
        // Cancels first: a cancel-then-rearm sequence emitted within one
        // dispatch must leave the rearm live (see `TcpLayer::cancel_reqs`).
        for token in self.tcp.cancel_reqs.drain(..) {
            if let Some(t) = self.tcp_timer_tokens.remove(&token) {
                ctx.cancel_timer(t);
            }
        }
        for (delay, token) in self.tcp.timer_reqs.drain(..) {
            let t = ctx.set_timer_cancellable(delay, TimerHandle { owner: TimerOwner::Tcp, token });
            if let Some(old) = self.tcp_timer_tokens.insert(token, t) {
                ctx.cancel_timer(old);
            }
        }
        if !self.tcp.metric_evs.is_empty() {
            let m = ctx.metrics();
            for ev in self.tcp.metric_evs.drain(..) {
                match ev {
                    crate::tcp::TcpMetric::ConnectNs(ns) => m.observe_name("tcp.connect", ns),
                    crate::tcp::TcpMetric::AcceptNs(ns) => m.observe_name("tcp.accept", ns),
                    crate::tcp::TcpMetric::Rtx => m.add_name("tcp.rtx", 1),
                }
            }
        }
        for pkt in self.udp.out.drain(..) {
            self.upper_out.push_back(pkt);
        }
    }

    fn has_pending(&self) -> bool {
        !self.app_events.is_empty()
            || !self.upper_out.is_empty()
            || !self.tcp.out.is_empty()
            || !self.tcp.events.is_empty()
            || !self.tcp.timer_reqs.is_empty()
            || !self.tcp.cancel_reqs.is_empty()
            || !self.udp.out.is_empty()
    }
}

/// Longest-prefix matching for static routes.
fn prefix_match(addr: &IpAddr, prefix: &IpAddr, len: u8) -> bool {
    fn match_bits(a: &[u8], p: &[u8], len: u8) -> bool {
        let full = (len / 8) as usize;
        if a[..full] != p[..full] {
            return false;
        }
        let rem = len % 8;
        if rem == 0 {
            return true;
        }
        let mask = 0xffu8 << (8 - rem);
        (a[full] & mask) == (p[full] & mask)
    }
    match (addr, prefix) {
        (IpAddr::V4(a), IpAddr::V4(p)) => match_bits(&a.octets(), &p.octets(), len),
        (IpAddr::V6(a), IpAddr::V6(p)) => match_bits(&a.octets(), &p.octets(), len),
        _ => false,
    }
}

/// The UDP layer: port bindings and an output queue.
#[derive(Default)]
pub struct UdpLayer {
    bindings: HashMap<u16, usize>,
    /// Outgoing datagrams for the host to flush.
    pub out: Vec<Packet>,
}

impl UdpLayer {
    /// Binds `port` to `app`. Returns false if taken.
    pub fn bind(&mut self, port: u16, app: usize) -> bool {
        if self.bindings.contains_key(&port) {
            return false;
        }
        self.bindings.insert(port, app);
        true
    }

    /// Queues a datagram.
    pub fn send(&mut self, src: IpAddr, src_port: u16, dst: IpAddr, dst_port: u16, data: UdpData) {
        self.out.push(Packet::new(
            src,
            dst,
            Payload::Udp(UdpDatagram { src_port, dst_port, data }),
        ));
    }
}

/// A complete host node.
pub struct Host {
    /// The stack (everything except apps and shim).
    pub core: HostCore,
    apps: Vec<Box<dyn App>>,
    app_in_flight: Vec<bool>,
    shim: Option<Box<dyn L35Shim>>,
}

impl Host {
    /// Creates a host with no interfaces, apps or shim.
    pub fn new(name: &str) -> Self {
        Host { core: HostCore::new(name), apps: Vec::new(), app_in_flight: Vec::new(), shim: None }
    }

    /// Installs an application; returns its index (used in events).
    pub fn add_app(&mut self, app: Box<dyn App>) -> usize {
        self.apps.push(app);
        self.app_in_flight.push(false);
        self.apps.len() - 1
    }

    /// Installs the layer-3.5 shim.
    pub fn set_shim(&mut self, shim: Box<dyn L35Shim>) {
        self.shim = Some(shim);
    }

    /// Immutable access to an app, downcast to `T`.
    pub fn app<T: 'static>(&self, idx: usize) -> Option<&T> {
        self.apps.get(idx)?.as_any().downcast_ref()
    }

    /// Mutable access to an app, downcast to `T`.
    pub fn app_mut<T: 'static>(&mut self, idx: usize) -> Option<&mut T> {
        self.apps.get_mut(idx)?.as_any_mut().downcast_mut()
    }

    /// Immutable access to the shim, downcast to `T`.
    pub fn shim<T: 'static>(&self) -> Option<&T> {
        self.shim.as_ref()?.as_any().downcast_ref()
    }

    /// Mutable access to the shim, downcast to `T`.
    pub fn shim_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.shim.as_mut()?.as_any_mut().downcast_mut()
    }

    /// Runs `f` with a [`HostApi`] for app `idx` — lets experiment
    /// harnesses drive applications from outside the event loop.
    pub fn with_api(&mut self, idx: usize, ctx: &mut Ctx, f: impl FnOnce(&mut dyn App, &mut HostApi)) {
        self.dispatch_with(idx, ctx, f);
        self.pump(ctx);
    }

    /// Runs `f` against the installed shim with a [`ShimApi`] — the
    /// escape hatch the cloud layer uses to trigger shim-level control
    /// operations (e.g. announcing a new locator after VM migration).
    pub fn shim_command(&mut self, ctx: &mut Ctx, f: impl FnOnce(&mut dyn L35Shim, &mut ShimApi)) {
        self.shim_call(ctx, f);
        self.pump(ctx);
    }

    fn dispatch_with(
        &mut self,
        idx: usize,
        ctx: &mut Ctx,
        f: impl FnOnce(&mut dyn App, &mut HostApi),
    ) {
        // Apps are stored inline; to get disjoint borrows we split the
        // vector around the target element.
        if idx >= self.apps.len() || self.app_in_flight[idx] {
            return;
        }
        self.app_in_flight[idx] = true;
        // Temporarily move the Box out (cheap pointer move).
        let mut app = std::mem::replace(&mut self.apps[idx], Box::new(NullApp));
        {
            let mut api = HostApi { core: &mut self.core, ctx, app_idx: idx };
            f(app.as_mut(), &mut api);
        }
        self.apps[idx] = app;
        self.app_in_flight[idx] = false;
    }

    fn shim_call(&mut self, ctx: &mut Ctx, f: impl FnOnce(&mut dyn L35Shim, &mut ShimApi)) {
        if let Some(mut shim) = self.shim.take() {
            {
                let mut api = ShimApi { core: &mut self.core, ctx };
                f(shim.as_mut(), &mut api);
            }
            self.shim = Some(shim);
        }
    }

    /// Drains all host-internal queues until quiescent.
    fn pump(&mut self, ctx: &mut Ctx) {
        // Bound the loop defensively; normal traffic needs a few dozen
        // iterations at most.
        for _ in 0..100_000 {
            self.core.collect_layer_outputs(ctx);
            if let Some((app, ev)) = self.core.app_events.pop_front() {
                self.dispatch_with(app, ctx, |a, api| a.on_event(ev, api));
                continue;
            }
            if let Some(pkt) = self.core.upper_out.pop_front() {
                self.route_upper(pkt, ctx);
                continue;
            }
            if !self.core.has_pending() {
                return;
            }
        }
        panic!("host {} pump did not quiesce", self.core.name);
    }

    /// Sends an upper-layer packet: identity destinations go through the
    /// shim, locator destinations straight to the wire.
    fn route_upper(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let claimed = self.shim.as_ref().is_some_and(|s| s.handles_dst(&pkt.dst));
        if claimed {
            self.shim_call(ctx, |s, api| s.outbound(pkt, api));
        } else if is_identity(&pkt.dst) {
            ctx.trace_drop(|| format!("identity dst {} but no shim", pkt.dst));
        } else {
            self.core.send_wire(ctx, SimDuration::ZERO, pkt);
        }
    }

    /// Processes a packet from the wire.
    fn wire_in(&mut self, pkt: Packet, ctx: &mut Ctx) {
        // Teredo decapsulation / control traffic.
        let pkt = if let Some(t) = &mut self.core.teredo {
            match t.wire_in(pkt, ctx) {
                Some(p) => p,
                None => {
                    // Consumed by the Teredo client (qualification); any
                    // queued v6 packets may now be sendable.
                    self.flush_teredo(ctx);
                    self.pump(ctx);
                    return;
                }
            }
        } else {
            pkt
        };
        if !self.core.is_local_dst(&pkt.dst) {
            ctx.trace_drop(|| format!("host {}: not local dst {}", self.core.name, pkt.dst));
            return;
        }
        match pkt.protocol() {
            proto::ESP | proto::HIP => {
                if self.shim.is_some() {
                    self.shim_call(ctx, |s, api| s.inbound(pkt, api));
                } else {
                    ctx.trace_drop(|| format!("host {}: ESP/HIP but no shim", self.core.name));
                }
            }
            _ => {
                let now = ctx.now;
                self.core.l4_in(pkt, now);
            }
        }
        self.pump(ctx);
    }
}

/// Placeholder swapped in while an app is being dispatched.
struct NullApp;
impl App for NullApp {
    fn on_event(&mut self, _: AppEvent, _: &mut HostApi) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Host {
    /// Flushes packets the Teredo client has queued (control messages,
    /// and tunneled packets once qualification completes).
    fn flush_teredo(&mut self, ctx: &mut Ctx) {
        let ready = self.core.teredo.as_mut().map(TeredoClient::drain_ready).unwrap_or_default();
        for p in ready {
            self.core.send_wire(ctx, SimDuration::ZERO, p);
        }
    }
}

impl Node for Host {
    fn start(&mut self, ctx: &mut Ctx) {
        if let Some(t) = &mut self.core.teredo {
            t.start(ctx);
        }
        self.flush_teredo(ctx);
        self.shim_call(ctx, |s, api| s.start(api));
        for i in 0..self.apps.len() {
            self.dispatch_with(i, ctx, |a, api| a.start(api));
        }
        self.pump(ctx);
    }

    fn handle_packet(&mut self, iface: usize, pkt: Packet, ctx: &mut Ctx) {
        if iface == IFACE_INTERNAL {
            let now = ctx.now;
            self.core.l4_in(pkt, now);
            self.pump(ctx);
        } else {
            self.wire_in(pkt, ctx);
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx) {
        // Shim first: it cancels its engine timers and drops protocol
        // state while the context is still usable.
        self.shim_call(ctx, |s, api| s.on_crash(api));
        for app in &mut self.apps {
            app.reset();
        }
        let core = &mut self.core;
        for (_, t) in core.tcp_timer_tokens.drain() {
            ctx.cancel_timer(t);
        }
        // A crash loses all transport state: fresh TCP layer (same
        // config; listeners gone so restart's re-listen succeeds),
        // cleared UDP bindings and in-flight queues. Interface and route
        // configuration survives — the VM restarts on the same slot.
        core.tcp = TcpLayer::new(core.tcp.config);
        core.udp.bindings.clear();
        core.udp.out.clear();
        core.app_events.clear();
        core.upper_out.clear();
        core.icmp_owner.clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        // Boot again: shim and apps re-run `start` (re-listen,
        // re-establish pools). Teredo qualification state survived the
        // crash intentionally — it models the hypervisor, not the guest.
        self.shim_call(ctx, |s, api| s.start(api));
        for i in 0..self.apps.len() {
            self.dispatch_with(i, ctx, |a, api| a.start(api));
        }
        self.pump(ctx);
    }

    fn handle_timer(&mut self, timer: TimerHandle, ctx: &mut Ctx) {
        match timer.owner {
            TimerOwner::Tcp => {
                // Any TCP timer that reaches us is the socket's live one
                // (obsoleted ones were cancelled when replaced); drop the
                // mapping before `on_timer` so a rearm installs fresh.
                self.core.tcp_timer_tokens.remove(&timer.token);
                let now = ctx.now;
                self.core.tcp.on_timer(timer.token, now);
            }
            TimerOwner::Shim => {
                self.shim_call(ctx, |s, api| s.on_timer(timer.token, api));
            }
            TimerOwner::App(idx) => {
                self.dispatch_with(idx, ctx, |a, api| {
                    a.on_event(AppEvent::Timer { token: timer.token }, api)
                });
            }
            TimerOwner::Node => {
                if let Some(t) = &mut self.core.teredo {
                    t.on_timer(timer.token, ctx);
                }
                self.flush_teredo(ctx);
            }
        }
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The API handed to applications.
pub struct HostApi<'a, 'b> {
    /// The host stack.
    pub core: &'a mut HostCore,
    /// The engine context (time, RNG, timers).
    pub ctx: &'a mut Ctx<'b>,
    app_idx: usize,
}

impl HostApi<'_, '_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// The host's name.
    pub fn host_name(&self) -> &str {
        &self.core.name
    }

    /// Arms an application timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let owner = TimerOwner::App(self.app_idx);
        self.ctx.set_timer(delay, TimerHandle { owner, token });
    }

    /// Charges CPU work; returns the delay until it completes (queue +
    /// service). Pair with [`Self::set_timer`] to resume afterwards.
    pub fn cpu_charge(&mut self, work: SimDuration) -> SimDuration {
        self.core.cpu.charge(self.ctx.now, work)
    }

    /// Starts listening for TCP connections on `port`.
    pub fn tcp_listen(&mut self, port: u16) -> bool {
        self.core.tcp.listen(port, self.app_idx)
    }

    /// Opens a TCP connection; source address chosen to match `remote`'s
    /// class (HIT→HIT, LSI→LSI, locator→locator).
    pub fn tcp_connect(&mut self, remote: IpAddr, port: u16) -> Option<SockId> {
        let candidates = self.core.all_addrs();
        let src = select_source(&candidates, &remote)?;
        let iss = self.ctx.random_u64() as u32;
        Some(self.core.tcp.connect(src, (remote, port), self.app_idx, iss, self.ctx.now))
    }

    /// Opens a TCP connection from an explicit source address.
    pub fn tcp_connect_from(&mut self, src: IpAddr, remote: IpAddr, port: u16) -> SockId {
        let iss = self.ctx.random_u64() as u32;
        self.core.tcp.connect(src, (remote, port), self.app_idx, iss, self.ctx.now)
    }

    /// Queues bytes on a socket.
    pub fn tcp_send(&mut self, sock: SockId, data: &[u8]) {
        self.core.tcp.send(sock, data, self.ctx.now);
    }

    /// Drains received bytes.
    pub fn tcp_recv(&mut self, sock: SockId) -> Vec<u8> {
        self.core.tcp.recv(sock)
    }

    /// Bytes available to read.
    pub fn tcp_recv_len(&self, sock: SockId) -> usize {
        self.core.tcp.recv_len(sock)
    }

    /// Bytes queued for transmission on a socket.
    pub fn tcp_buffered(&self, sock: SockId) -> usize {
        self.core.tcp.buffered(sock)
    }

    /// Remote endpoint of a socket.
    pub fn tcp_peer(&self, sock: SockId) -> Option<(IpAddr, u16)> {
        self.core.tcp.peer_of(sock)
    }

    /// Graceful close.
    pub fn tcp_close(&mut self, sock: SockId) {
        self.core.tcp.close(sock, self.ctx.now);
    }

    /// Abortive close.
    pub fn tcp_abort(&mut self, sock: SockId) {
        self.core.tcp.abort(sock);
    }

    /// Binds a UDP port.
    pub fn udp_bind(&mut self, port: u16) -> bool {
        self.core.udp.bind(port, self.app_idx)
    }

    /// Sends a UDP datagram (source address auto-selected).
    pub fn udp_send(&mut self, src_port: u16, dst: IpAddr, dst_port: u16, data: UdpData) {
        let candidates = self.core.all_addrs();
        let Some(src) = select_source(&candidates, &dst) else { return };
        self.core.udp.send(src, src_port, dst, dst_port, data);
    }

    /// Sends an ICMP echo request; the reply comes back as
    /// [`AppEvent::EchoReply`] for `ident`.
    pub fn ping(&mut self, dst: IpAddr, ident: u16, seq: u16, payload_len: usize) {
        self.core.icmp_owner.insert(ident, self.app_idx);
        let candidates = self.core.all_addrs();
        let Some(src) = select_source(&candidates, &dst) else { return };
        let pkt = Packet::new(
            src,
            dst,
            Payload::Icmp(IcmpMessage { kind: IcmpKind::EchoRequest, ident, seq, payload_len }),
        );
        self.core.upper_out.push_back(pkt);
    }

    /// Uniform random u64 from the simulation RNG.
    pub fn random_u64(&mut self) -> u64 {
        self.ctx.random_u64()
    }

    /// Uniform random f64 in [0,1).
    pub fn random_f64(&mut self) -> f64 {
        self.ctx.random_f64()
    }

    /// Uniform random value in [0, n).
    pub fn random_below(&mut self, n: u64) -> u64 {
        self.ctx.random_below(n)
    }

    /// The metrics registry (purely observational; see [`Ctx::metrics`]).
    pub fn metrics(&mut self) -> &mut obs::MetricsRegistry {
        self.ctx.metrics()
    }
}

/// The API handed to the layer-3.5 shim.
pub struct ShimApi<'a, 'b> {
    /// The host stack.
    pub core: &'a mut HostCore,
    /// The engine context.
    pub ctx: &'a mut Ctx<'b>,
}

impl ShimApi<'_, '_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Charges CPU work, returning the completion delay.
    pub fn charge_cpu(&mut self, work: SimDuration) -> SimDuration {
        self.core.cpu.charge(self.ctx.now, work)
    }

    /// Sends a locator-addressed packet to the wire after `delay`.
    pub fn send_wire(&mut self, delay: SimDuration, pkt: Packet) {
        self.core.send_wire(self.ctx, delay, pkt);
    }

    /// Delivers a decapsulated inner packet up the local stack after
    /// `delay`.
    pub fn deliver_upper(&mut self, delay: SimDuration, pkt: Packet) {
        self.ctx.deliver_local(delay, pkt);
    }

    /// Arms a shim timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.ctx.set_timer(delay, TimerHandle { owner: TimerOwner::Shim, token });
    }

    /// Arms a cancellable shim timer; keep the returned token to cancel it.
    pub fn set_timer_cancellable(&mut self, delay: SimDuration, token: u64) -> TimerToken {
        self.ctx.set_timer_cancellable(delay, TimerHandle { owner: TimerOwner::Shim, token })
    }

    /// Cancels a timer armed with [`Self::set_timer_cancellable`].
    /// Returns false if it already fired or was already cancelled.
    pub fn cancel_timer(&mut self, token: TimerToken) -> bool {
        self.ctx.cancel_timer(token)
    }

    /// Registers an identity address (HIT/LSI) as belonging to this host.
    pub fn register_virtual_addr(&mut self, addr: IpAddr) {
        self.core.register_virtual_addr(addr);
    }

    /// Tears down every TCP connection to `dst`: the shim has determined
    /// the peer is unreachable (e.g. BEX retransmissions exhausted), so
    /// connecting sockets fail with `ConnectFailed` and established ones
    /// see `Reset` instead of hanging forever.
    pub fn notify_unreachable(&mut self, dst: IpAddr) {
        self.core.tcp.abort_to(dst);
    }

    /// A local locator suitable for reaching `peer_locator`.
    pub fn local_locator(&self, peer_locator: &IpAddr) -> Option<IpAddr> {
        self.core.locator_for(peer_locator)
    }

    /// Uniform random u64.
    pub fn random_u64(&mut self) -> u64 {
        self.ctx.random_u64()
    }

    /// Access to the seeded RNG (key generation, puzzles).
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    /// Records a protocol state-change trace entry.
    pub fn trace_state(&mut self, detail: impl FnOnce() -> String) {
        self.ctx.trace_state(detail);
    }

    /// The metrics registry (purely observational; see [`Ctx::metrics`]).
    pub fn metrics(&mut self) -> &mut obs::MetricsRegistry {
        self.ctx.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::*;
    use crate::link::{Endpoint, LinkParams};
    use crate::packet::v4;
    use bytes::Bytes;

    /// An app that listens on a port and echoes everything back.
    struct EchoServer {
        port: u16,
        served: usize,
    }
    impl App for EchoServer {
        fn start(&mut self, api: &mut HostApi) {
            assert!(api.tcp_listen(self.port));
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            if let AppEvent::Tcp(TcpEvent::Data(sock)) = ev {
                let data = api.tcp_recv(sock);
                api.tcp_send(sock, &data);
                self.served += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A client that connects, sends one message, and records the echo.
    struct EchoClient {
        server: IpAddr,
        port: u16,
        sock: Option<SockId>,
        reply: Vec<u8>,
        connected: bool,
    }
    impl App for EchoClient {
        fn start(&mut self, api: &mut HostApi) {
            self.sock = api.tcp_connect(self.server, self.port);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            match ev {
                AppEvent::Tcp(TcpEvent::Connected(s)) => {
                    self.connected = true;
                    api.tcp_send(s, b"hello through the stack");
                }
                AppEvent::Tcp(TcpEvent::Data(s)) => {
                    self.reply.extend(api.tcp_recv(s));
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build_pair() -> (Sim, crate::link::NodeId, crate::link::NodeId, usize, usize) {
        let mut sim = Sim::new(42);
        let mut ha = Host::new("a");
        let mut hb = Host::new("b");
        let client = ha.add_app(Box::new(EchoClient {
            server: v4(10, 0, 0, 2),
            port: 7,
            sock: None,
            reply: vec![],
            connected: false,
        }));
        let server = hb.add_app(Box::new(EchoServer { port: 7, served: 0 }));
        let a = sim.world.add_node(Box::new(ha));
        let b = sim.world.add_node(Box::new(hb));
        let link = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 1)]);
        sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 2)]);
        (sim, a, b, client, server)
    }

    #[test]
    fn tcp_echo_end_to_end() {
        let (mut sim, a, b, client, server) = build_pair();
        sim.run_until(SimTime(2_000_000_000));
        let ha = sim.world.node::<Host>(a).unwrap();
        let app = ha.app::<EchoClient>(client).unwrap();
        assert!(app.connected, "handshake completed");
        assert_eq!(app.reply, b"hello through the stack");
        let hb = sim.world.node::<Host>(b).unwrap();
        assert_eq!(hb.app::<EchoServer>(server).unwrap().served, 1);
    }

    #[test]
    fn host_crash_restart_relistens_and_serves() {
        let (mut sim, a, b, client, server) = build_pair();
        sim.run_until(SimTime(1_000_000_000)); // first echo completes
        // Crash the server host, then bring it back up.
        sim.schedule_fault(SimDuration::ZERO, FaultAction::NodeCrash(b));
        sim.schedule_fault(SimDuration::from_millis(100), FaultAction::NodeRestart(b));
        sim.run_until(SimTime(2_000_000_000));
        // EchoServer::start asserts tcp_listen succeeds, so reaching here
        // proves the crash cleared the old listener. Now reconnect.
        sim.with_node_ctx(a, |node, ctx| {
            let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
            host.with_api(client, ctx, |app, api| {
                let app = app.as_any_mut().downcast_mut::<EchoClient>().unwrap();
                app.connected = false;
                app.reply.clear();
                app.sock = api.tcp_connect(app.server, app.port);
            });
        });
        sim.run_until(SimTime(4_000_000_000));
        let ha = sim.world.node::<Host>(a).unwrap();
        let app = ha.app::<EchoClient>(client).unwrap();
        assert!(app.connected, "reconnect after restart");
        assert_eq!(app.reply, b"hello through the stack");
        let hb = sim.world.node::<Host>(b).unwrap();
        assert_eq!(hb.app::<EchoServer>(server).unwrap().served, 2);
    }

    #[test]
    fn abort_to_fails_connecting_sockets() {
        let (mut sim, a, b, client, _server) = build_pair();
        // Take the server down permanently before the SYN lands, then
        // have the client's stack declare the peer unreachable.
        sim.schedule_fault(SimDuration::ZERO, FaultAction::NodeCrash(b));
        sim.run_until(SimTime(50_000_000));
        let mut events = Vec::new();
        sim.with_node_ctx(a, |node, ctx| {
            let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
            host.core.tcp.abort_to(v4(10, 0, 0, 2));
            events = host.core.tcp.events.clone();
            host.pump(ctx);
        });
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], (idx, TcpEvent::ConnectFailed(_)) if idx == client),
            "SynSent socket reports ConnectFailed: {events:?}"
        );
    }

    #[test]
    fn icmp_echo_auto_reply() {
        struct Pinger {
            target: IpAddr,
            rtt: Option<SimDuration>,
            sent_at: SimTime,
        }
        impl App for Pinger {
            fn start(&mut self, api: &mut HostApi) {
                self.sent_at = api.now();
                api.ping(self.target, 9, 1, 56);
            }
            fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
                if let AppEvent::EchoReply { ident: 9, .. } = ev {
                    self.rtt = Some(api.now().since(self.sent_at));
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(1);
        let mut ha = Host::new("a");
        let pinger = ha.add_app(Box::new(Pinger {
            target: v4(10, 0, 0, 2),
            rtt: None,
            sent_at: SimTime::ZERO,
        }));
        let hb = Host::new("b");
        let a = sim.world.add_node(Box::new(ha));
        let b = sim.world.add_node(Box::new(hb));
        let link = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 1)]);
        sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 2)]);
        sim.run_until(SimTime(1_000_000_000));
        let rtt = sim.world.node::<Host>(a).unwrap().app::<Pinger>(pinger).unwrap().rtt;
        let rtt = rtt.expect("got echo reply");
        // ≥ 2× link latency (500 µs), plus serialization.
        assert!(rtt >= SimDuration::from_micros(500), "rtt={rtt:?}");
        assert!(rtt < SimDuration::from_millis(2));
    }

    #[test]
    fn udp_delivery_to_bound_port() {
        struct Sender {
            dst: IpAddr,
        }
        impl App for Sender {
            fn start(&mut self, api: &mut HostApi) {
                api.udp_send(5000, self.dst, 53, UdpData::Raw(Bytes::from_static(b"query")));
            }
            fn on_event(&mut self, _: AppEvent, _: &mut HostApi) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Receiver {
            got: Vec<u8>,
        }
        impl App for Receiver {
            fn start(&mut self, api: &mut HostApi) {
                assert!(api.udp_bind(53));
            }
            fn on_event(&mut self, ev: AppEvent, _: &mut HostApi) {
                if let AppEvent::UdpDatagram { data: UdpData::Raw(b), .. } = ev {
                    self.got.extend_from_slice(&b);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(1);
        let mut ha = Host::new("a");
        ha.add_app(Box::new(Sender { dst: v4(10, 0, 0, 2) }));
        let mut hb = Host::new("b");
        let recv = hb.add_app(Box::new(Receiver { got: vec![] }));
        let a = sim.world.add_node(Box::new(ha));
        let b = sim.world.add_node(Box::new(hb));
        let link = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 1)]);
        sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 2)]);
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(sim.world.node::<Host>(b).unwrap().app::<Receiver>(recv).unwrap().got, b"query");
    }

    #[test]
    fn packets_to_other_hosts_dropped() {
        let mut sim = Sim::new(1);
        let ha = Host::new("a");
        let hb = Host::new("b");
        let a = sim.world.add_node(Box::new(ha));
        let b = sim.world.add_node(Box::new(hb));
        let link = sim.world.connect(
            Endpoint { node: a, iface: 0 },
            Endpoint { node: b, iface: 0 },
            LinkParams::datacenter(),
        );
        sim.world.node_mut::<Host>(a).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 1)]);
        sim.world.node_mut::<Host>(b).unwrap().core.add_iface(link, vec![v4(10, 0, 0, 2)]);
        sim.trace = crate::trace::Trace::enabled(100);
        // Send a packet to an address b does not own.
        sim.with_node_ctx(a, |node, ctx| {
            let host = node.as_any_mut().downcast_mut::<Host>().unwrap();
            host.core.send_wire(
                ctx,
                SimDuration::ZERO,
                Packet::new(
                    v4(10, 0, 0, 1),
                    v4(10, 0, 0, 99),
                    Payload::Icmp(IcmpMessage {
                        kind: IcmpKind::EchoRequest,
                        ident: 1,
                        seq: 1,
                        payload_len: 8,
                    }),
                ),
            );
        });
        assert!(sim.run_to_quiescence(100).is_quiescent());
        assert!(
            sim.trace.of_kind(crate::trace::TraceKind::Drop).count() > 0,
            "non-local packet must be dropped"
        );
    }

    #[test]
    fn prefix_matching() {
        assert!(prefix_match(&v4(10, 1, 2, 3), &v4(10, 0, 0, 0), 8));
        assert!(!prefix_match(&v4(11, 1, 2, 3), &v4(10, 0, 0, 0), 8));
        assert!(prefix_match(&v4(10, 1, 2, 3), &v4(10, 1, 0, 0), 16));
        assert!(prefix_match(&v4(192, 168, 1, 77), &v4(192, 168, 1, 64), 26));
        assert!(!prefix_match(&v4(192, 168, 1, 10), &v4(192, 168, 1, 64), 26));
        assert!(prefix_match(&v4(1, 2, 3, 4), &v4(0, 0, 0, 0), 0));
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;
    use crate::engine::*;
    use crate::link::{Endpoint, LinkParams};
    use crate::packet::v4;

    /// A dual-homed host must route by prefix, not just iface 0.
    #[test]
    fn multihomed_host_routes_by_prefix() {
        struct Probe {
            target_left: IpAddr,
            target_right: IpAddr,
            replies: Vec<IpAddr>,
        }
        impl App for Probe {
            fn start(&mut self, api: &mut HostApi) {
                api.ping(self.target_left, 1, 1, 8);
                api.ping(self.target_right, 2, 1, 8);
            }
            fn on_event(&mut self, ev: AppEvent, _api: &mut HostApi) {
                if let AppEvent::EchoReply { from, .. } = ev {
                    self.replies.push(from);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Sim::new(5);
        let mut hub = Host::new("hub");
        let probe = hub.add_app(Box::new(Probe {
            target_left: v4(10, 1, 0, 2),
            target_right: v4(10, 2, 0, 2),
            replies: vec![],
        }));
        let left = Host::new("left");
        let right = Host::new("right");
        let h = sim.world.add_node(Box::new(hub));
        let l = sim.world.add_node(Box::new(left));
        let r = sim.world.add_node(Box::new(right));
        let ll = sim.world.connect(
            Endpoint { node: h, iface: 0 },
            Endpoint { node: l, iface: 0 },
            LinkParams::datacenter(),
        );
        let lr = sim.world.connect(
            Endpoint { node: h, iface: 1 },
            Endpoint { node: r, iface: 0 },
            LinkParams::datacenter(),
        );
        {
            let core = &mut sim.world.node_mut::<Host>(h).expect("hub").core;
            core.add_iface(ll, vec![v4(10, 1, 0, 1)]);
            core.add_iface(lr, vec![v4(10, 2, 0, 1)]);
            core.add_route(v4(10, 1, 0, 0), 16, 0);
            core.add_route(v4(10, 2, 0, 0), 16, 1);
        }
        sim.world.node_mut::<Host>(l).expect("l").core.add_iface(ll, vec![v4(10, 1, 0, 2)]);
        sim.world.node_mut::<Host>(r).expect("r").core.add_iface(lr, vec![v4(10, 2, 0, 2)]);
        sim.run_until(SimTime(1_000_000_000));
        let replies = &sim.world.node::<Host>(h).expect("hub").app::<Probe>(probe).expect("probe").replies;
        assert!(replies.contains(&v4(10, 1, 0, 2)), "left reachable via iface 0: {replies:?}");
        assert!(replies.contains(&v4(10, 2, 0, 2)), "right reachable via iface 1: {replies:?}");
    }

    #[test]
    fn udp_bind_conflicts_rejected() {
        let mut layer = UdpLayer::default();
        assert!(layer.bind(53, 0));
        assert!(!layer.bind(53, 1), "second bind on the same port fails");
        assert!(layer.bind(54, 1));
    }
}
