//! A small HTTP/1.0-style codec over byte streams.
//!
//! Requests: `GET <path> HTTP/1.0\r\n<headers>\r\n\r\n` (no bodies — the
//! workload is HTTP GET, as in the paper's jmeter/httperf runs).
//! Responses: status line + `Content-Length` framing + body.

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (the workload only uses GET).
    pub method: String,
    /// Request path incl. query string.
    pub path: String,
    /// Header name/value pairs in order.
    pub headers: Vec<(String, String)>,
}

impl HttpRequest {
    /// A GET request for `path`.
    pub fn get(path: &str) -> Self {
        HttpRequest { method: "GET".into(), path: path.into(), headers: Vec::new() }
    }

    /// Serializes onto the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.0\r\n", self.method, self.path).into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out
    }

    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs (Content-Length is added on encode).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 response with a body.
    pub fn ok(body: Vec<u8>) -> Self {
        HttpResponse { status: 200, headers: Vec::new(), body }
    }

    /// An error response.
    pub fn error(status: u16, message: &str) -> Self {
        HttpResponse { status, headers: Vec::new(), body: message.as_bytes().to_vec() }
    }

    /// Serializes onto the wire (adds Content-Length).
    pub fn encode(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            404 => "Not Found",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            _ => "Status",
        };
        let mut out = format!("HTTP/1.0 {} {}\r\n", self.status, reason).into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

/// Incremental parser for a stream of requests (server side).
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// Feeds raw bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete request, if any.
    pub fn next_request(&mut self) -> Option<HttpRequest> {
        let end = find_subsequence(&self.buf, b"\r\n\r\n")?;
        let head = String::from_utf8_lossy(&self.buf[..end]).into_owned();
        self.buf.drain(..end + 4);
        let mut lines = head.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split(' ');
        let method = parts.next()?.to_owned();
        let path = parts.next()?.to_owned();
        let headers = lines
            .filter_map(|l| {
                let (k, v) = l.split_once(':')?;
                Some((k.trim().to_owned(), v.trim().to_owned()))
            })
            .collect();
        Some(HttpRequest { method, path, headers })
    }
}

/// Incremental parser for a stream of responses (client side).
#[derive(Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
}

impl ResponseParser {
    /// Feeds raw bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete response, if any.
    pub fn next_response(&mut self) -> Option<HttpResponse> {
        let head_end = find_subsequence(&self.buf, b"\r\n\r\n")?;
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next()?;
        let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| {
                let (k, v) = l.split_once(':')?;
                Some((k.trim().to_owned(), v.trim().to_owned()))
            })
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let total = head_end + 4 + content_length;
        if self.buf.len() < total {
            return None;
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Some(HttpResponse { status, headers, body })
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut req = HttpRequest::get("/item?id=7");
        req.headers.push(("Host".into(), "rubis.cloud".into()));
        let wire = req.encode();
        let mut p = RequestParser::default();
        p.push(&wire);
        let parsed = p.next_request().unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.header("host"), Some("rubis.cloud"));
        assert!(p.next_request().is_none());
    }

    #[test]
    fn response_round_trip() {
        let resp = HttpResponse::ok(b"<html>item</html>".to_vec());
        let wire = resp.encode();
        let mut p = ResponseParser::default();
        p.push(&wire);
        let parsed = p.next_response().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, b"<html>item</html>");
    }

    #[test]
    fn fragmented_parsing() {
        let resp = HttpResponse::ok(vec![b'x'; 1000]);
        let wire = resp.encode();
        let mut p = ResponseParser::default();
        let mut got = None;
        for chunk in wire.chunks(7) {
            p.push(chunk);
            if let Some(r) = p.next_response() {
                got = Some(r);
            }
        }
        assert_eq!(got.unwrap().body.len(), 1000);
    }

    #[test]
    fn pipelined_requests() {
        let mut p = RequestParser::default();
        let mut wire = HttpRequest::get("/a").encode();
        wire.extend(HttpRequest::get("/b").encode());
        p.push(&wire);
        assert_eq!(p.next_request().unwrap().path, "/a");
        assert_eq!(p.next_request().unwrap().path, "/b");
        assert!(p.next_request().is_none());
    }

    #[test]
    fn pipelined_responses() {
        let mut p = ResponseParser::default();
        let mut wire = HttpResponse::ok(b"one".to_vec()).encode();
        wire.extend(HttpResponse::error(404, "nope").encode());
        p.push(&wire);
        assert_eq!(p.next_response().unwrap().body, b"one");
        assert_eq!(p.next_response().unwrap().status, 404);
    }
}
