//! # websvc
//!
//! The multi-tier web-service substrate: everything the paper's
//! evaluation (§V) runs on top of the cloud and HIP layers.
//!
//! - [`http`] — HTTP/1.0 codec
//! - [`rubis`] — the RUBiS auction data model, query language, per-query
//!   cost table and interaction mix
//! - [`db`] — the MySQL-like database server app (+ query cache)
//! - [`webserver`] — the web-tier application server
//! - [`proxy`] — the HAProxy-like reverse proxy / round-robin LB that
//!   terminates HIP toward consumers
//! - [`secure`] — the Basic / HIP / SSL scenario plumbing
//! - [`loadgen`] — jmeter (closed loop), httperf (open loop), iperf
//!   (bulk TCP), ping (ICMP RTT)
//! - [`deploy`] — one-call assembly of the paper's Figure 1 testbed
//! - [`dns_server`] — a DNS server app serving HIP resource records

#![warn(missing_docs)]

pub mod db;
pub mod dns_server;
pub mod deploy;
pub mod http;
pub mod loadgen;
pub mod proxy;
pub mod rubis;
pub mod secure;
pub mod webserver;

pub use deploy::{deploy_rubis, RubisConfig, RubisDeployment, DB_PORT, LB_PORT, WEB_PORT};
pub use loadgen::{HttperfApp, IperfClientApp, IperfServerApp, JmeterApp, LatencyStats, PingApp, Timeline};
pub use proxy::{FailoverConfig, Health, ProxyApp, ProxyStats};
pub use secure::Scenario;
