//! Deployment assembler: builds the paper's testbed (Figure 1) in one
//! call, for each security scenario.
//!
//! ```text
//! clients ──> load balancer (outside the cloud) ──> web VMs ──> DB VM
//!             HAProxy, round robin                  3× micro     large
//! ```
//!
//! - **Basic**: everything plain.
//! - **HIP/HIP-LSI**: every cloud-internal hop (LB→web, web→DB) runs
//!   over HIP; the LB terminates HIP toward the consumers.
//! - **SSL**: the same hops carry TLS inside TCP.

use crate::db::{DbServerApp, ServerSecurity};
use crate::proxy::{BackendSecurity, ProxyApp};
use crate::rubis::{QueryCosts, RubisData};
use crate::secure::Scenario;
use crate::webserver::{DbSecurity, WebConfig, WebServerApp};
use cloudsim::{CloudKind, CloudTopology, Flavor, VmHandle};
use hip_core::identity::HostIdentity;
use hip_core::{CostModel, HipConfig, HipShim, PeerInfo};
use netsim::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::IpAddr;
use tls_sim::{CertificateAuthority, TlsCosts};

/// Frontend port the load balancer listens on.
pub const LB_PORT: u16 = 8080;
/// Web tier HTTP port.
pub const WEB_PORT: u16 = 80;
/// Database port.
pub const DB_PORT: u16 = 3306;

/// Deployment parameters.
pub struct RubisConfig {
    /// Which protection to deploy.
    pub scenario: Scenario,
    /// Number of web-server VMs (the paper uses 3).
    pub n_web: usize,
    /// Enable the MySQL query cache (ON for TAB-RT, OFF for FIG2).
    pub query_cache: bool,
    /// Put the HAProxy-like LB in front (FIG2 yes, TAB-RT no).
    pub use_lb: bool,
    /// Dataset size.
    pub users: u32,
    /// Dataset size.
    pub items: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Per-query DB costs.
    pub query_costs: QueryCosts,
    /// Crypto cost table (shared by HIP and TLS).
    pub crypto_costs: CostModel,
    /// Per-request web-tier application work.
    pub web_request_cost: SimDuration,
}

impl RubisConfig {
    /// The paper's Figure 2 deployment for a given scenario.
    pub fn fig2(scenario: Scenario, seed: u64) -> Self {
        RubisConfig {
            scenario,
            n_web: 3,
            query_cache: false,
            use_lb: true,
            users: 300,
            items: 600,
            seed,
            query_costs: QueryCosts::default(),
            crypto_costs: CostModel::paper_web_stack(),
            web_request_cost: SimDuration::from_micros(1500),
        }
    }

    /// The paper's response-time deployment (single web server, query
    /// cache on, no LB).
    pub fn tab_rt(scenario: Scenario, seed: u64) -> Self {
        RubisConfig {
            scenario,
            n_web: 1,
            query_cache: true,
            use_lb: false,
            users: 300,
            items: 600,
            seed,
            query_costs: QueryCosts::default(),
            crypto_costs: CostModel::paper_web_stack(),
            web_request_cost: SimDuration::from_micros(1500),
        }
    }
}

/// A deployed RUBiS service.
pub struct RubisDeployment {
    /// The cloud world; add load-generator hosts, then run.
    pub topo: CloudTopology,
    /// The cloud region the service runs in.
    pub cloud: cloudsim::CloudId,
    /// The LB host (present when `use_lb`).
    pub lb: Option<VmHandle>,
    /// The web-tier VMs.
    pub webs: Vec<VmHandle>,
    /// The DB VM.
    pub db: VmHandle,
    /// Where clients should send HTTP requests.
    pub frontend: (IpAddr, u16),
    /// Which scenario was deployed.
    pub scenario: Scenario,
}

/// TLS costs derived from the shared crypto table, so SSL and HIP pay
/// identically for identical primitives.
pub fn tls_costs(c: &CostModel) -> TlsCosts {
    TlsCosts {
        rsa_sign: c.rsa_sign,
        rsa_verify: c.rsa_verify,
        dh_compute: c.dh_compute,
        sym_per_packet: c.sym_per_packet,
        sym_per_byte_ns: c.sym_per_byte_ns,
    }
}

/// Builds the full deployment.
pub fn deploy_rubis(cfg: RubisConfig) -> RubisDeployment {
    let mut topo = CloudTopology::new(cfg.seed);
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    let db = topo.launch_vm(cloud, "db", Flavor::Large);
    let webs: Vec<VmHandle> = (0..cfg.n_web)
        .map(|i| topo.launch_vm(cloud, &format!("web{i}"), Flavor::Micro))
        .collect();
    let lb = cfg.use_lb.then(|| topo.add_external_host("haproxy", Flavor::Dedicated));

    let mut key_rng = StdRng::seed_from_u64(cfg.seed ^ 0xfeed_beef);

    // ----- per-scenario identities / certificates -----
    match cfg.scenario {
        Scenario::Basic => {
            install_db(&mut topo, db, &cfg, ServerSecurity::Plain);
            for &web in &webs {
                install_web(&mut topo, web, db.addr, DbSecurity::Plain, ServerSecurity::Plain, &cfg);
            }
            if let Some(lb) = lb {
                let backends = webs.iter().map(|w| (w.addr, WEB_PORT)).collect();
                install_lb(&mut topo, lb, backends, BackendSecurity::Plain);
            }
        }
        Scenario::Hip | Scenario::HipLsi => {
            // Identities for every HIP node.
            let id_db = HostIdentity::generate_rsa(512, &mut key_rng);
            let ids_web: Vec<HostIdentity> =
                webs.iter().map(|_| HostIdentity::generate_rsa(512, &mut key_rng)).collect();
            let id_lb = lb.map(|_| HostIdentity::generate_rsa(512, &mut key_rng));
            let hip_cfg = HipConfig { costs: cfg.crypto_costs, ..HipConfig::default() };

            let hit_db = id_db.hit();
            let hits_web: Vec<_> = ids_web.iter().map(HostIdentity::hit).collect();

            // DB shim: knows every web server.
            let mut shim_db = HipShim::new(id_db, hip_cfg.clone());
            for (i, &web) in webs.iter().enumerate() {
                shim_db.add_peer(hits_web[i], PeerInfo { locators: vec![web.addr], via_rvs: None });
            }
            if let (Some(lb), Some(id)) = (lb, id_lb.as_ref()) {
                // Not strictly needed (LB never talks to the DB) but
                // harmless and realistic.
                shim_db.add_peer(id.hit(), PeerInfo { locators: vec![lb.addr], via_rvs: None });
            }
            topo.host_mut(db).set_shim(Box::new(shim_db));
            install_db(&mut topo, db, &cfg, ServerSecurity::Plain);

            // Web shims: know the DB and the LB.
            let mut web_db_addrs = Vec::with_capacity(webs.len());
            for (i, (&web, id)) in webs.iter().zip(ids_web).enumerate() {
                let _ = i;
                let mut shim = HipShim::new(id, hip_cfg.clone());
                let db_lsi = shim.add_peer(hit_db, PeerInfo { locators: vec![db.addr], via_rvs: None });
                if let (Some(lb), Some(idl)) = (lb, id_lb.as_ref()) {
                    shim.add_peer(idl.hit(), PeerInfo { locators: vec![lb.addr], via_rvs: None });
                }
                let db_addr: IpAddr = match cfg.scenario {
                    Scenario::Hip => hit_db.to_ip(),
                    _ => IpAddr::V4(db_lsi),
                };
                topo.host_mut(web).set_shim(Box::new(shim));
                web_db_addrs.push(db_addr);
            }
            for (&web, db_addr) in webs.iter().zip(web_db_addrs) {
                install_web(&mut topo, web, db_addr, DbSecurity::Plain, ServerSecurity::Plain, &cfg);
            }

            // LB shim: knows every web server; terminates HIP.
            if let (Some(lb), Some(id)) = (lb, id_lb) {
                let mut shim = HipShim::new(id, hip_cfg);
                let mut backends = Vec::with_capacity(webs.len());
                for (i, &web) in webs.iter().enumerate() {
                    let lsi = shim.add_peer(hits_web[i], PeerInfo { locators: vec![web.addr], via_rvs: None });
                    let addr: IpAddr = match cfg.scenario {
                        Scenario::Hip => hits_web[i].to_ip(),
                        _ => IpAddr::V4(lsi),
                    };
                    backends.push((addr, WEB_PORT));
                }
                topo.host_mut(lb).set_shim(Box::new(shim));
                install_lb(&mut topo, lb, backends, BackendSecurity::Plain);
            }
        }
        Scenario::Ssl => {
            let costs = tls_costs(&cfg.crypto_costs);
            let ca = CertificateAuthority::new(512, &mut key_rng);
            // DB certificate.
            let db_keys = sim_crypto::rsa::RsaKeyPair::generate(512, &mut key_rng);
            let db_cert = ca.issue("db.rubis.cloud", db_keys.public());
            install_db(
                &mut topo,
                db,
                &cfg,
                ServerSecurity::Tls { cert: db_cert, keys: db_keys, costs },
            );
            for (i, &web) in webs.iter().enumerate() {
                // Consumers always speak plain HTTP; only proxy-fronted
                // web servers offer TLS on their frontend.
                let frontend = if cfg.use_lb {
                    let web_keys = sim_crypto::rsa::RsaKeyPair::generate(512, &mut key_rng);
                    let web_cert = ca.issue(&format!("web{i}.rubis.cloud"), web_keys.public());
                    ServerSecurity::Tls { cert: web_cert, keys: web_keys, costs }
                } else {
                    ServerSecurity::Plain
                };
                install_web(
                    &mut topo,
                    web,
                    db.addr,
                    DbSecurity::Tls { ca: ca.public().clone(), costs },
                    frontend,
                    &cfg,
                );
            }
            if let Some(lb) = lb {
                let backends = webs.iter().map(|w| (w.addr, WEB_PORT)).collect();
                install_lb(
                    &mut topo,
                    lb,
                    backends,
                    BackendSecurity::Tls { ca: ca.public().clone(), costs },
                );
            }
        }
    }

    let frontend = match lb {
        Some(lb) => (lb.addr, LB_PORT),
        None => (webs[0].addr, WEB_PORT),
    };
    RubisDeployment { topo, cloud, lb, webs, db, frontend, scenario: cfg.scenario }
}

fn install_db(topo: &mut CloudTopology, db: VmHandle, cfg: &RubisConfig, security: ServerSecurity) {
    let data = RubisData::generate(cfg.users, cfg.items, cfg.seed ^ 0xdb);
    let app = DbServerApp::new(DB_PORT, data, cfg.query_costs, cfg.query_cache, security);
    topo.host_mut(db).add_app(Box::new(app));
}

fn install_web(
    topo: &mut CloudTopology,
    web: VmHandle,
    db_addr: IpAddr,
    db_security: DbSecurity,
    frontend_security: ServerSecurity,
    cfg: &RubisConfig,
) {
    let mut web_cfg = WebConfig::new(db_addr, DB_PORT);
    web_cfg.port = WEB_PORT;
    web_cfg.db_security = db_security;
    web_cfg.frontend_security = frontend_security;
    web_cfg.request_cost = cfg.web_request_cost;
    topo.host_mut(web).add_app(Box::new(WebServerApp::new(web_cfg)));
}

fn install_lb(
    topo: &mut CloudTopology,
    lb: VmHandle,
    backends: Vec<(IpAddr, u16)>,
    security: BackendSecurity,
) {
    let app = ProxyApp::new(LB_PORT, backends, security);
    topo.host_mut(lb).add_app(Box::new(app));
}
