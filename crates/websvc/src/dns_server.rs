//! A DNS server application serving a zone over UDP port 53 — including
//! HIP resource records (RFC 5205), so HIP hosts can be discovered by
//! name instead of pre-configured HITs ("the HITs of remote hosts can be
//! preconfigured statically or, alternatively, they can be looked up
//! dynamically from the DNS", §II-B).

use netsim::dns::{DnsMessage, RecordType, Zone, DNS_PORT};
use netsim::host::{App, AppEvent, HostApi};
use netsim::packet::UdpData;
use std::any::Any;

/// The DNS server app.
pub struct DnsServerApp {
    /// The zone being served (mutable: dynamic DNS re-registration).
    pub zone: Zone,
    /// Queries answered (diagnostics).
    pub served: u64,
    /// Queries for unknown names (diagnostics).
    pub nxdomain: u64,
}

impl DnsServerApp {
    /// Serves `zone`.
    pub fn new(zone: Zone) -> Self {
        DnsServerApp { zone, served: 0, nxdomain: 0 }
    }
}

impl App for DnsServerApp {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.udp_bind(DNS_PORT), "port 53 taken");
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        let AppEvent::UdpDatagram { src, src_port, data, .. } = ev else { return };
        let UdpData::Dns(DnsMessage::Query { id, name, rtype }) = data else { return };
        let answers = self.zone.lookup(&name, rtype);
        if answers.is_empty() {
            self.nxdomain += 1;
        } else {
            self.served += 1;
        }
        let resp = DnsMessage::Response { id, name, answers };
        api.udp_send(DNS_PORT, src, src_port, UdpData::Dns(resp));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A one-shot resolver client (helper for apps and tests): sends one
/// query at start, stores the answers.
pub struct DnsLookupApp {
    server: std::net::IpAddr,
    name: String,
    rtype: RecordType,
    /// Received records (empty until the response arrives).
    pub answers: Vec<netsim::dns::Record>,
    /// Response received (distinguishes NXDOMAIN from no-reply).
    pub responded: bool,
}

impl DnsLookupApp {
    /// Queries `server` for `name` records of `rtype`.
    pub fn new(server: std::net::IpAddr, name: &str, rtype: RecordType) -> Self {
        DnsLookupApp { server, name: name.to_owned(), rtype, answers: Vec::new(), responded: false }
    }
}

impl App for DnsLookupApp {
    fn start(&mut self, api: &mut HostApi) {
        api.udp_bind(5353);
        let q = DnsMessage::Query { id: 1, name: self.name.clone(), rtype: self.rtype };
        api.udp_send(5353, self.server, DNS_PORT, UdpData::Dns(q));
    }

    fn on_event(&mut self, ev: AppEvent, _api: &mut HostApi) {
        if let AppEvent::UdpDatagram { data: UdpData::Dns(DnsMessage::Response { answers, .. }), .. } = ev {
            self.answers = answers;
            self.responded = true;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
