//! The database tier: a MySQL-5.1-shaped server application.
//!
//! Speaks a length-prefixed query protocol over TCP (optionally inside
//! TLS, or transparently over HIP when addressed by HIT/LSI — the
//! channel abstraction makes all three identical here). Queries execute
//! against real RUBiS tables; service time is charged to the host CPU
//! from the calibrated per-query cost table, and an optional **query
//! cache** (the paper enables MySQL query caching for its httperf
//! response-time experiment, §V-B) short-circuits repeated reads.

use crate::rubis::{execute, Query, QueryCosts, RubisData};
use crate::secure::{Channel, Conn};
use netsim::host::{App, AppEvent, HostApi};
use netsim::tcp::TcpEvent;
use netsim::{SimDuration, SockId};
use sim_crypto::rsa::RsaKeyPair;
use std::any::Any;
use std::collections::HashMap;
use tls_sim::{Certificate, TlsCosts};

/// Length-prefixed frame parser (`u32 BE length | payload`).
#[derive(Default)]
pub struct FrameParser {
    buf: Vec<u8>,
}

impl FrameParser {
    /// Feeds bytes, returning completed frames.
    pub fn feed(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
            if self.buf.len() < 4 + len {
                break;
            }
            out.push(self.buf[4..4 + len].to_vec());
            self.buf.drain(..4 + len);
        }
        out
    }
}

/// Frames a payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Server-side transport security template (per-connection sessions are
/// cloned from this).
#[allow(clippy::large_enum_variant)] // one per server app
pub enum ServerSecurity {
    /// Plain TCP (Basic and HIP scenarios).
    Plain,
    /// TLS with this certificate/key (SSL scenario).
    Tls {
        /// The server certificate presented to clients.
        cert: Certificate,
        /// The matching private key.
        keys: RsaKeyPair,
        /// CPU cost table for the crypto.
        costs: TlsCosts,
    },
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbStats {
    /// Queries received.
    pub queries: u64,
    /// Served from the query cache.
    pub cache_hits: u64,
    /// Mutating queries executed (each clears the cache).
    pub writes: u64,
    /// Malformed queries rejected.
    pub errors: u64,
}

struct DbConn {
    conn: Conn,
    frames: FrameParser,
}

/// The database server application.
pub struct DbServerApp {
    port: u16,
    data: RubisData,
    costs: QueryCosts,
    cache: Option<HashMap<String, String>>,
    security: ServerSecurity,
    conns: HashMap<SockId, DbConn>,
    pending: HashMap<u64, (SockId, Vec<u8>)>,
    next_token: u64,
    /// Counters.
    pub stats: DbStats,
}

impl DbServerApp {
    /// Creates a server on `port` over `data`. `query_cache` mirrors
    /// MySQL's `query_cache_type` switch.
    pub fn new(port: u16, data: RubisData, costs: QueryCosts, query_cache: bool, security: ServerSecurity) -> Self {
        DbServerApp {
            port,
            data,
            costs,
            cache: query_cache.then(HashMap::new),
            security,
            conns: HashMap::new(),
            pending: HashMap::new(),
            next_token: 0,
            stats: DbStats::default(),
        }
    }

    fn make_channel(&self) -> Channel {
        match &self.security {
            ServerSecurity::Plain => Channel::plain(),
            ServerSecurity::Tls { cert, keys, costs } => {
                Channel::tls_server(cert.clone(), keys.clone(), *costs)
            }
        }
    }

    fn handle_query(&mut self, sock: SockId, text: &str, api: &mut HostApi) {
        self.stats.queries += 1;
        let Some(query) = Query::decode(text) else {
            self.stats.errors += 1;
            self.respond(sock, b"ERROR bad query".to_vec(), SimDuration::from_micros(50), api);
            return;
        };
        // Query cache.
        if let Some(cache) = &self.cache {
            if !query.is_write() {
                if let Some(hit) = cache.get(text) {
                    self.stats.cache_hits += 1;
                    let body = hit.clone().into_bytes();
                    let cost = self.costs.cache_hit;
                    self.respond(sock, body, cost, api);
                    return;
                }
            }
        }
        let cost = self.costs.of(&query);
        let result = execute(&mut self.data, &query);
        if query.is_write() {
            self.stats.writes += 1;
            if let Some(cache) = &mut self.cache {
                // MySQL invalidates cached results for modified tables;
                // our single-table-set model clears everything.
                cache.clear();
            }
        } else if let Some(cache) = &mut self.cache {
            cache.insert(text.to_owned(), result.clone());
        }
        self.respond(sock, result.into_bytes(), cost, api);
    }

    /// Schedules the response after the query's service time has been
    /// served by this host's CPU.
    fn respond(&mut self, sock: SockId, body: Vec<u8>, cost: SimDuration, api: &mut HostApi) {
        let delay = api.cpu_charge(cost);
        // `db.service` is the pure execution cost; `db.sojourn` includes
        // time spent queued behind other work on this host's CPU.
        api.metrics().observe_name("db.service", cost.as_nanos());
        api.metrics().observe_name("db.sojourn", delay.as_nanos());
        self.next_token += 1;
        let token = self.next_token;
        self.pending.insert(token, (sock, frame(&body)));
        api.set_timer(delay, token);
    }
}

impl App for DbServerApp {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_listen(self.port), "db port {} taken", self.port);
    }

    fn reset(&mut self) {
        self.conns.clear();
        self.pending.clear();
        // Data, cache, stats and next_token survive: the table files
        // outlive a crash, and monotonic tokens keep stale service
        // timers from matching post-restart work.
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Accepted { sock, .. }) => {
                let channel = self.make_channel();
                self.conns.insert(sock, DbConn { conn: Conn::new(sock, channel), frames: FrameParser::default() });
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let raw = api.tcp_recv(sock);
                let Some(dc) = self.conns.get_mut(&sock) else { return };
                let out = dc.conn.on_bytes(&raw, api);
                if out.failed {
                    self.conns.remove(&sock);
                    api.tcp_abort(sock);
                    return;
                }
                let frames = dc.frames.feed(&out.app_data);
                for f in frames {
                    let text = String::from_utf8_lossy(&f).into_owned();
                    self.handle_query(sock, &text, api);
                }
            }
            AppEvent::Tcp(TcpEvent::PeerClosed(sock))
            | AppEvent::Tcp(TcpEvent::Closed(sock))
            | AppEvent::Tcp(TcpEvent::Reset(sock)) => {
                self.conns.remove(&sock);
            }
            AppEvent::Timer { token } => {
                if let Some((sock, bytes)) = self.pending.remove(&token) {
                    if let Some(dc) = self.conns.get_mut(&sock) {
                        dc.conn.send(&bytes, api);
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_parser_handles_fragmentation_and_pipelining() {
        let mut p = FrameParser::default();
        let mut wire = frame(b"first");
        wire.extend(frame(b"second"));
        let mut frames = Vec::new();
        for chunk in wire.chunks(3) {
            frames.extend(p.feed(chunk));
        }
        assert_eq!(frames, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn empty_frame_round_trip() {
        let mut p = FrameParser::default();
        assert_eq!(p.feed(&frame(b"")), vec![Vec::<u8>::new()]);
    }
}
