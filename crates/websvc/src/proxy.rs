//! The reverse HTTP proxy / load balancer.
//!
//! Plays HAProxy 1.3's role from the paper's architecture (Figure 1):
//! consumers connect with plain HTTP from outside the cloud; the proxy
//! terminates their connections and forwards requests to the web-server
//! VMs using **round robin** ("a simple round robin algorithm was
//! employed to distribute the incoming load"). When the backends are
//! addressed by HIT/LSI, the proxy is exactly the paper's HIP
//! terminator: "HTTP load balancers translate non-HIP traffic into
//! HIP-based traffic inside the cloud" — end users need no HIP at all.

use crate::http::{HttpResponse, RequestParser, ResponseParser};
use crate::secure::{Channel, Conn};
use netsim::host::{App, AppEvent, HostApi};
use netsim::tcp::TcpEvent;
use netsim::{SimTime, SockId};
use std::any::Any;
use std::collections::HashMap;
use std::net::IpAddr;
use tls_sim::TlsCosts;

/// Security toward the backends (client side is always plain HTTP).
pub enum BackendSecurity {
    /// Plain TCP — or HIP when the backend addresses are HITs/LSIs.
    Plain,
    /// TLS to each backend.
    Tls {
        /// Trusted CA for backend certificates.
        ca: sim_crypto::rsa::RsaPublicKey,
        /// CPU cost table for the crypto.
        costs: TlsCosts,
    },
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyStats {
    /// Client connections accepted.
    pub accepted: u64,
    /// Requests forwarded to backends.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub responses: u64,
    /// Backend connections that failed.
    pub backend_failures: u64,
}

struct ClientSide {
    parser: RequestParser,
    backend: Option<SockId>,
}

struct BackendSide {
    conn: Conn,
    parser: ResponseParser,
    client: SockId,
    connected: bool,
    /// Requests accepted before the backend link came up.
    queued: Vec<u8>,
    /// When the first queued byte arrived (feeds the `proxy.queue` span).
    queued_at: Option<SimTime>,
}

/// The reverse proxy application.
pub struct ProxyApp {
    listen_port: u16,
    backends: Vec<(IpAddr, u16)>,
    security: BackendSecurity,
    rr: usize,
    clients: HashMap<SockId, ClientSide>,
    backend_conns: HashMap<SockId, BackendSide>,
    /// Counters.
    pub stats: ProxyStats,
}

impl ProxyApp {
    /// Creates a proxy listening on `listen_port`, balancing over
    /// `backends`.
    pub fn new(listen_port: u16, backends: Vec<(IpAddr, u16)>, security: BackendSecurity) -> Self {
        assert!(!backends.is_empty(), "proxy needs at least one backend");
        ProxyApp {
            listen_port,
            backends,
            security,
            rr: 0,
            clients: HashMap::new(),
            backend_conns: HashMap::new(),
            stats: ProxyStats::default(),
        }
    }

    /// Next backend in round-robin order.
    fn pick_backend(&mut self) -> (IpAddr, u16) {
        let b = self.backends[self.rr % self.backends.len()];
        self.rr += 1;
        b
    }

    fn ensure_backend(&mut self, client: SockId, api: &mut HostApi) -> Option<SockId> {
        if let Some(c) = self.clients.get(&client) {
            if let Some(b) = c.backend {
                return Some(b);
            }
        }
        let (addr, port) = self.pick_backend();
        let sock = api.tcp_connect(addr, port)?;
        self.backend_conns.insert(
            sock,
            BackendSide {
                conn: Conn::new(sock, Channel::plain()),
                parser: ResponseParser::default(),
                client,
                connected: false,
                queued: Vec::new(),
                queued_at: None,
            },
        );
        if let Some(c) = self.clients.get_mut(&client) {
            c.backend = Some(sock);
        }
        Some(sock)
    }

    fn forward(&mut self, client: SockId, data: &[u8], api: &mut HostApi) {
        let Some(backend) = self.ensure_backend(client, api) else {
            self.stats.backend_failures += 1;
            api.metrics().add_name("proxy.backend_fail", 1);
            let resp = HttpResponse::error(502, "no backend").encode();
            api.tcp_send(client, &resp);
            return;
        };
        self.stats.forwarded += 1;
        api.metrics().add_name("proxy.fwd", 1);
        let link = self.backend_conns.get_mut(&backend).expect("just ensured");
        if link.connected {
            link.conn.send(data, api);
        } else {
            if link.queued.is_empty() {
                link.queued_at = Some(api.now());
            }
            link.queued.extend_from_slice(data);
        }
    }
}

impl App for ProxyApp {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_listen(self.listen_port), "proxy port taken");
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Accepted { sock, .. }) => {
                self.stats.accepted += 1;
                self.clients.insert(sock, ClientSide { parser: RequestParser::default(), backend: None });
            }
            AppEvent::Tcp(TcpEvent::Connected(sock)) => {
                // A backend link came up: install its channel, flush.
                let channel = match &self.security {
                    BackendSecurity::Plain => Channel::plain(),
                    BackendSecurity::Tls { ca, costs } => Channel::tls_client(ca.clone(), *costs, sock, api),
                };
                if let Some(link) = self.backend_conns.get_mut(&sock) {
                    link.conn = Conn::new(sock, channel);
                    link.connected = true;
                    if let Some(t0) = link.queued_at.take() {
                        let waited = api.now().since(t0).as_nanos();
                        api.metrics().observe_name("proxy.queue", waited);
                    }
                    if !link.queued.is_empty() {
                        let q = std::mem::take(&mut link.queued);
                        link.conn.send(&q, api);
                    }
                }
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let raw = api.tcp_recv(sock);
                if self.backend_conns.contains_key(&sock) {
                    // Backend → client direction.
                    let link = self.backend_conns.get_mut(&sock).expect("checked");
                    let out = link.conn.on_bytes(&raw, api);
                    link.parser.push(&out.app_data);
                    let client = link.client;
                    let mut responses = Vec::new();
                    while let Some(resp) = link.parser.next_response() {
                        responses.push(resp);
                    }
                    for resp in responses {
                        self.stats.responses += 1;
                        if self.clients.contains_key(&client) {
                            api.tcp_send(client, &resp.encode());
                        }
                    }
                } else if self.clients.contains_key(&sock) {
                    // Client → backend direction: parse requests so we
                    // re-frame cleanly (header rewriting would go here).
                    let mut requests = Vec::new();
                    {
                        let c = self.clients.get_mut(&sock).expect("checked");
                        c.parser.push(&raw);
                        while let Some(req) = c.parser.next_request() {
                            requests.push(req);
                        }
                    }
                    for req in requests {
                        self.forward(sock, &req.encode(), api);
                    }
                }
            }
            AppEvent::Tcp(TcpEvent::ConnectFailed(sock)) => {
                if let Some(link) = self.backend_conns.remove(&sock) {
                    self.stats.backend_failures += 1;
                    api.metrics().add_name("proxy.backend_fail", 1);
                    // Unbind so the client's next request picks a fresh
                    // backend instead of dereferencing the dead one.
                    if let Some(c) = self.clients.get_mut(&link.client) {
                        if c.backend == Some(sock) {
                            c.backend = None;
                        }
                        let resp = HttpResponse::error(502, "backend down").encode();
                        api.tcp_send(link.client, &resp);
                    }
                }
            }
            AppEvent::Tcp(TcpEvent::PeerClosed(sock))
            | AppEvent::Tcp(TcpEvent::Closed(sock))
            | AppEvent::Tcp(TcpEvent::Reset(sock)) => {
                if let Some(link) = self.backend_conns.remove(&sock) {
                    // Backend went away: drop the client pairing so a new
                    // backend is picked on the next request.
                    if let Some(c) = self.clients.get_mut(&link.client) {
                        c.backend = None;
                    }
                } else if let Some(c) = self.clients.remove(&sock) {
                    if let Some(b) = c.backend {
                        api.tcp_close(b);
                        self.backend_conns.remove(&b);
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::v4;

    #[test]
    fn round_robin_cycles() {
        let mut p = ProxyApp::new(
            80,
            vec![(v4(10, 1, 0, 2), 80), (v4(10, 1, 0, 3), 80), (v4(10, 1, 0, 4), 80)],
            BackendSecurity::Plain,
        );
        let picks: Vec<_> = (0..6).map(|_| p.pick_backend().0).collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_eq!(picks[2], picks[5]);
        assert_ne!(picks[0], picks[1]);
        assert_ne!(picks[1], picks[2]);
    }

    #[test]
    #[should_panic]
    fn needs_backends() {
        let _ = ProxyApp::new(80, vec![], BackendSecurity::Plain);
    }
}
