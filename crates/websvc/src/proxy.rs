//! The reverse HTTP proxy / load balancer.
//!
//! Plays HAProxy 1.3's role from the paper's architecture (Figure 1):
//! consumers connect with plain HTTP from outside the cloud; the proxy
//! terminates their connections and forwards requests to the web-server
//! VMs using **round robin** ("a simple round robin algorithm was
//! employed to distribute the incoming load"). When the backends are
//! addressed by HIT/LSI, the proxy is exactly the paper's HIP
//! terminator: "HTTP load balancers translate non-HIP traffic into
//! HIP-based traffic inside the cloud" — end users need no HIP at all.
//!
//! # Failover
//!
//! Each backend runs a health state machine, HAProxy-style:
//!
//! ```text
//!   Healthy ──fail──▶ Suspect ──fail──▶ Ejected{until}
//!      ▲                 │success            │ backoff expires
//!      │◀────────────────┘                   ▼
//!      └──────probe connects────────── Probing ──fail──▶ Ejected (2×)
//! ```
//!
//! Failures are detected passively (connect failures, resets, connect
//! and response timeouts swept by a periodic tick) and actively (a TCP
//! connect probe once an ejection backoff expires — the equivalent of
//! HAProxy's L4 `check`; over HIP backends the probe re-runs the base
//! exchange, which is exactly the recovery we want to exercise).
//! Requests stranded on a failed backend are retried on the next
//! healthy one with exponential backoff, a bounded number of times;
//! clients see `502` (connect failure), `504` (response timeout) or
//! `503` (every backend ejected) instead of a hang.

use crate::http::{HttpResponse, RequestParser, ResponseParser};
use crate::secure::{Channel, Conn};
use netsim::host::{App, AppEvent, HostApi};
use netsim::tcp::TcpEvent;
use netsim::{SimDuration, SimTime, SockId};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;
use tls_sim::TlsCosts;

/// Security toward the backends (client side is always plain HTTP).
pub enum BackendSecurity {
    /// Plain TCP — or HIP when the backend addresses are HITs/LSIs.
    Plain,
    /// TLS to each backend.
    Tls {
        /// Trusted CA for backend certificates.
        ca: sim_crypto::rsa::RsaPublicKey,
        /// CPU cost table for the crypto.
        costs: TlsCosts,
    },
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyStats {
    /// Client connections accepted.
    pub accepted: u64,
    /// Requests forwarded to backends.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub responses: u64,
    /// Backend connections that failed (connect failure, reset, timeout).
    pub backend_failures: u64,
    /// Backends moved to the ejected state.
    pub ejections: u64,
    /// Backends returned to healthy (probe success or live traffic).
    pub recoveries: u64,
    /// Non-healthy backends skipped by the round-robin picker.
    pub skipped: u64,
    /// Requests re-dispatched to another backend after a failure.
    pub retries: u64,
    /// Requests answered 503 because every backend was ejected.
    pub unavailable: u64,
    /// Health-check probes launched.
    pub probes: u64,
    /// Connect/response deadlines that expired.
    pub timeouts: u64,
}

/// Failover tuning knobs (defaults follow HAProxy's spirit: fail fast,
/// back off exponentially, probe before readmitting).
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// House-keeping sweep period (timeout resolution).
    pub tick: SimDuration,
    /// A backend connect pending longer than this has failed.
    pub connect_timeout: SimDuration,
    /// A forwarded request unanswered longer than this has failed.
    pub response_timeout: SimDuration,
    /// Consecutive failures before a backend is ejected.
    pub fail_threshold: u32,
    /// First ejection backoff (doubles per ejection, capped at 8×).
    pub eject_backoff: SimDuration,
    /// Retries (on other backends) before a request is failed upward.
    pub max_retries: u32,
    /// First retry delay (doubles per attempt).
    pub retry_backoff: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            tick: SimDuration::from_millis(100),
            connect_timeout: SimDuration::from_millis(1000),
            response_timeout: SimDuration::from_millis(3000),
            fail_threshold: 2,
            eject_backoff: SimDuration::from_millis(1000),
            max_retries: 2,
            retry_backoff: SimDuration::from_millis(50),
        }
    }
}

/// Per-backend health state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Serving traffic.
    Healthy,
    /// One recent failure — still eligible, next failure ejects.
    Suspect,
    /// Out of rotation until the backoff expires.
    Ejected {
        /// When the ejection backoff expires and a probe may launch.
        until: SimTime,
    },
    /// A health-check connect is in flight; not yet eligible.
    Probing,
}

struct Backend {
    addr: (IpAddr, u16),
    health: Health,
    consecutive_fails: u32,
    /// Lifetime ejections — drives the exponential backoff.
    ejections: u32,
}

struct ClientSide {
    parser: RequestParser,
    backend: Option<SockId>,
}

struct BackendSide {
    conn: Conn,
    parser: ResponseParser,
    client: SockId,
    backend_idx: usize,
    connected: bool,
    /// Framed requests accepted before the link came up.
    queued: VecDeque<Vec<u8>>,
    /// When the first queued request arrived (feeds the `proxy.queue` span).
    queued_at: Option<SimTime>,
    /// Framed requests sent and awaiting a response (front = oldest).
    inflight: VecDeque<Vec<u8>>,
    /// Retry attempts already consumed by the unanswered payload.
    attempts: u32,
    connect_deadline: Option<SimTime>,
    response_deadline: Option<SimTime>,
}

/// A request batch awaiting its retry backoff.
struct PendingRetry {
    client: SockId,
    reqs: Vec<Vec<u8>>,
    attempts: u32,
    due: SimTime,
}

const TIMER_KIND_TICK: u64 = 1;

/// The reverse proxy application.
pub struct ProxyApp {
    listen_port: u16,
    backends: Vec<Backend>,
    security: BackendSecurity,
    /// Failover behavior.
    pub failover: FailoverConfig,
    rr: usize,
    clients: HashMap<SockId, ClientSide>,
    backend_conns: HashMap<SockId, BackendSide>,
    /// Probe socket → (backend index, connect deadline).
    probes: HashMap<SockId, (usize, SimTime)>,
    retries: Vec<PendingRetry>,
    /// Bumped on crash reset so stale timers from a previous boot are
    /// ignored (app timers are fire-and-forget and may outlive a crash).
    epoch: u64,
    /// Counters.
    pub stats: ProxyStats,
}

impl ProxyApp {
    /// Creates a proxy listening on `listen_port`, balancing over
    /// `backends`.
    pub fn new(listen_port: u16, backends: Vec<(IpAddr, u16)>, security: BackendSecurity) -> Self {
        assert!(!backends.is_empty(), "proxy needs at least one backend");
        ProxyApp {
            listen_port,
            backends: backends
                .into_iter()
                .map(|addr| Backend {
                    addr,
                    health: Health::Healthy,
                    consecutive_fails: 0,
                    ejections: 0,
                })
                .collect(),
            security,
            failover: FailoverConfig::default(),
            rr: 0,
            clients: HashMap::new(),
            backend_conns: HashMap::new(),
            probes: HashMap::new(),
            retries: Vec::new(),
            epoch: 0,
            stats: ProxyStats::default(),
        }
    }

    /// The health state of backend `idx` (tests/diagnostics).
    pub fn backend_health(&self, idx: usize) -> Health {
        self.backends[idx].health
    }

    /// Whether any backend is currently ejected or probing.
    pub fn any_backend_out(&self) -> bool {
        self.backends
            .iter()
            .any(|b| matches!(b.health, Health::Ejected { .. } | Health::Probing))
    }

    fn eligible(b: &Backend) -> bool {
        matches!(b.health, Health::Healthy | Health::Suspect)
    }

    /// Next eligible backend in round-robin order, counting how many
    /// non-healthy entries had to be skipped.
    fn pick_backend(&mut self, api: &mut HostApi) -> Option<usize> {
        let n = self.backends.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            if Self::eligible(&self.backends[idx]) {
                self.rr = idx + 1;
                if i > 0 {
                    self.stats.skipped += i as u64;
                    api.metrics().add_name("proxy.skip", i as u64);
                }
                return Some(idx);
            }
        }
        None
    }

    fn record_failure(&mut self, idx: usize, api: &mut HostApi) {
        self.stats.backend_failures += 1;
        api.metrics().add_name("proxy.backend_fail", 1);
        let cfg = self.failover;
        let now = api.now();
        let b = &mut self.backends[idx];
        b.consecutive_fails += 1;
        match b.health {
            Health::Ejected { .. } => {} // already out; keep the clock
            Health::Probing => {
                // Failed probe: back off harder.
                Self::eject(b, now, cfg, &mut self.stats, api);
            }
            Health::Healthy | Health::Suspect => {
                if b.consecutive_fails >= cfg.fail_threshold {
                    Self::eject(b, now, cfg, &mut self.stats, api);
                } else {
                    b.health = Health::Suspect;
                }
            }
        }
    }

    fn eject(b: &mut Backend, now: SimTime, cfg: FailoverConfig, stats: &mut ProxyStats, api: &mut HostApi) {
        let backoff =
            SimDuration::from_nanos(cfg.eject_backoff.as_nanos() << b.ejections.min(3));
        b.health = Health::Ejected { until: now + backoff };
        b.ejections += 1;
        stats.ejections += 1;
        api.metrics().add_name("proxy.eject", 1);
    }

    fn record_success(&mut self, idx: usize, api: &mut HostApi) {
        let b = &mut self.backends[idx];
        b.consecutive_fails = 0;
        if b.health != Health::Healthy {
            b.health = Health::Healthy;
            b.ejections = 0;
            self.stats.recoveries += 1;
            api.metrics().add_name("proxy.recover", 1);
        }
    }

    /// Queues or sends one framed request on an (owned) backend link.
    fn send_on(link: &mut BackendSide, req: Vec<u8>, now: SimTime, cfg: &FailoverConfig, api: &mut HostApi) {
        if link.connected {
            link.conn.send(&req, api);
            link.inflight.push_back(req);
            if link.response_deadline.is_none() {
                link.response_deadline = Some(now + cfg.response_timeout);
            }
        } else {
            if link.queued.is_empty() {
                link.queued_at = Some(now);
            }
            link.queued.push_back(req);
        }
    }

    /// Routes one framed request from `client`, opening a backend
    /// connection if needed. `attempts` counts prior failed dispatches.
    fn dispatch(&mut self, client: SockId, req: Vec<u8>, attempts: u32, api: &mut HostApi) {
        if !self.clients.contains_key(&client) {
            return; // client went away while the request waited
        }
        self.stats.forwarded += 1;
        api.metrics().add_name("proxy.fwd", 1);
        let now = api.now();
        let cfg = self.failover;
        // Reuse the client's bound backend connection if it is live.
        if let Some(bound) = self.clients.get(&client).and_then(|c| c.backend) {
            if let Some(link) = self.backend_conns.get_mut(&bound) {
                link.attempts = link.attempts.max(attempts);
                Self::send_on(link, req, now, &cfg, api);
                return;
            }
        }
        let Some(idx) = self.pick_backend(api) else {
            // Every backend is ejected or probing: shed load gracefully.
            self.stats.unavailable += 1;
            api.metrics().add_name("proxy.503", 1);
            let resp = HttpResponse::error(503, "no healthy backend").encode();
            api.tcp_send(client, &resp);
            return;
        };
        let (addr, port) = self.backends[idx].addr;
        let Some(sock) = api.tcp_connect(addr, port) else {
            self.stats.unavailable += 1;
            api.metrics().add_name("proxy.503", 1);
            let resp = HttpResponse::error(503, "no route to backend").encode();
            api.tcp_send(client, &resp);
            return;
        };
        let mut link = BackendSide {
            conn: Conn::new(sock, Channel::plain()),
            parser: ResponseParser::default(),
            client,
            backend_idx: idx,
            connected: false,
            queued: VecDeque::new(),
            queued_at: None,
            inflight: VecDeque::new(),
            attempts,
            connect_deadline: Some(now + cfg.connect_timeout),
            response_deadline: None,
        };
        Self::send_on(&mut link, req, now, &cfg, api);
        self.backend_conns.insert(sock, link);
        if let Some(c) = self.clients.get_mut(&client) {
            c.backend = Some(sock);
        }
    }

    /// A backend connection failed (`status`: 502 connect / 504
    /// timeout): mark the backend, unbind the client, and retry or fail
    /// the unanswered requests.
    fn fail_backend_conn(&mut self, sock: SockId, status: u16, api: &mut HostApi) {
        let Some(link) = self.backend_conns.remove(&sock) else { return };
        self.record_failure(link.backend_idx, api);
        if let Some(c) = self.clients.get_mut(&link.client) {
            if c.backend == Some(sock) {
                c.backend = None;
            }
        }
        let unanswered: Vec<Vec<u8>> =
            link.inflight.into_iter().chain(link.queued).collect();
        if unanswered.is_empty() {
            return;
        }
        let attempts = link.attempts + 1;
        let cfg = self.failover;
        if attempts > cfg.max_retries {
            // Out of retries: answer every stranded request explicitly.
            api.metrics().add_name("proxy.request_fail", unanswered.len() as u64);
            if self.clients.contains_key(&link.client) {
                let msg = if status == 504 { "backend timeout" } else { "backend down" };
                let resp = HttpResponse::error(status, msg).encode();
                for _ in &unanswered {
                    api.tcp_send(link.client, &resp);
                }
            }
            return;
        }
        self.stats.retries += unanswered.len() as u64;
        api.metrics().add_name("proxy.retry", unanswered.len() as u64);
        let backoff =
            SimDuration::from_nanos(cfg.retry_backoff.as_nanos() << (attempts - 1).min(8));
        self.retries.push(PendingRetry {
            client: link.client,
            reqs: unanswered,
            attempts,
            due: api.now() + backoff,
        });
    }

    fn start_probe(&mut self, idx: usize, api: &mut HostApi) {
        let (addr, port) = self.backends[idx].addr;
        let Some(sock) = api.tcp_connect(addr, port) else { return };
        self.backends[idx].health = Health::Probing;
        self.probes.insert(sock, (idx, api.now() + self.failover.connect_timeout));
        self.stats.probes += 1;
        api.metrics().add_name("proxy.probe", 1);
    }

    /// Periodic sweep: due retries, expired connect/response deadlines,
    /// expired probes, and ejection backoffs ready for a probe.
    fn tick(&mut self, api: &mut HostApi) {
        let now = api.now();

        // Due retries, in arrival order.
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.retries.len() {
            if self.retries[i].due <= now {
                due.push(self.retries.remove(i));
            } else {
                i += 1;
            }
        }
        for r in due {
            for req in r.reqs {
                self.dispatch(r.client, req, r.attempts, api);
            }
        }

        // Expired deadlines. Sort socket ids so the sweep order (and
        // therefore the event sequence) is independent of HashMap order.
        let mut expired: Vec<(SockId, u16)> = self
            .backend_conns
            .iter()
            .filter_map(|(s, l)| {
                let connect_late = !l.connected && l.connect_deadline.is_some_and(|d| d <= now);
                let response_late = l.response_deadline.is_some_and(|d| d <= now);
                if connect_late {
                    Some((*s, 502))
                } else if response_late {
                    Some((*s, 504))
                } else {
                    None
                }
            })
            .collect();
        expired.sort_by_key(|(s, _)| *s);
        for (sock, status) in expired {
            self.stats.timeouts += 1;
            api.metrics().add_name("proxy.timeout", 1);
            api.tcp_abort(sock);
            self.fail_backend_conn(sock, status, api);
        }

        // Probes that never connected.
        let mut dead_probes: Vec<SockId> = self
            .probes
            .iter()
            .filter_map(|(s, (_, d))| (*d <= now).then_some(*s))
            .collect();
        dead_probes.sort();
        for sock in dead_probes {
            let (idx, _) = self.probes.remove(&sock).expect("collected above");
            api.tcp_abort(sock);
            self.record_failure(idx, api);
        }

        // Ejection backoffs that have expired: probe before readmitting.
        for idx in 0..self.backends.len() {
            if matches!(self.backends[idx].health, Health::Ejected { until } if until <= now) {
                self.start_probe(idx, api);
            }
        }

        api.set_timer(self.failover.tick, (self.epoch << 8) | TIMER_KIND_TICK);
    }
}

impl App for ProxyApp {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_listen(self.listen_port), "proxy port taken");
        api.set_timer(self.failover.tick, (self.epoch << 8) | TIMER_KIND_TICK);
    }

    fn reset(&mut self) {
        self.epoch += 1; // stale timers from the old boot are ignored
        self.clients.clear();
        self.backend_conns.clear();
        self.probes.clear();
        self.retries.clear();
        self.rr = 0;
        for b in &mut self.backends {
            b.health = Health::Healthy;
            b.consecutive_fails = 0;
            b.ejections = 0;
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token } => {
                if token >> 8 != self.epoch {
                    return;
                }
                if token & 0xff == TIMER_KIND_TICK {
                    self.tick(api);
                }
            }
            AppEvent::Tcp(TcpEvent::Accepted { sock, .. }) => {
                self.stats.accepted += 1;
                self.clients.insert(sock, ClientSide { parser: RequestParser::default(), backend: None });
            }
            AppEvent::Tcp(TcpEvent::Connected(sock)) => {
                if let Some((idx, _)) = self.probes.remove(&sock) {
                    // Probe succeeded: the backend accepts connections
                    // again (over HIP this also proved a fresh BEX).
                    self.record_success(idx, api);
                    api.tcp_close(sock);
                    return;
                }
                // A backend link came up: install its channel, flush.
                let channel = match &self.security {
                    BackendSecurity::Plain => Channel::plain(),
                    BackendSecurity::Tls { ca, costs } => Channel::tls_client(ca.clone(), *costs, sock, api),
                };
                let cfg = self.failover;
                let mut flushed = None;
                if let Some(link) = self.backend_conns.get_mut(&sock) {
                    link.conn = Conn::new(sock, channel);
                    link.connected = true;
                    link.connect_deadline = None;
                    if let Some(t0) = link.queued_at.take() {
                        let waited = api.now().since(t0).as_nanos();
                        api.metrics().observe_name("proxy.queue", waited);
                    }
                    let now = api.now();
                    while let Some(req) = link.queued.pop_front() {
                        Self::send_on(link, req, now, &cfg, api);
                    }
                    flushed = Some(link.backend_idx);
                }
                if let Some(idx) = flushed {
                    self.record_success(idx, api);
                }
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let raw = api.tcp_recv(sock);
                if self.backend_conns.contains_key(&sock) {
                    // Backend → client direction.
                    let link = self.backend_conns.get_mut(&sock).expect("checked");
                    let out = link.conn.on_bytes(&raw, api);
                    link.parser.push(&out.app_data);
                    let client = link.client;
                    let idx = link.backend_idx;
                    let mut responses = Vec::new();
                    while let Some(resp) = link.parser.next_response() {
                        responses.push(resp);
                        link.inflight.pop_front();
                        link.attempts = 0;
                    }
                    if !responses.is_empty() {
                        link.response_deadline = if link.inflight.is_empty() && link.queued.is_empty() {
                            None
                        } else {
                            Some(api.now() + self.failover.response_timeout)
                        };
                        self.record_success(idx, api);
                    }
                    for resp in responses {
                        self.stats.responses += 1;
                        if self.clients.contains_key(&client) {
                            api.tcp_send(client, &resp.encode());
                        }
                    }
                } else if self.clients.contains_key(&sock) {
                    // Client → backend direction: parse requests so we
                    // re-frame cleanly (header rewriting would go here).
                    let mut requests = Vec::new();
                    {
                        let c = self.clients.get_mut(&sock).expect("checked");
                        c.parser.push(&raw);
                        while let Some(req) = c.parser.next_request() {
                            requests.push(req);
                        }
                    }
                    for req in requests {
                        self.dispatch(sock, req.encode(), 0, api);
                    }
                }
            }
            AppEvent::Tcp(TcpEvent::ConnectFailed(sock)) => {
                if let Some((idx, _)) = self.probes.remove(&sock) {
                    self.record_failure(idx, api);
                } else {
                    self.fail_backend_conn(sock, 502, api);
                }
            }
            AppEvent::Tcp(TcpEvent::Reset(sock)) => {
                if let Some((idx, _)) = self.probes.remove(&sock) {
                    self.record_failure(idx, api);
                } else if self.backend_conns.contains_key(&sock) {
                    self.fail_backend_conn(sock, 502, api);
                } else if let Some(c) = self.clients.remove(&sock) {
                    if let Some(b) = c.backend {
                        api.tcp_close(b);
                        self.backend_conns.remove(&b);
                    }
                }
            }
            AppEvent::Tcp(TcpEvent::PeerClosed(sock)) | AppEvent::Tcp(TcpEvent::Closed(sock)) => {
                if self.probes.remove(&sock).is_some() {
                    // Probe socket wound down; nothing to do.
                } else if let Some(link) = self.backend_conns.get(&sock) {
                    if link.inflight.is_empty() && link.queued.is_empty() {
                        // Clean keep-alive close: unbind, no failure.
                        let client = link.client;
                        self.backend_conns.remove(&sock);
                        if let Some(c) = self.clients.get_mut(&client) {
                            if c.backend == Some(sock) {
                                c.backend = None;
                            }
                        }
                    } else {
                        // Closed with unanswered requests: a failure.
                        self.fail_backend_conn(sock, 502, api);
                    }
                } else if let Some(c) = self.clients.remove(&sock) {
                    if let Some(b) = c.backend {
                        api.tcp_close(b);
                        self.backend_conns.remove(&b);
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::v4;

    fn three_backend_proxy() -> ProxyApp {
        ProxyApp::new(
            80,
            vec![(v4(10, 1, 0, 2), 80), (v4(10, 1, 0, 3), 80), (v4(10, 1, 0, 4), 80)],
            BackendSecurity::Plain,
        )
    }

    #[test]
    fn eligibility_skips_ejected_and_probing() {
        let mut p = three_backend_proxy();
        assert!(ProxyApp::eligible(&p.backends[0]));
        p.backends[1].health = Health::Ejected { until: SimTime(1) };
        assert!(!ProxyApp::eligible(&p.backends[1]));
        p.backends[2].health = Health::Probing;
        assert!(!ProxyApp::eligible(&p.backends[2]));
        p.backends[0].health = Health::Suspect;
        assert!(ProxyApp::eligible(&p.backends[0]), "suspect still serves");
    }

    #[test]
    fn reset_reboots_health_and_epoch() {
        let mut p = three_backend_proxy();
        p.backends[0].health = Health::Ejected { until: SimTime(99) };
        p.backends[0].ejections = 3;
        p.stats.ejections = 3;
        let e0 = p.epoch;
        p.reset();
        assert_eq!(p.epoch, e0 + 1);
        assert_eq!(p.backends[0].health, Health::Healthy);
        assert_eq!(p.backends[0].ejections, 0);
        assert_eq!(p.stats.ejections, 3, "stats survive the crash");
    }

    #[test]
    #[should_panic]
    fn needs_backends() {
        let _ = ProxyApp::new(80, vec![], BackendSecurity::Plain);
    }
}
