//! Per-connection transport security: the three scenarios of §V-B.
//!
//! - **Basic** — plain TCP over locators, no protection.
//! - **HIP** — plain TCP at the application, addressed to a HIT or LSI;
//!   the host's HIP shim encrypts below (the application is unmodified,
//!   which is HIP's deployment story).
//! - **SSL** — TLS session layered inside the TCP stream by the
//!   application, as OpenSSL/OpenVPN would.
//!
//! [`Channel`] wraps one TCP socket's security state so server and
//! client apps handle all three scenarios with the same code path.

use netsim::host::HostApi;
use netsim::{SimDuration, SockId};
use tls_sim::{Certificate, TlsCosts, TlsSession};

/// Which protection a deployment uses (drives addressing + channels).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// No security.
    Basic,
    /// HIP + ESP below the transport; apps address peers by HIT.
    Hip,
    /// HIP with legacy LSI addressing (what the paper actually measured:
    /// "all the experiments involving HIP were carried out with LSIs").
    HipLsi,
    /// TLS in the application byte stream.
    Ssl,
}

impl Scenario {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Basic => "Basic",
            Scenario::Hip => "HIP (HIT)",
            Scenario::HipLsi => "HIP",
            Scenario::Ssl => "SSL",
        }
    }

    /// Does this scenario use a TLS channel inside the stream?
    pub fn uses_tls(self) -> bool {
        self == Scenario::Ssl
    }

    /// Does this scenario rely on the HIP shim?
    pub fn uses_hip(self) -> bool {
        matches!(self, Scenario::Hip | Scenario::HipLsi)
    }
}

/// Security state of one TCP connection.
pub enum Channel {
    /// Pass-through (Basic and HIP scenarios: HIP encrypts below).
    Plain,
    /// TLS endpoint (SSL scenario).
    Tls(Box<TlsSession>),
}

/// What `Channel::on_bytes` produced.
#[derive(Default)]
pub struct ChannelOutput {
    /// Decrypted application bytes.
    pub app_data: Vec<u8>,
    /// True when the channel just became ready for app data.
    pub became_ready: bool,
    /// True if the channel failed fatally (connection should be closed).
    pub failed: bool,
}

impl Channel {
    /// A plain channel.
    pub fn plain() -> Self {
        Channel::Plain
    }

    /// A TLS client channel; emits its ClientHello immediately.
    pub fn tls_client(ca: sim_crypto::rsa::RsaPublicKey, costs: TlsCosts, sock: SockId, api: &mut HostApi) -> Self {
        let mut session = TlsSession::client(ca, costs);
        let hello = session.start_handshake(api.ctx.rng());
        api.tcp_send(sock, &hello);
        Channel::Tls(Box::new(session))
    }

    /// A TLS server channel.
    pub fn tls_server(cert: Certificate, keys: sim_crypto::rsa::RsaKeyPair, costs: TlsCosts) -> Self {
        Channel::Tls(Box::new(TlsSession::server(cert, keys, costs)))
    }

    /// True once application data may be sent.
    pub fn ready(&self) -> bool {
        match self {
            Channel::Plain => true,
            Channel::Tls(s) => s.is_established(),
        }
    }

    /// Feeds raw TCP bytes; replies/decrypted data are handled through
    /// `api` (handshake replies are sent, crypto CPU work is charged).
    pub fn on_bytes(&mut self, sock: SockId, raw: &[u8], api: &mut HostApi) -> ChannelOutput {
        match self {
            Channel::Plain => ChannelOutput {
                app_data: raw.to_vec(),
                became_ready: false,
                failed: false,
            },
            Channel::Tls(session) => {
                let out = session.on_bytes(raw, api.ctx.rng());
                // Charge the crypto work to this host's CPU: later service
                // work queues behind it, which is how security cost turns
                // into latency/throughput effects.
                if out.work > SimDuration::ZERO {
                    api.cpu_charge(out.work);
                }
                if !out.to_peer.is_empty() {
                    api.tcp_send(sock, &out.to_peer);
                }
                ChannelOutput {
                    app_data: out.app_data,
                    became_ready: out.handshake_complete,
                    failed: out.error.is_some(),
                }
            }
        }
    }

    /// Sends application data through the channel.
    pub fn send(&mut self, sock: SockId, app_data: &[u8], api: &mut HostApi) {
        match self {
            Channel::Plain => api.tcp_send(sock, app_data),
            Channel::Tls(session) => {
                debug_assert!(session.is_established(), "send before TLS handshake");
                let (wire, work) = session.seal(app_data);
                if work > SimDuration::ZERO {
                    api.cpu_charge(work);
                }
                api.tcp_send(sock, &wire);
            }
        }
    }
}

/// A connection wrapper: channel + outbox of app data queued until the
/// channel becomes ready (e.g. during the TLS handshake).
pub struct Conn {
    /// The underlying TCP socket.
    pub sock: SockId,
    /// Its security state.
    pub channel: Channel,
    outbox: Vec<u8>,
}

impl Conn {
    /// Wraps a socket with a channel.
    pub fn new(sock: SockId, channel: Channel) -> Self {
        Conn { sock, channel, outbox: Vec::new() }
    }

    /// Queues (or sends) application data.
    pub fn send(&mut self, data: &[u8], api: &mut HostApi) {
        if self.channel.ready() && self.outbox.is_empty() {
            self.channel.send(self.sock, data, api);
        } else {
            self.outbox.extend_from_slice(data);
        }
    }

    /// Feeds raw bytes; flushes the outbox when the channel comes up.
    pub fn on_bytes(&mut self, raw: &[u8], api: &mut HostApi) -> ChannelOutput {
        let out = self.channel.on_bytes(self.sock, raw, api);
        if out.became_ready && !self.outbox.is_empty() {
            let pending = std::mem::take(&mut self.outbox);
            self.channel.send(self.sock, &pending, api);
        }
        out
    }

    /// True once app data flows without queuing.
    pub fn ready(&self) -> bool {
        self.channel.ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_labels() {
        assert_eq!(Scenario::Basic.label(), "Basic");
        assert_eq!(Scenario::HipLsi.label(), "HIP");
        assert_eq!(Scenario::Ssl.label(), "SSL");
        assert!(Scenario::Ssl.uses_tls());
        assert!(!Scenario::Ssl.uses_hip());
        assert!(Scenario::HipLsi.uses_hip());
        assert!(Scenario::Hip.uses_hip());
        assert!(!Scenario::Basic.uses_hip());
    }

    #[test]
    fn plain_channel_is_transparent() {
        let ch = Channel::plain();
        assert!(ch.ready());
    }
    // TLS channel behaviour is covered end-to-end in the webserver/db
    // integration tests, where real sockets and HostApi exist.
}
