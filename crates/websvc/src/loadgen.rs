//! Load generators: the measurement tooling of §V-A.
//!
//! - [`JmeterApp`] — closed-loop concurrent HTTP clients (jmeter 2.3.4's
//!   role): N virtual users, each issuing a random RUBiS GET, waiting
//!   for the response, and immediately issuing the next.
//! - [`HttperfApp`] — open-loop fixed-rate generator (httperf 0.9.0's
//!   role): a new connection + request at a constant rate, response
//!   times recorded regardless of completion order.
//! - [`IperfServerApp`]/[`IperfClientApp`] — bulk-TCP throughput
//!   measurement (iperf 2.0.5's role), keeping the pipe full and
//!   counting received bytes.
//! - [`BulkSendApp`] — fixed-size bulk response: exactly N bytes, then
//!   close (the datapath-batching benchmarks' workload).
//! - [`PingApp`] — ICMP RTT measurement, N echo requests at an interval.

use crate::http::{HttpRequest, ResponseParser};
use crate::rubis::WorkloadMix;
use netsim::host::{App, AppEvent, HostApi};
use netsim::tcp::TcpEvent;
use netsim::{SimDuration, SimTime, SockId};
use std::any::Any;
use std::collections::HashMap;
use std::net::IpAddr;

/// Latency accumulator.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// Records a sample in milliseconds.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_millis_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean (ms).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (ms).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|s| (s - m).powi(2)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Percentile (0..=100) of the samples.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

// ---------------------------------------------------------------------
// jmeter: closed-loop concurrent clients
// ---------------------------------------------------------------------

/// Per-sim-second buckets of successful vs. failed requests — the
/// goodput/error timeline the resilience benchmark plots around fault
/// injection.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Successful (HTTP 200) completions per sim-second.
    pub ok: Vec<u64>,
    /// Errors (non-200 responses, resets, connect failures) per
    /// sim-second.
    pub err: Vec<u64>,
}

impl Timeline {
    fn bucket(now: SimTime) -> usize {
        (now.as_nanos() / 1_000_000_000) as usize
    }

    fn bump(v: &mut Vec<u64>, b: usize) {
        if v.len() <= b {
            v.resize(b + 1, 0);
        }
        v[b] += 1;
    }

    fn record_ok(&mut self, now: SimTime) {
        Self::bump(&mut self.ok, Self::bucket(now));
    }

    fn record_err(&mut self, now: SimTime) {
        Self::bump(&mut self.err, Self::bucket(now));
    }

    /// Buckets recorded so far (max of both series).
    pub fn len(&self) -> usize {
        self.ok.len().max(self.err.len())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ok.is_empty() && self.err.is_empty()
    }

    /// `(ok, err)` for bucket `b` (0 past the recorded end).
    pub fn at(&self, b: usize) -> (u64, u64) {
        (
            self.ok.get(b).copied().unwrap_or(0),
            self.err.get(b).copied().unwrap_or(0),
        )
    }
}

struct JmeterSession {
    sock: Option<SockId>,
    parser: ResponseParser,
    sent_at: SimTime,
    outstanding: bool,
}

/// Closed-loop generator: `sessions` concurrent virtual users.
pub struct JmeterApp {
    target: (IpAddr, u16),
    sessions: Vec<JmeterSession>,
    by_sock: HashMap<SockId, usize>,
    mix: WorkloadMix,
    users: u32,
    items: u32,
    /// Measurement window start: completions before this are warm-up.
    pub measure_from: SimTime,
    /// Completed requests within the measurement window.
    pub completed: u64,
    /// Per-request latencies.
    pub latency: LatencyStats,
    /// Failed connections/requests (non-200 responses, resets,
    /// connect failures).
    pub errors: u64,
    /// Per-sim-second goodput/error buckets (recorded regardless of
    /// `measure_from`, so warm-up shows up too).
    pub timeline: Timeline,
}

/// Reconnect timer tokens are `JMETER_RECONNECT_BASE + session index`.
const JMETER_RECONNECT_BASE: u64 = 1000;
/// Backoff before a dead session dials again.
const JMETER_RECONNECT_DELAY: SimDuration = SimDuration::from_millis(200);

impl JmeterApp {
    /// Creates a generator with `sessions` concurrent users against
    /// `target`, drawing from `mix` over a dataset of `users`×`items`.
    pub fn new(target: (IpAddr, u16), sessions: usize, mix: WorkloadMix, users: u32, items: u32) -> Self {
        JmeterApp {
            target,
            sessions: (0..sessions)
                .map(|_| JmeterSession {
                    sock: None,
                    parser: ResponseParser::default(),
                    sent_at: SimTime::ZERO,
                    outstanding: false,
                })
                .collect(),
            by_sock: HashMap::new(),
            mix,
            users,
            items,
            measure_from: SimTime::ZERO,
            completed: 0,
            latency: LatencyStats::default(),
            errors: 0,
            timeline: Timeline::default(),
        }
    }

    fn connect_session(&mut self, idx: usize, api: &mut HostApi) {
        if self.sessions[idx].sock.is_some() {
            return;
        }
        if let Some(sock) = api.tcp_connect(self.target.0, self.target.1) {
            self.sessions[idx].sock = Some(sock);
            self.sessions[idx].outstanding = false;
            self.sessions[idx].parser = ResponseParser::default();
            self.by_sock.insert(sock, idx);
        } else {
            // No route right now (e.g. the LB is mid-restart): back off.
            api.set_timer(JMETER_RECONNECT_DELAY, JMETER_RECONNECT_BASE + idx as u64);
        }
    }

    /// Drops the session's socket and schedules a redial, so a crashed
    /// or restarted server does not permanently shrink the user count.
    fn session_died(&mut self, idx: usize, sock: SockId, api: &mut HostApi) {
        self.by_sock.remove(&sock);
        self.sessions[idx].sock = None;
        self.sessions[idx].outstanding = false;
        api.set_timer(JMETER_RECONNECT_DELAY, JMETER_RECONNECT_BASE + idx as u64);
    }

    fn fire_request(&mut self, idx: usize, api: &mut HostApi) {
        let draw = api.random_f64();
        let rng_val = api.random_u64();
        // Reads only when the deployment disables writes via the mix.
        let q = self.mix.sample(self.users, self.items, draw, rng_val);
        let req = HttpRequest::get(&q.to_path()).encode();
        let s = &mut self.sessions[idx];
        if let Some(sock) = s.sock {
            s.sent_at = api.now();
            s.outstanding = true;
            api.tcp_send(sock, &req);
        }
    }
}

impl App for JmeterApp {
    fn start(&mut self, api: &mut HostApi) {
        for idx in 0..self.sessions.len() {
            self.connect_session(idx, api);
        }
    }

    fn reset(&mut self) {
        for s in &mut self.sessions {
            s.sock = None;
            s.outstanding = false;
            s.parser = ResponseParser::default();
        }
        self.by_sock.clear();
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token } if token >= JMETER_RECONNECT_BASE => {
                let idx = (token - JMETER_RECONNECT_BASE) as usize;
                if idx < self.sessions.len() {
                    self.connect_session(idx, api);
                }
            }
            AppEvent::Tcp(TcpEvent::Connected(sock)) => {
                if let Some(&idx) = self.by_sock.get(&sock) {
                    self.fire_request(idx, api);
                }
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let Some(&idx) = self.by_sock.get(&sock) else { return };
                let raw = api.tcp_recv(sock);
                let mut statuses = Vec::new();
                {
                    let s = &mut self.sessions[idx];
                    s.parser.push(&raw);
                    while let Some(resp) = s.parser.next_response() {
                        statuses.push(resp.status);
                    }
                }
                if !statuses.is_empty() && self.sessions[idx].outstanding {
                    let sent_at = self.sessions[idx].sent_at;
                    self.sessions[idx].outstanding = false;
                    // Only 200s count as goodput; a 502/503/504 from the
                    // proxy is a served-but-failed request.
                    if statuses.iter().all(|&s| s == 200) {
                        self.timeline.record_ok(api.now());
                        if api.now() >= self.measure_from {
                            self.completed += 1;
                            let rt = api.now().since(sent_at);
                            self.latency.record(rt);
                            api.metrics().observe_name("client.latency", rt.as_nanos());
                        }
                    } else {
                        self.errors += 1;
                        self.timeline.record_err(api.now());
                        api.metrics().add_name("client.http_error", 1);
                    }
                    // Closed loop, zero think time: next request now.
                    self.fire_request(idx, api);
                }
            }
            AppEvent::Tcp(TcpEvent::ConnectFailed(sock)) | AppEvent::Tcp(TcpEvent::Reset(sock)) => {
                if let Some(&idx) = self.by_sock.get(&sock) {
                    self.errors += 1;
                    self.timeline.record_err(api.now());
                    self.session_died(idx, sock, api);
                }
            }
            AppEvent::Tcp(TcpEvent::PeerClosed(sock)) | AppEvent::Tcp(TcpEvent::Closed(sock)) => {
                // Orderly close (e.g. server keep-alive limit): redial
                // without counting an error.
                if let Some(&idx) = self.by_sock.get(&sock) {
                    self.session_died(idx, sock, api);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// httperf: open-loop fixed-rate generator
// ---------------------------------------------------------------------

struct HttperfConn {
    parser: ResponseParser,
    sent_at: SimTime,
    requested: bool,
}

/// Open-loop generator: one new connection + request every `1/rate`.
pub struct HttperfApp {
    target: (IpAddr, u16),
    /// Requests per second.
    rate: f64,
    mix: WorkloadMix,
    users: u32,
    items: u32,
    conns: HashMap<SockId, HttperfConn>,
    /// Stop issuing after this many requests (0 = unlimited).
    pub max_requests: u64,
    issued: u64,
    /// Measurement window start.
    pub measure_from: SimTime,
    /// Completed responses.
    pub completed: u64,
    /// Response times (request sent → response complete).
    pub latency: LatencyStats,
    /// Connection failures.
    pub errors: u64,
}

const TIMER_TICK: u64 = 1;

impl HttperfApp {
    /// Creates a generator issuing `rate` req/s against `target`.
    pub fn new(target: (IpAddr, u16), rate: f64, mix: WorkloadMix, users: u32, items: u32) -> Self {
        assert!(rate > 0.0);
        HttperfApp {
            target,
            rate,
            mix,
            users,
            items,
            conns: HashMap::new(),
            max_requests: 0,
            issued: 0,
            measure_from: SimTime::ZERO,
            completed: 0,
            latency: LatencyStats::default(),
            errors: 0,
        }
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate)
    }
}

impl App for HttperfApp {
    fn start(&mut self, api: &mut HostApi) {
        api.set_timer(self.interval(), TIMER_TICK);
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token: TIMER_TICK }
                if (self.max_requests == 0 || self.issued < self.max_requests) => {
                    self.issued += 1;
                    match api.tcp_connect(self.target.0, self.target.1) {
                        Some(sock) => {
                            self.conns.insert(
                                sock,
                                HttperfConn {
                                    parser: ResponseParser::default(),
                                    sent_at: SimTime::ZERO,
                                    requested: false,
                                },
                            );
                        }
                        None => self.errors += 1,
                    }
                    api.set_timer(self.interval(), TIMER_TICK);
                }
            AppEvent::Tcp(TcpEvent::Connected(sock)) => {
                let draw = api.random_f64();
                let rng_val = api.random_u64();
                let q = self.mix.sample(self.users, self.items, draw, rng_val);
                let req = HttpRequest::get(&q.to_path()).encode();
                if let Some(c) = self.conns.get_mut(&sock) {
                    c.sent_at = api.now();
                    c.requested = true;
                    api.tcp_send(sock, &req);
                }
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let raw = api.tcp_recv(sock);
                let Some(c) = self.conns.get_mut(&sock) else { return };
                c.parser.push(&raw);
                if c.parser.next_response().is_some() {
                    let sent_at = c.sent_at;
                    if c.requested && api.now() >= self.measure_from {
                        self.completed += 1;
                        let rt = api.now().since(sent_at);
                        self.latency.record(rt);
                        api.metrics().observe_name("client.latency", rt.as_nanos());
                    }
                    self.conns.remove(&sock);
                    api.tcp_close(sock);
                }
            }
            AppEvent::Tcp(TcpEvent::ConnectFailed(sock)) | AppEvent::Tcp(TcpEvent::Reset(sock))
                if self.conns.remove(&sock).is_some() => {
                    self.errors += 1;
                }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// iperf: bulk TCP throughput
// ---------------------------------------------------------------------

/// Receives a bulk stream and counts bytes.
pub struct IperfServerApp {
    port: u16,
    /// Total payload bytes received.
    pub bytes: u64,
    /// First byte arrival.
    pub first_byte: Option<SimTime>,
    /// Last byte arrival.
    pub last_byte: Option<SimTime>,
}

impl IperfServerApp {
    /// Listens on `port`.
    pub fn new(port: u16) -> Self {
        IperfServerApp { port, bytes: 0, first_byte: None, last_byte: None }
    }

    /// Measured goodput in Mbit/s over the receive interval.
    pub fn mbits_per_sec(&self) -> f64 {
        match (self.first_byte, self.last_byte) {
            (Some(a), Some(b)) if b > a => {
                (self.bytes as f64 * 8.0) / b.since(a).as_secs_f64() / 1e6
            }
            _ => 0.0,
        }
    }
}

impl App for IperfServerApp {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_listen(self.port));
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(sock)) = ev {
            let data = api.tcp_recv(sock);
            if !data.is_empty() {
                self.bytes += data.len() as u64;
                if self.first_byte.is_none() {
                    self.first_byte = Some(api.now());
                }
                self.last_byte = Some(api.now());
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends a bulk stream for a fixed duration, keeping the send buffer
/// topped up (so the window, not the application, is the limit).
pub struct IperfClientApp {
    target: (IpAddr, u16),
    duration: SimDuration,
    /// Wait this long before connecting (lets Teredo qualification or a
    /// HIP base exchange settle first).
    pub start_delay: SimDuration,
    sock: Option<SockId>,
    started_at: SimTime,
    /// Bytes handed to TCP.
    pub bytes_sent: u64,
    done: bool,
}

const IPERF_CHUNK: usize = 64 * 1024;
const IPERF_HIGH_WATER: usize = 256 * 1024;
const TIMER_START: u64 = 2;

impl IperfClientApp {
    /// Streams to `target` for `duration` once connected.
    pub fn new(target: (IpAddr, u16), duration: SimDuration) -> Self {
        IperfClientApp {
            target,
            duration,
            start_delay: SimDuration::ZERO,
            sock: None,
            started_at: SimTime::ZERO,
            bytes_sent: 0,
            done: false,
        }
    }

    fn connect_now(&mut self, api: &mut HostApi) {
        self.sock = api.tcp_connect(self.target.0, self.target.1);
        assert!(self.sock.is_some(), "iperf: no source address for {}", self.target.0);
    }

    fn top_up(&mut self, api: &mut HostApi) {
        let Some(sock) = self.sock else { return };
        if self.done {
            return;
        }
        if api.now().since(self.started_at) >= self.duration && self.bytes_sent > 0 {
            self.done = true;
            api.tcp_close(sock);
            return;
        }
        while api.tcp_buffered(sock) < IPERF_HIGH_WATER {
            api.tcp_send(sock, &[0x55u8; IPERF_CHUNK]);
            self.bytes_sent += IPERF_CHUNK as u64;
        }
        api.set_timer(SimDuration::from_millis(5), TIMER_TICK);
    }
}

impl App for IperfClientApp {
    fn start(&mut self, api: &mut HostApi) {
        if self.start_delay == SimDuration::ZERO {
            self.connect_now(api);
        } else {
            api.set_timer(self.start_delay, TIMER_START);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token: TIMER_START } => self.connect_now(api),
            AppEvent::Tcp(TcpEvent::Connected(_)) => {
                self.started_at = api.now();
                self.top_up(api);
            }
            AppEvent::Timer { token: TIMER_TICK } => self.top_up(api),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends exactly `total` bulk bytes and closes — the fixed-size cousin
/// of [`IperfClientApp`], for experiments where the transfer size (not
/// the duration) is the controlled variable, e.g. the datapath-batching
/// benchmarks that compare events dispatched per megabyte moved.
pub struct BulkSendApp {
    target: (IpAddr, u16),
    total: u64,
    /// Wait this long before connecting (lets a HIP base exchange or
    /// Teredo qualification settle first).
    pub start_delay: SimDuration,
    sock: Option<SockId>,
    /// Bytes handed to TCP so far.
    pub bytes_sent: u64,
    done: bool,
}

impl BulkSendApp {
    /// Streams `total` bytes to `target` once connected, then closes.
    pub fn new(target: (IpAddr, u16), total: u64) -> Self {
        BulkSendApp {
            target,
            total,
            start_delay: SimDuration::ZERO,
            sock: None,
            bytes_sent: 0,
            done: false,
        }
    }

    fn connect_now(&mut self, api: &mut HostApi) {
        self.sock = api.tcp_connect(self.target.0, self.target.1);
        assert!(self.sock.is_some(), "bulk send: no source address for {}", self.target.0);
    }

    fn top_up(&mut self, api: &mut HostApi) {
        let Some(sock) = self.sock else { return };
        if self.done {
            return;
        }
        while self.bytes_sent < self.total && api.tcp_buffered(sock) < IPERF_HIGH_WATER {
            let n = (self.total - self.bytes_sent).min(IPERF_CHUNK as u64) as usize;
            api.tcp_send(sock, &vec![0x55u8; n]);
            self.bytes_sent += n as u64;
        }
        if self.bytes_sent >= self.total {
            self.done = true;
            api.tcp_close(sock);
        } else {
            api.set_timer(SimDuration::from_millis(5), TIMER_TICK);
        }
    }
}

impl App for BulkSendApp {
    fn start(&mut self, api: &mut HostApi) {
        if self.start_delay == SimDuration::ZERO {
            self.connect_now(api);
        } else {
            api.set_timer(self.start_delay, TIMER_START);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token: TIMER_START } => self.connect_now(api),
            AppEvent::Tcp(TcpEvent::Connected(_)) => self.top_up(api),
            AppEvent::Timer { token: TIMER_TICK } => self.top_up(api),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// ping: ICMP RTT
// ---------------------------------------------------------------------

/// Sends `count` echo requests and records RTTs (the paper's "average
/// response times for ICMP for 20 requests").
pub struct PingApp {
    target: IpAddr,
    count: u16,
    interval: SimDuration,
    ident: u16,
    payload_len: usize,
    /// Wait this long before the first echo request.
    pub start_delay: SimDuration,
    sent: u16,
    in_flight: HashMap<u16, SimTime>,
    /// RTT samples.
    pub rtts: LatencyStats,
    /// Echo replies received.
    pub received: u16,
}

impl PingApp {
    /// Pings `target` `count` times at `interval`.
    pub fn new(target: IpAddr, count: u16, interval: SimDuration, ident: u16) -> Self {
        PingApp {
            target,
            count,
            interval,
            ident,
            payload_len: 56,
            start_delay: SimDuration::ZERO,
            sent: 0,
            in_flight: HashMap::new(),
            rtts: LatencyStats::default(),
            received: 0,
        }
    }

    fn send_one(&mut self, api: &mut HostApi) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        let seq = self.sent;
        self.in_flight.insert(seq, api.now());
        api.ping(self.target, self.ident, seq, self.payload_len);
        if self.sent < self.count {
            api.set_timer(self.interval, TIMER_TICK);
        }
    }
}

impl App for PingApp {
    fn start(&mut self, api: &mut HostApi) {
        if self.start_delay == SimDuration::ZERO {
            self.send_one(api);
        } else {
            api.set_timer(self.start_delay, TIMER_START);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token: TIMER_START } => self.send_one(api),
            AppEvent::Timer { token: TIMER_TICK } => self.send_one(api),
            AppEvent::EchoReply { ident, seq, .. } if ident == self.ident => {
                if let Some(sent_at) = self.in_flight.remove(&seq) {
                    self.received += 1;
                    let rtt = api.now().since(sent_at);
                    self.rtts.record(rtt);
                    api.metrics().observe_name("ping.rtt", rtt.as_nanos());
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_math() {
        let mut s = LatencyStats::default();
        for ms in [10u64, 20, 30] {
            s.record(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert!((s.stddev() - 10.0).abs() < 1e-9);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 30.0);
        assert_eq!(s.percentile(50.0), 20.0);
    }

    #[test]
    fn latency_stats_empty() {
        let s = LatencyStats::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }
}
