//! The web tier: a lightweight application server.
//!
//! Accepts HTTP from clients (or the reverse proxy), maps each request
//! path onto a RUBiS database query, forwards it over a small pool of
//! persistent database connections (plain, TLS, or HIP-addressed), and
//! renders the result into an HTML-ish response. Per-request application
//! work is charged to the VM's CPU — on a micro instance this is what
//! saturates first, exactly as in the paper's Figure 2.

use crate::db::{frame, FrameParser, ServerSecurity};
use crate::http::{HttpRequest, HttpResponse, RequestParser};
use crate::rubis::Query;
use crate::secure::{Channel, Conn};
use netsim::host::{App, AppEvent, HostApi};
use netsim::tcp::TcpEvent;
use netsim::{SimDuration, SockId};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;
use tls_sim::TlsCosts;

/// Client-side transport security for the DB link.
pub enum DbSecurity {
    /// Plain TCP (Basic) or HIP (when `db_addr` is a HIT/LSI).
    Plain,
    /// TLS to the DB (SSL scenario), trusting `ca`.
    Tls {
        /// Trusted CA for the DB's certificate.
        ca: sim_crypto::rsa::RsaPublicKey,
        /// CPU cost table for the crypto.
        costs: TlsCosts,
    },
}

/// Web-server tuning.
pub struct WebConfig {
    /// HTTP listen port.
    pub port: u16,
    /// Database address (locator, HIT or LSI — scenario-dependent).
    pub db_addr: IpAddr,
    /// Database port.
    pub db_port: u16,
    /// Security on the DB link.
    pub db_security: DbSecurity,
    /// Security offered to frontend clients (the proxy's backend link):
    /// plain for Basic/HIP (HIP encrypts below), TLS for SSL.
    pub frontend_security: ServerSecurity,
    /// Persistent DB connections.
    pub pool_size: usize,
    /// Per-request application work (parsing, templating).
    pub request_cost: SimDuration,
    /// Extra bytes of HTML wrapped around each DB result.
    pub html_padding: usize,
}

impl WebConfig {
    /// Defaults calibrated for the FIG2 deployment.
    pub fn new(db_addr: IpAddr, db_port: u16) -> Self {
        WebConfig {
            port: 80,
            db_addr,
            db_port,
            db_security: DbSecurity::Plain,
            frontend_security: ServerSecurity::Plain,
            pool_size: 4,
            request_cost: SimDuration::from_micros(1500),
            html_padding: 1024,
        }
    }
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WebStats {
    /// HTTP requests parsed.
    pub requests: u64,
    /// HTTP responses sent.
    pub responses: u64,
    /// Unroutable paths / backend failures.
    pub errors: u64,
    /// Queries dispatched to the database tier.
    pub db_queries: u64,
}

struct ClientConn {
    conn: Conn,
    parser: RequestParser,
}

struct DbLink {
    conn: Conn,
    frames: FrameParser,
    /// FIFO of client sockets whose query answers are due on this link.
    inflight: VecDeque<SockId>,
    connected: bool,
}

/// The web server application.
pub struct WebServerApp {
    config: WebConfig,
    clients: HashMap<SockId, ClientConn>,
    db_links: Vec<SockId>,
    db_state: HashMap<SockId, DbLink>,
    /// Queries waiting for a DB link to come up.
    backlog: VecDeque<(SockId, Query)>,
    rr: usize,
    pending: HashMap<u64, (SockId, Vec<u8>)>,
    next_token: u64,
    /// A pool-refill timer is already scheduled.
    reconnect_pending: bool,
    /// Counters.
    pub stats: WebStats,
}

/// Timer token for DB-pool refill (render tokens start at 1).
const RECONNECT_TOKEN: u64 = 0;
/// Backoff before re-dialing lost DB connections.
const RECONNECT_DELAY: SimDuration = SimDuration::from_millis(500);

impl WebServerApp {
    /// Creates the app.
    pub fn new(config: WebConfig) -> Self {
        WebServerApp {
            config,
            clients: HashMap::new(),
            db_links: Vec::new(),
            db_state: HashMap::new(),
            backlog: VecDeque::new(),
            rr: 0,
            pending: HashMap::new(),
            next_token: 0,
            reconnect_pending: false,
            stats: WebStats::default(),
        }
    }

    /// A DB link died: schedule a pool refill (the DB may be mid-crash,
    /// so back off instead of redialing immediately).
    fn db_link_lost(&mut self, sock: SockId, api: &mut HostApi) {
        self.db_state.remove(&sock);
        self.db_links.retain(|s| *s != sock);
        if !self.reconnect_pending {
            self.reconnect_pending = true;
            api.set_timer(RECONNECT_DELAY, RECONNECT_TOKEN);
        }
    }

    /// Tops the pool back up to `pool_size` connections.
    fn refill_pool(&mut self, api: &mut HostApi) {
        self.reconnect_pending = false;
        while self.db_links.len() < self.config.pool_size {
            let Some(sock) = api.tcp_connect(self.config.db_addr, self.config.db_port) else {
                break;
            };
            self.db_links.push(sock);
            self.db_state.insert(
                sock,
                DbLink { conn: Conn::new(sock, Channel::plain()), frames: FrameParser::default(), inflight: VecDeque::new(), connected: false },
            );
        }
        if self.db_links.len() < self.config.pool_size && !self.reconnect_pending {
            self.reconnect_pending = true;
            api.set_timer(RECONNECT_DELAY, RECONNECT_TOKEN);
        }
    }

    fn open_db_links(&mut self, api: &mut HostApi) {
        for _ in 0..self.config.pool_size {
            let Some(sock) = api.tcp_connect(self.config.db_addr, self.config.db_port) else {
                continue;
            };
            let channel = match &self.config.db_security {
                DbSecurity::Plain => Channel::plain(),
                // The TLS ClientHello is sent once the TCP connection is
                // up (see Connected handling below).
                DbSecurity::Tls { .. } => Channel::plain(), // placeholder, replaced on connect
            };
            self.db_links.push(sock);
            self.db_state.insert(
                sock,
                DbLink { conn: Conn::new(sock, channel), frames: FrameParser::default(), inflight: VecDeque::new(), connected: false },
            );
        }
    }

    /// Backlog cap: beyond this, new queries are answered 503 instead
    /// of queued (protects memory when the DB tier is down).
    const MAX_BACKLOG: usize = 1024;

    fn dispatch_query(&mut self, client: SockId, query: Query, api: &mut HostApi) {
        self.stats.db_queries += 1;
        // Round-robin over connected links.
        let n = self.db_links.len();
        for probe in 0..n {
            let sock = self.db_links[(self.rr + probe) % n];
            if let Some(link) = self.db_state.get_mut(&sock) {
                if link.connected {
                    self.rr = (self.rr + probe + 1) % n;
                    link.inflight.push_back(client);
                    link.conn.send(&frame(query.encode().as_bytes()), api);
                    return;
                }
            }
        }
        // No connected link. Queue while connections are still being
        // attempted (or a pool refill is scheduled); fail fast once the
        // pool is gone for good or the queue is full.
        if (n > 0 || self.reconnect_pending) && self.backlog.len() < Self::MAX_BACKLOG {
            self.backlog.push_back((client, query));
        } else {
            self.stats.errors += 1;
            let resp = HttpResponse::error(500, "database unavailable").encode();
            if let Some(c) = self.clients.get_mut(&client) {
                c.conn.send(&resp, api);
            }
        }
    }

    fn drain_backlog(&mut self, api: &mut HostApi) {
        while let Some((client, query)) = self.backlog.pop_front() {
            // dispatch_query re-queues if still nothing is connected; to
            // avoid a busy loop, stop after one failed attempt.
            let before = self.backlog.len();
            self.dispatch_query(client, query, api);
            if self.backlog.len() > before {
                break;
            }
        }
    }

    fn on_db_response(&mut self, db_sock: SockId, body: Vec<u8>, api: &mut HostApi) {
        let Some(link) = self.db_state.get_mut(&db_sock) else { return };
        let Some(client) = link.inflight.pop_front() else { return };
        if !self.clients.contains_key(&client) {
            return; // client went away
        }
        // Render: wrap the DB result in HTML padding and charge app work.
        let mut html = Vec::with_capacity(body.len() + self.config.html_padding);
        html.extend_from_slice(b"<html><body>");
        html.extend_from_slice(&body);
        html.extend(std::iter::repeat_n(b' ', self.config.html_padding));
        html.extend_from_slice(b"</body></html>");
        let resp = HttpResponse::ok(html).encode();
        let delay = api.cpu_charge(self.config.request_cost);
        api.metrics().observe_name("web.render", delay.as_nanos());
        self.next_token += 1;
        self.pending.insert(self.next_token, (client, resp));
        api.set_timer(delay, self.next_token);
    }

    fn on_client_request(&mut self, sock: SockId, req: HttpRequest, api: &mut HostApi) {
        self.stats.requests += 1;
        match Query::from_path(&req.path) {
            Some(q) => self.dispatch_query(sock, q, api),
            None => {
                self.stats.errors += 1;
                let resp = HttpResponse::error(404, "no such page").encode();
                if let Some(c) = self.clients.get_mut(&sock) {
                    c.conn.send(&resp, api);
                }
            }
        }
    }
}

impl App for WebServerApp {
    fn start(&mut self, api: &mut HostApi) {
        assert!(api.tcp_listen(self.config.port), "web port taken");
        self.open_db_links(api);
    }

    fn reset(&mut self) {
        self.clients.clear();
        self.db_links.clear();
        self.db_state.clear();
        self.backlog.clear();
        self.pending.clear();
        self.rr = 0;
        self.reconnect_pending = false;
        // next_token keeps counting so a pre-crash render timer that
        // fires after restart cannot collide with a new token.
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            // --- DB side ---
            AppEvent::Tcp(TcpEvent::Connected(sock)) if self.db_state.contains_key(&sock) => {
                // Install the real channel now the TCP stream exists.
                let channel = match &self.config.db_security {
                    DbSecurity::Plain => Channel::plain(),
                    DbSecurity::Tls { ca, costs } => Channel::tls_client(ca.clone(), *costs, sock, api),
                };
                if let Some(link) = self.db_state.get_mut(&sock) {
                    link.conn = Conn::new(sock, channel);
                    link.connected = true;
                }
                self.drain_backlog(api);
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) if self.db_state.contains_key(&sock) => {
                let raw = api.tcp_recv(sock);
                let link = self.db_state.get_mut(&sock).expect("checked");
                let out = link.conn.on_bytes(&raw, api);
                let frames = link.frames.feed(&out.app_data);
                for f in frames {
                    self.on_db_response(sock, f, api);
                }
            }
            AppEvent::Tcp(TcpEvent::ConnectFailed(sock)) if self.db_state.contains_key(&sock) => {
                self.stats.errors += 1;
                self.db_link_lost(sock, api);
            }
            // --- client side ---
            AppEvent::Tcp(TcpEvent::Accepted { sock, .. }) => {
                let channel = match &self.config.frontend_security {
                    ServerSecurity::Plain => Channel::plain(),
                    ServerSecurity::Tls { cert, keys, costs } => {
                        Channel::tls_server(cert.clone(), keys.clone(), *costs)
                    }
                };
                self.clients.insert(
                    sock,
                    ClientConn { conn: Conn::new(sock, channel), parser: RequestParser::default() },
                );
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let raw = api.tcp_recv(sock);
                let mut requests = Vec::new();
                if let Some(c) = self.clients.get_mut(&sock) {
                    let out = c.conn.on_bytes(&raw, api);
                    if out.failed {
                        self.clients.remove(&sock);
                        api.tcp_abort(sock);
                        return;
                    }
                    c.parser.push(&out.app_data);
                    while let Some(req) = c.parser.next_request() {
                        requests.push(req);
                    }
                }
                for req in requests {
                    self.on_client_request(sock, req, api);
                }
            }
            AppEvent::Tcp(TcpEvent::PeerClosed(sock))
            | AppEvent::Tcp(TcpEvent::Closed(sock))
            | AppEvent::Tcp(TcpEvent::Reset(sock)) => {
                if self.db_state.contains_key(&sock) {
                    // Clients whose answers were due on this link stay
                    // unanswered; the proxy's response timeout retries
                    // them on another web VM.
                    self.db_link_lost(sock, api);
                } else {
                    self.clients.remove(&sock);
                }
            }
            AppEvent::Timer { token: RECONNECT_TOKEN } => self.refill_pool(api),
            AppEvent::Timer { token } => {
                if let Some((client, resp)) = self.pending.remove(&token) {
                    if let Some(c) = self.clients.get_mut(&client) {
                        self.stats.responses += 1;
                        c.conn.send(&resp, api);
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
