//! The RUBiS-like auction workload.
//!
//! RUBiS (Rice University Bidding System) is the eBay-style multi-tier
//! benchmark the paper deploys (§V): browse/search/view/bid pages backed
//! by users/items/bids tables. We model the read-heavy browsing mix the
//! paper drives ("several concurrent clients continuously generating
//! random HTTP GET requests that resulted in queries to the database").
//!
//! Data lives in real in-memory tables; queries really execute and
//! produce real result text — the *timing* comes from a per-query CPU
//! cost table calibrated against the paper's observation that "the
//! bottleneck of the web service was the database rather than security".

use netsim::SimDuration;
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

/// An auction user.
#[derive(Clone, Debug)]
pub struct User {
    /// Primary key.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// Feedback rating.
    pub rating: i32,
}

/// An item under auction.
#[derive(Clone, Debug)]
pub struct Item {
    /// Primary key.
    pub id: u32,
    /// Title.
    pub name: String,
    /// Category it is listed under.
    pub category: u32,
    /// Seller's user id.
    pub seller: u32,
    /// Buy-it-now price.
    pub buy_now: u32,
    /// Length of the description text (bytes).
    pub description_len: usize,
}

/// A bid.
#[derive(Clone, Debug)]
pub struct Bid {
    /// Primary key.
    pub id: u32,
    /// The item bid on.
    pub item: u32,
    /// The bidding user.
    pub bidder: u32,
    /// Bid amount.
    pub amount: u32,
}

/// Number of item categories.
pub const CATEGORIES: u32 = 20;

/// The database content.
pub struct RubisData {
    /// The users table.
    pub users: Vec<User>,
    /// The items table.
    pub items: Vec<Item>,
    /// The bids table.
    pub bids: Vec<Bid>,
}

impl RubisData {
    /// Generates a dataset of `users` users, `items` items and ~3 bids
    /// per item, deterministically from `seed`.
    pub fn generate(users: u32, items: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let users_v: Vec<User> = (0..users)
            .map(|id| User {
                id,
                name: format!("user{id}"),
                rating: rng.random_range(-5..50),
            })
            .collect();
        let items_v: Vec<Item> = (0..items)
            .map(|id| Item {
                id,
                name: format!("item{id}"),
                category: rng.random_range(0..CATEGORIES),
                seller: rng.random_range(0..users.max(1)),
                buy_now: rng.random_range(10..5000),
                description_len: rng.random_range(200..2000),
            })
            .collect();
        let mut bids_v = Vec::with_capacity(items as usize * 3);
        for item in 0..items {
            for _ in 0..rng.random_range(1..6u32) {
                bids_v.push(Bid {
                    id: bids_v.len() as u32,
                    item,
                    bidder: rng.random_range(0..users.max(1)),
                    amount: rng.random_range(10..5000),
                });
            }
        }
        RubisData { users: users_v, items: items_v, bids: bids_v }
    }
}

/// RUBiS query types (the interaction mix of the browsing workload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Home page: list categories.
    BrowseCategories,
    /// Items in a category (a scan + sort in MySQL terms).
    SearchByCategory {
        /// Category id.
        category: u32,
        /// Zero-based result page.
        page: u32,
    },
    /// One item's detail page.
    ViewItem {
        /// Item id.
        item: u32,
    },
    /// Bid history for an item.
    ViewBidHistory {
        /// Item id.
        item: u32,
    },
    /// A user profile page.
    ViewUser {
        /// User id.
        user: u32,
    },
    /// Write: place a bid (invalidates the query cache).
    PlaceBid {
        /// Item id.
        item: u32,
        /// Bidding user id.
        bidder: u32,
        /// Bid amount.
        amount: u32,
    },
}

impl Query {
    /// Serializes as the wire query string.
    pub fn encode(&self) -> String {
        match self {
            Query::BrowseCategories => "BROWSE_CATEGORIES".into(),
            Query::SearchByCategory { category, page } => {
                format!("SEARCH_CAT {category} {page}")
            }
            Query::ViewItem { item } => format!("VIEW_ITEM {item}"),
            Query::ViewBidHistory { item } => format!("VIEW_BIDS {item}"),
            Query::ViewUser { user } => format!("VIEW_USER {user}"),
            Query::PlaceBid { item, bidder, amount } => {
                format!("PLACE_BID {item} {bidder} {amount}")
            }
        }
    }

    /// Parses a wire query string.
    pub fn decode(s: &str) -> Option<Query> {
        let mut parts = s.split_whitespace();
        let op = parts.next()?;
        let mut num = || parts.next().and_then(|p| p.parse::<u32>().ok());
        Some(match op {
            "BROWSE_CATEGORIES" => Query::BrowseCategories,
            "SEARCH_CAT" => Query::SearchByCategory { category: num()?, page: num()? },
            "VIEW_ITEM" => Query::ViewItem { item: num()? },
            "VIEW_BIDS" => Query::ViewBidHistory { item: num()? },
            "VIEW_USER" => Query::ViewUser { user: num()? },
            "PLACE_BID" => Query::PlaceBid { item: num()?, bidder: num()?, amount: num()? },
            _ => return None,
        })
    }

    /// True for queries that modify data (cache-invalidating).
    pub fn is_write(&self) -> bool {
        matches!(self, Query::PlaceBid { .. })
    }

    /// The URL path a browser would request for this interaction.
    pub fn to_path(&self) -> String {
        match self {
            Query::BrowseCategories => "/".into(),
            Query::SearchByCategory { category, page } => {
                format!("/search?cat={category}&page={page}")
            }
            Query::ViewItem { item } => format!("/item?id={item}"),
            Query::ViewBidHistory { item } => format!("/bids?item={item}"),
            Query::ViewUser { user } => format!("/user?id={user}"),
            Query::PlaceBid { item, bidder, amount } => {
                format!("/bid?item={item}&user={bidder}&amount={amount}")
            }
        }
    }

    /// Parses the URL path back into a query (web-server side).
    pub fn from_path(path: &str) -> Option<Query> {
        let (route, args) = match path.split_once('?') {
            Some((r, a)) => (r, a),
            None => (path, ""),
        };
        let get = |key: &str| -> Option<u32> {
            args.split('&').find_map(|kv| {
                let (k, v) = kv.split_once('=')?;
                (k == key).then(|| v.parse().ok()).flatten()
            })
        };
        Some(match route {
            "/" => Query::BrowseCategories,
            "/search" => Query::SearchByCategory { category: get("cat")?, page: get("page")? },
            "/item" => Query::ViewItem { item: get("id")? },
            "/bids" => Query::ViewBidHistory { item: get("item")? },
            "/user" => Query::ViewUser { user: get("id")? },
            "/bid" => Query::PlaceBid { item: get("item")?, bidder: get("user")?, amount: get("amount")? },
            _ => return None,
        })
    }
}

/// Per-query CPU cost (MySQL 5.1 on the paper's large instance, scaled
/// by the flavor's compute units at charge time).
#[derive(Clone, Copy, Debug)]
pub struct QueryCosts {
    /// Category listing.
    pub browse: SimDuration,
    /// Category search (the heavy scan).
    pub search: SimDuration,
    /// Item detail page.
    pub view_item: SimDuration,
    /// Bid history.
    pub view_bids: SimDuration,
    /// User profile.
    pub view_user: SimDuration,
    /// Bid insertion.
    pub place_bid: SimDuration,
    /// Serving a hit from the query cache.
    pub cache_hit: SimDuration,
}

impl Default for QueryCosts {
    fn default() -> Self {
        // Calibrated so the FIG2 deployment saturates in the paper's
        // range (tens to ~250 req/s across 3 micro web servers).
        QueryCosts {
            browse: SimDuration::from_micros(900),
            search: SimDuration::from_micros(5200),
            view_item: SimDuration::from_micros(2100),
            view_bids: SimDuration::from_micros(3100),
            view_user: SimDuration::from_micros(1200),
            place_bid: SimDuration::from_micros(2800),
            cache_hit: SimDuration::from_micros(120),
        }
    }
}

impl QueryCosts {
    /// Cost of executing `q` without the cache.
    pub fn of(&self, q: &Query) -> SimDuration {
        match q {
            Query::BrowseCategories => self.browse,
            Query::SearchByCategory { .. } => self.search,
            Query::ViewItem { .. } => self.view_item,
            Query::ViewBidHistory { .. } => self.view_bids,
            Query::ViewUser { .. } => self.view_user,
            Query::PlaceBid { .. } => self.place_bid,
        }
    }
}

/// Executes a query against the data, returning the result text.
pub fn execute(data: &mut RubisData, q: &Query) -> String {
    match q {
        Query::BrowseCategories => {
            let mut out = String::from("categories:");
            for c in 0..CATEGORIES {
                out.push_str(&format!(" cat{c}"));
            }
            out
        }
        Query::SearchByCategory { category, page } => {
            const PAGE: usize = 20;
            let hits: Vec<&Item> =
                data.items.iter().filter(|i| i.category == *category).collect();
            let start = (*page as usize * PAGE).min(hits.len());
            let end = (start + PAGE).min(hits.len());
            let mut out = format!("results {}-{} of {}:", start, end, hits.len());
            for item in &hits[start..end] {
                out.push_str(&format!(" [{} {} ${}]", item.id, item.name, item.buy_now));
            }
            out
        }
        Query::ViewItem { item } => match data.items.get(*item as usize) {
            Some(i) => {
                let high = data
                    .bids
                    .iter()
                    .filter(|b| b.item == i.id)
                    .map(|b| b.amount)
                    .max()
                    .unwrap_or(0);
                format!(
                    "item {} '{}' cat {} seller {} buy-now ${} high-bid ${} desc {} bytes",
                    i.id, i.name, i.category, i.seller, i.buy_now, high, i.description_len
                )
            }
            None => "ERROR no such item".into(),
        },
        Query::ViewBidHistory { item } => {
            let mut out = format!("bids for item {item}:");
            for b in data.bids.iter().filter(|b| b.item == *item) {
                out.push_str(&format!(" [{} by user{} ${}]", b.id, b.bidder, b.amount));
            }
            out
        }
        Query::ViewUser { user } => match data.users.get(*user as usize) {
            Some(u) => format!("user {} '{}' rating {}", u.id, u.name, u.rating),
            None => "ERROR no such user".into(),
        },
        Query::PlaceBid { item, bidder, amount } => {
            if data.items.get(*item as usize).is_none() {
                return "ERROR no such item".into();
            }
            let id = data.bids.len() as u32;
            data.bids.push(Bid { id, item: *item, bidder: *bidder, amount: *amount });
            format!("OK bid {id} placed")
        }
    }
}

/// The browsing interaction mix (fractions sum to 1; read-dominated as
/// in RUBiS's default browsing workload).
pub struct WorkloadMix {
    /// Fraction of home-page hits.
    pub browse: f64,
    /// Fraction of category searches.
    pub search: f64,
    /// Fraction of item views.
    pub view_item: f64,
    /// Fraction of bid-history views.
    pub view_bids: f64,
    /// Fraction of profile views.
    pub view_user: f64,
    /// Fraction of bid placements (writes).
    pub place_bid: f64,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix {
            browse: 0.10,
            search: 0.30,
            view_item: 0.35,
            view_bids: 0.10,
            view_user: 0.10,
            place_bid: 0.05,
        }
    }
}

impl WorkloadMix {
    /// A read-only mix (used with query caching enabled).
    pub fn read_only() -> Self {
        WorkloadMix {
            browse: 0.10,
            search: 0.35,
            view_item: 0.35,
            view_bids: 0.10,
            view_user: 0.10,
            place_bid: 0.0,
        }
    }

    /// Draws a random interaction.
    pub fn sample(&self, users: u32, items: u32, draw: f64, rng_val: u64) -> Query {
        let item = (rng_val % items.max(1) as u64) as u32;
        let user = (rng_val % users.max(1) as u64) as u32;
        let mut acc = self.browse;
        if draw < acc {
            return Query::BrowseCategories;
        }
        acc += self.search;
        if draw < acc {
            return Query::SearchByCategory { category: item % CATEGORIES, page: 0 };
        }
        acc += self.view_item;
        if draw < acc {
            return Query::ViewItem { item };
        }
        acc += self.view_bids;
        if draw < acc {
            return Query::ViewBidHistory { item };
        }
        acc += self.view_user;
        if draw < acc {
            return Query::ViewUser { user };
        }
        Query::PlaceBid { item, bidder: user, amount: 100 + (rng_val % 1000) as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_generation_deterministic() {
        let a = RubisData::generate(100, 200, 9);
        let b = RubisData::generate(100, 200, 9);
        assert_eq!(a.users.len(), 100);
        assert_eq!(a.items.len(), 200);
        assert!(!a.bids.is_empty());
        assert_eq!(a.bids.len(), b.bids.len());
        assert_eq!(a.items[7].buy_now, b.items[7].buy_now);
    }

    #[test]
    fn query_string_round_trip() {
        let queries = [
            Query::BrowseCategories,
            Query::SearchByCategory { category: 3, page: 1 },
            Query::ViewItem { item: 42 },
            Query::ViewBidHistory { item: 7 },
            Query::ViewUser { user: 9 },
            Query::PlaceBid { item: 1, bidder: 2, amount: 300 },
        ];
        for q in queries {
            assert_eq!(Query::decode(&q.encode()), Some(q.clone()), "{q:?}");
            assert_eq!(Query::from_path(&q.to_path()), Some(q.clone()), "{q:?}");
        }
        assert_eq!(Query::decode("GIBBERISH"), None);
        assert_eq!(Query::from_path("/nope"), None);
    }

    #[test]
    fn execution_produces_real_results() {
        let mut data = RubisData::generate(50, 100, 1);
        let r = execute(&mut data, &Query::ViewItem { item: 5 });
        assert!(r.contains("item 5"), "{r}");
        let cat5 = data.items[5].category;
        let r = execute(&mut data, &Query::SearchByCategory { category: cat5, page: 0 });
        assert!(r.contains(&format!("[{}", 5)) || r.contains("results"), "{r}");
        let r = execute(&mut data, &Query::ViewUser { user: 3 });
        assert!(r.contains("user 3"));
        let r = execute(&mut data, &Query::ViewItem { item: 9999 });
        assert!(r.contains("ERROR"));
    }

    #[test]
    fn place_bid_mutates() {
        let mut data = RubisData::generate(10, 10, 2);
        let before = data.bids.len();
        let r = execute(&mut data, &Query::PlaceBid { item: 3, bidder: 1, amount: 9999 });
        assert!(r.starts_with("OK"));
        assert_eq!(data.bids.len(), before + 1);
        // The new high bid shows up on the item page.
        let r = execute(&mut data, &Query::ViewItem { item: 3 });
        assert!(r.contains("high-bid $9999"), "{r}");
    }

    #[test]
    fn mix_sums_to_one() {
        let m = WorkloadMix::default();
        let sum = m.browse + m.search + m.view_item + m.view_bids + m.view_user + m.place_bid;
        assert!((sum - 1.0).abs() < 1e-9);
        let m = WorkloadMix::read_only();
        let sum = m.browse + m.search + m.view_item + m.view_bids + m.view_user + m.place_bid;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mix_sampling_covers_interactions() {
        let m = WorkloadMix::default();
        let mut kinds = std::collections::HashSet::new();
        for i in 0..1000 {
            let q = m.sample(100, 100, i as f64 / 1000.0, i * 31);
            kinds.insert(std::mem::discriminant(&q));
        }
        assert_eq!(kinds.len(), 6, "all interaction types appear");
    }

    #[test]
    fn costs_reflect_query_weight() {
        let c = QueryCosts::default();
        assert!(c.search > c.view_item, "search is the heavy scan");
        assert!(c.cache_hit < c.browse, "cache hits are cheap");
    }
}
