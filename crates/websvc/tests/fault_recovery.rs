//! Property: the RUBiS service *fully recovers* from any restored fault
//! plan. For random seeded plans (link cuts, loss bursts, latency
//! spikes, node crash/restart cycles, partitions) that end with every
//! fault cleared, running well past the plan's horizon must leave:
//!
//! - zero residual client errors (a probe window after settling
//!   completes requests with no new failures),
//! - no faulted links and no crashed nodes,
//! - every proxy backend back in rotation.
//!
//! Errors *during* the fault window are expected and allowed — graceful
//! degradation, not fault masking — but nothing may stay broken.

use cloudsim::Flavor;
use netsim::{FaultPlan, SimDuration, SimTime};
use proptest::prelude::*;
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::JmeterApp;
use websvc::proxy::ProxyApp;
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn service_recovers_from_any_restored_fault_plan(plan_seed in any::<u64>()) {
        let mut cfg = RubisConfig::fig2(Scenario::Basic, 7);
        cfg.n_web = 2;
        cfg.users = 50;
        cfg.items = 100;
        let (users, items) = (cfg.users, cfg.items);
        let mut dep = deploy_rubis(cfg);
        let lb = dep.lb.expect("fig2 deployment has a load balancer");
        let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
        let app = JmeterApp::new(dep.frontend, 4, WorkloadMix::default(), users, items);
        let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));

        // Fault candidates: the service VMs and their access links (the
        // LB and the load generator stay up — they are the observer).
        let nodes = [dep.webs[0].node, dep.webs[1].node, dep.db.node];
        let links = [dep.webs[0].link, dep.webs[1].link, dep.db.link];
        let plan = FaultPlan::random(plan_seed, &links, &nodes, SimDuration::from_secs(6));
        prop_assert!(plan.ends_restored(), "random plans must self-clear");

        // 2 s steady state, then the storm.
        let steady = SimDuration::from_secs(2);
        dep.topo.sim.run_until(SimTime::ZERO + steady);
        plan.schedule(&mut dep.topo.sim);
        // Past the horizon plus settling room: ejection backoffs (≤ 8 s),
        // probes, TCP retransmissions and DB-pool refills all complete.
        let settle = SimDuration::from_secs(15);
        dep.topo.sim.run_until(SimTime::ZERO + steady + plan.horizon() + settle);

        // Everything injected must have cleared.
        for (i, link) in dep.topo.sim.world.links().iter().enumerate() {
            prop_assert!(!link.is_faulted(), "link {i} still faulted after the plan cleared");
        }
        for &n in &nodes {
            prop_assert!(!dep.topo.sim.is_crashed(n), "node {n:?} still crashed");
        }
        {
            let proxy = dep.topo.host(lb).app::<ProxyApp>(0).expect("proxy");
            prop_assert!(!proxy.any_backend_out(), "a backend is still ejected/probing after settling");
        }

        // Residual probe window: goodput flows, zero new errors.
        let (ok_before, err_before) = {
            let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).expect("generator");
            (gen.completed, gen.errors)
        };
        let now = dep.topo.sim.now();
        dep.topo.sim.run_until(now + SimDuration::from_secs(5));
        let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).expect("generator");
        prop_assert_eq!(gen.errors, err_before, "residual errors after recovery (plan: {:?})", plan);
        prop_assert!(
            gen.completed > ok_before + 20,
            "goodput did not resume: {} -> {} (plan: {:?})",
            ok_before,
            gen.completed,
            plan
        );
    }
}
