//! End-to-end RUBiS deployments: clients → LB → web tier → DB under all
//! three security scenarios, verifying that requests complete, that the
//! protection actually happens on the wire, and that throughput ranks
//! the scenarios the way Figure 2 does (Basic fastest).

use cloudsim::Flavor;
use netsim::host::Host;
use netsim::{SimDuration, SimTime};
use websvc::deploy::{deploy_rubis, RubisConfig};
use websvc::loadgen::{HttperfApp, JmeterApp};
use websvc::rubis::WorkloadMix;
use websvc::Scenario;

/// Deploys the FIG2 testbed with a jmeter generator; returns completed
/// requests within the measurement window.
fn run_jmeter(scenario: Scenario, clients: usize, seconds: u64) -> u64 {
    run_jmeter_warm(scenario, clients, seconds, 2)
}

/// Like [`run_jmeter`] but with an explicit warm-up (long enough for the
/// micro instances' burst credits to reach steady state when measuring
/// saturated throughput).
fn run_jmeter_warm(scenario: Scenario, clients: usize, seconds: u64, warm_secs: u64) -> u64 {
    let cfg = RubisConfig::fig2(scenario, 42);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let warmup = SimDuration::from_secs(warm_secs);
    let app = {
        let mut app = JmeterApp::new(dep.frontend, clients, WorkloadMix::default(), users, items);
        app.measure_from = SimTime::ZERO + warmup;
        app
    };
    let app_idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime::ZERO + warmup + SimDuration::from_secs(seconds));
    let host = dep.topo.host(gen_host);
    let gen = host.app::<JmeterApp>(app_idx).unwrap();
    assert_eq!(gen.errors, 0, "{scenario:?}: generator errors");
    gen.completed
}

#[test]
fn basic_scenario_serves_requests() {
    let completed = run_jmeter(Scenario::Basic, 4, 6);
    assert!(completed > 100, "basic: {completed} requests in 6s");
}

#[test]
fn hip_scenario_serves_requests() {
    let completed = run_jmeter(Scenario::HipLsi, 4, 6);
    assert!(completed > 50, "hip: {completed} requests in 6s");
}

#[test]
fn hip_hit_scenario_serves_requests() {
    let completed = run_jmeter(Scenario::Hip, 4, 6);
    assert!(completed > 50, "hip-hit: {completed} requests in 6s");
}

#[test]
fn ssl_scenario_serves_requests() {
    let completed = run_jmeter(Scenario::Ssl, 4, 6);
    assert!(completed > 50, "ssl: {completed} requests in 6s");
}

#[test]
fn basic_outperforms_secured_at_load() {
    // At a concurrency that saturates the micro web tier, the paper's
    // ordering must hold: Basic clearly ahead; HIP ≈ SSL.
    let basic = run_jmeter_warm(Scenario::Basic, 50, 8, 8);
    let hip = run_jmeter_warm(Scenario::HipLsi, 50, 8, 8);
    let ssl = run_jmeter_warm(Scenario::Ssl, 50, 8, 8);
    assert!(
        basic as f64 > hip as f64 * 1.05,
        "basic={basic} must beat hip={hip}"
    );
    assert!(
        basic as f64 > ssl as f64 * 1.05,
        "basic={basic} must beat ssl={ssl}"
    );
    let ratio = hip as f64 / ssl as f64;
    assert!(
        (0.7..=1.15).contains(&ratio),
        "HIP and SSL should be comparable (hip={hip}, ssl={ssl}, ratio={ratio:.2})"
    );
}

#[test]
fn hip_wire_traffic_is_encrypted_inside_cloud() {
    let cfg = RubisConfig::fig2(Scenario::HipLsi, 7);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    dep.topo.sim.trace = netsim::trace::Trace::enabled(200_000);
    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let app = JmeterApp::new(dep.frontend, 2, WorkloadMix::default(), users, items);
    dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime(3_000_000_000));
    // Web and DB nodes must emit only ESP (50) / HIP (139) between each
    // other. (Tx entries from the web VMs toward the DB subnet.)
    let web_nodes: Vec<_> = dep.webs.iter().map(|w| w.node).collect();
    let db_addr = dep.db.addr.to_string();
    let mut saw_esp = 0;
    for e in dep.topo.sim.trace.entries() {
        let p = match &e.data {
            netsim::trace::TraceData::Tx(p) => p,
            _ => continue,
        };
        if web_nodes.contains(&e.node) && p.dst.to_string() == db_addr {
            assert!(
                p.proto == 50 || p.proto == 139,
                "cleartext from web to db: {}",
                e.detail()
            );
            if p.proto == 50 {
                saw_esp += 1;
            }
        }
    }
    assert!(saw_esp > 10, "ESP data plane carried the queries ({saw_esp})");
    // And the DB really decrypted real queries.
    let db_host: &Host = dep.topo.host(dep.db);
    let db_app = db_host.app::<websvc::db::DbServerApp>(0).unwrap();
    assert!(db_app.stats.queries > 10, "db answered {} queries", db_app.stats.queries);
}

#[test]
fn httperf_open_loop_measures_response_times() {
    let cfg = RubisConfig::tab_rt(Scenario::Basic, 3);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    let gen_host = dep.topo.add_external_host("httperf", Flavor::Dedicated);
    let mut app = HttperfApp::new(dep.frontend, 50.0, WorkloadMix::read_only(), users, items);
    app.measure_from = SimTime(1_000_000_000);
    let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime(6_000_000_000));
    let gen = dep.topo.host(gen_host).app::<HttperfApp>(idx).unwrap();
    // 50 req/s over ~5 measured seconds.
    assert!(gen.completed > 200, "completed={}", gen.completed);
    assert!(gen.latency.mean() > 0.0);
    assert_eq!(gen.errors, 0);
    // Query cache must be doing something.
    let db_app = dep.topo.host(dep.db).app::<websvc::db::DbServerApp>(0).unwrap();
    assert!(db_app.stats.cache_hits > 0, "cache hits: {}", db_app.stats.cache_hits);
}

#[test]
fn round_robin_spreads_load_across_web_tier() {
    let cfg = RubisConfig::fig2(Scenario::Basic, 11);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let app = JmeterApp::new(dep.frontend, 9, WorkloadMix::default(), users, items);
    dep.topo.host_mut(gen_host).add_app(Box::new(app));
    dep.topo.sim.run_until(SimTime(5_000_000_000));
    let counts: Vec<u64> = dep
        .webs
        .iter()
        .map(|w| dep.topo.host(*w).app::<websvc::webserver::WebServerApp>(0).unwrap().stats.requests)
        .collect();
    let total: u64 = counts.iter().sum();
    assert!(total > 100, "total={total}");
    for (i, c) in counts.iter().enumerate() {
        let share = *c as f64 / total as f64;
        assert!(
            (0.15..=0.55).contains(&share),
            "web{i} got share {share:.2} of {total} (counts={counts:?})"
        );
    }
}
