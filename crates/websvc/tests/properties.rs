//! Property-based tests for the web substrate's codecs: HTTP and frame
//! parsers must reconstruct exactly the messages sent, no matter how
//! TCP fragments the byte stream, and must never panic on garbage.

use proptest::prelude::*;
use websvc::db::{frame, FrameParser};
use websvc::http::{HttpRequest, HttpResponse, RequestParser, ResponseParser};
use websvc::rubis::Query;

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        Just(Query::BrowseCategories),
        (any::<u32>(), 0u32..100).prop_map(|(c, p)| Query::SearchByCategory { category: c, page: p }),
        any::<u32>().prop_map(|i| Query::ViewItem { item: i }),
        any::<u32>().prop_map(|i| Query::ViewBidHistory { item: i }),
        any::<u32>().prop_map(|u| Query::ViewUser { user: u }),
        (any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(i, b, a)| Query::PlaceBid { item: i, bidder: b, amount: a }),
    ]
}

/// Splits `data` into chunks at the given fractional cut points.
fn fragment(data: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
    points.sort_unstable();
    let mut out = Vec::new();
    let mut prev = 0;
    for p in points {
        if p > prev {
            out.push(data[prev..p].to_vec());
            prev = p;
        }
    }
    out.push(data[prev..].to_vec());
    out
}

proptest! {
    #[test]
    fn http_requests_survive_fragmentation(
        queries in proptest::collection::vec(arb_query(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..10),
    ) {
        let mut wire = Vec::new();
        for q in &queries {
            wire.extend(HttpRequest::get(&q.to_path()).encode());
        }
        let mut parser = RequestParser::default();
        let mut parsed = Vec::new();
        for chunk in fragment(&wire, &cuts) {
            parser.push(&chunk);
            while let Some(req) = parser.next_request() {
                parsed.push(req);
            }
        }
        prop_assert_eq!(parsed.len(), queries.len());
        for (req, q) in parsed.iter().zip(&queries) {
            let parsed_q = Query::from_path(&req.path);
            prop_assert_eq!(parsed_q.as_ref(), Some(q));
        }
    }

    #[test]
    fn http_responses_survive_fragmentation(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..2000), 1..5),
        cuts in proptest::collection::vec(any::<usize>(), 0..10),
    ) {
        let mut wire = Vec::new();
        for b in &bodies {
            wire.extend(HttpResponse::ok(b.clone()).encode());
        }
        let mut parser = ResponseParser::default();
        let mut parsed = Vec::new();
        for chunk in fragment(&wire, &cuts) {
            parser.push(&chunk);
            while let Some(resp) = parser.next_response() {
                parsed.push(resp);
            }
        }
        prop_assert_eq!(parsed.len(), bodies.len());
        for (resp, b) in parsed.iter().zip(&bodies) {
            prop_assert_eq!(&resp.body, b);
            prop_assert_eq!(resp.status, 200);
        }
    }

    #[test]
    fn frames_survive_fragmentation(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..1500), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(frame(p));
        }
        let mut parser = FrameParser::default();
        let mut parsed = Vec::new();
        for chunk in fragment(&wire, &cuts) {
            parsed.extend(parser.feed(&chunk));
        }
        prop_assert_eq!(parsed, payloads);
    }

    #[test]
    fn parsers_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut rp = RequestParser::default();
        rp.push(&data);
        while rp.next_request().is_some() {}
        let mut sp = ResponseParser::default();
        sp.push(&data);
        while sp.next_response().is_some() {}
        let mut fp = FrameParser::default();
        let _ = fp.feed(&data);
    }

    #[test]
    fn query_codec_total_round_trip(q in arb_query()) {
        let decoded = Query::decode(&q.encode());
        prop_assert_eq!(decoded.as_ref(), Some(&q));
        prop_assert_eq!(Query::from_path(&q.to_path()), Some(q));
    }

    #[test]
    fn latency_stats_mean_within_bounds(samples in proptest::collection::vec(1u64..1_000_000, 1..100)) {
        use websvc::loadgen::LatencyStats;
        use netsim::SimDuration;
        let mut s = LatencyStats::default();
        for v in &samples {
            s.record(SimDuration::from_micros(*v));
        }
        let min = *samples.iter().min().expect("nonempty") as f64 / 1000.0;
        let max = *samples.iter().max().expect("nonempty") as f64 / 1000.0;
        prop_assert!(s.mean() >= min - 1e-9 && s.mean() <= max + 1e-9);
        prop_assert!(s.percentile(0.0) >= min - 1e-9);
        prop_assert!(s.percentile(100.0) <= max + 1e-9);
    }
}
