//! Proxy failure handling: HAProxy-like behaviour when backends are
//! unreachable — requests stranded on a dead backend are retried on a
//! live one, the dead backend is ejected from rotation, and clients
//! never hang.

use cloudsim::{CloudKind, CloudTopology, Flavor};
use netsim::host::{App, AppEvent, HostApi};
use netsim::tcp::TcpEvent;
use netsim::{SimDuration, SimTime};
use std::any::Any;
use std::net::IpAddr;
use websvc::http::{HttpRequest, ResponseParser};
use websvc::proxy::{BackendSecurity, ProxyApp};
use websvc::rubis::{QueryCosts, RubisData};
use websvc::webserver::{WebConfig, WebServerApp};
use websvc::{DB_PORT, LB_PORT, WEB_PORT};

struct OneShot {
    target: (IpAddr, u16),
    parser: ResponseParser,
    statuses: Vec<u16>,
    requests: usize,
}
impl App for OneShot {
    fn start(&mut self, api: &mut HostApi) {
        for _ in 0..self.requests {
            api.tcp_connect(self.target.0, self.target.1);
        }
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(s)) => {
                api.tcp_send(s, &HttpRequest::get("/item?id=1").encode());
            }
            AppEvent::Tcp(TcpEvent::Data(s)) => {
                let raw = api.tcp_recv(s);
                self.parser.push(&raw);
                while let Some(resp) = self.parser.next_response() {
                    self.statuses.push(resp.status);
                }
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn dead_backend_requests_retry_onto_live_backend() {
    let mut topo = CloudTopology::new(31);
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    let db = topo.launch_vm(cloud, "db", Flavor::Large);
    let web = topo.launch_vm(cloud, "web", Flavor::Micro);
    let lb = topo.add_external_host("lb", Flavor::Dedicated);
    let client = topo.add_external_host("client", Flavor::Dedicated);

    // DB + one live web server.
    let data = RubisData::generate(50, 100, 1);
    topo.host_mut(db).add_app(Box::new(websvc::db::DbServerApp::new(
        DB_PORT,
        data,
        QueryCosts::default(),
        false,
        websvc::db::ServerSecurity::Plain,
    )));
    let mut cfg = WebConfig::new(db.addr, DB_PORT);
    cfg.port = WEB_PORT;
    topo.host_mut(web).add_app(Box::new(WebServerApp::new(cfg)));

    // The proxy balances over the live backend and a dead address.
    let dead = netsim::packet::v4(10, 1, 0, 99);
    let proxy_idx = topo.host_mut(lb).add_app(Box::new(ProxyApp::new(
        LB_PORT,
        vec![(web.addr, WEB_PORT), (dead, WEB_PORT)],
        BackendSecurity::Plain,
    )));

    // Four client connections → round robin sends two to each backend.
    let client_idx = topo.host_mut(client).add_app(Box::new(OneShot {
        target: (lb.addr, LB_PORT),
        parser: ResponseParser::default(),
        statuses: vec![],
        requests: 4,
    }));

    topo.sim.run_until(SimTime::ZERO + SimDuration::from_secs(90));
    let statuses = &topo.host(client).app::<OneShot>(client_idx).unwrap().statuses;
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    assert_eq!(statuses.len(), 4, "every request answered: {statuses:?}");
    assert_eq!(ok, 4, "requests on the dead backend were retried onto the live one: {statuses:?}");
    let proxy = topo.host(lb).app::<ProxyApp>(proxy_idx).unwrap();
    assert!(proxy.stats.backend_failures >= 2, "both stranded connections failed: {:?}", proxy.stats);
    assert!(proxy.stats.retries >= 2, "stranded requests were retried: {:?}", proxy.stats);
    assert!(proxy.stats.ejections >= 1, "the dead backend was ejected: {:?}", proxy.stats);
    assert!(proxy.stats.probes >= 1, "ejection expiry launched health probes: {:?}", proxy.stats);
    // 90 s of failing probes never readmit the dead backend.
    assert!(
        matches!(proxy.backend_health(1), websvc::proxy::Health::Ejected { .. } | websvc::proxy::Health::Probing),
        "dead backend stays out of rotation"
    );
}
