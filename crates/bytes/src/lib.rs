//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the real `bytes` API the workspace uses:
//! [`Bytes`] (a cheaply clonable, sliceable shared buffer) and
//! [`BytesMut`] (a growable buffer that freezes into `Bytes`). Clones
//! share the underlying allocation via `Arc`, which is exactly the
//! zero-copy property the simulator's packet hot path relies on: a
//! packet forwarded across five hops clones the `Arc`, not the payload.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable contiguous slice of memory.
///
/// Either a borrowed `&'static [u8]` or a shared, refcounted `Vec<u8>`
/// with a `[start, end)` window. `clone()` is O(1) and never copies the
/// payload.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared { buf: Arc<Vec<u8>>, start: usize, end: usize },
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s) }
    }

    /// Copies `s` into a fresh owned buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying storage (O(1), no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of range {len}");
        match &self.repr {
            Repr::Static(s) => Bytes { repr: Repr::Static(&s[begin..end]) },
            Repr::Shared { buf, start, .. } => Bytes {
                repr: Repr::Shared { buf: buf.clone(), start: start + begin, end: start + end },
            },
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { buf, start, end } => &buf[*start..*end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { repr: Repr::Shared { buf: Arc::new(v), start: 0, end } }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "... {} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A unique, growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Clears contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Splits off the filled portion, leaving `self` empty (the real
    /// crate shares the allocation; here the split takes it, and the
    /// next write grows a fresh one).
    pub fn split(&mut self) -> BytesMut {
        BytesMut { buf: std::mem::take(&mut self.buf) }
    }

    /// Converts into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        // Same backing allocation (pointer equality of the slices).
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_slice().as_ptr(), b.as_slice()[2..].as_ptr());
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn static_round_trip() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b, *b"hello");
        assert_eq!(b.slice(1..3), *b"el");
    }

    #[test]
    fn bytes_mut_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"abc");
        m.put_u8(b'd');
        let split = m.split();
        assert!(m.is_empty());
        assert_eq!(split.freeze(), *b"abcd");
    }
}
