//! Multi-tenancy bookkeeping and HIP-based tenant isolation policy.
//!
//! The paper's core security scenario (§III-B, §IV-A): VMs of *competing*
//! organisations share the same physical cloud; each tenant must be
//! isolated from the others. With HIP, isolation is host-centric: every
//! VM gets a cryptographic identity, and each VM's firewall admits only
//! the HITs of its own tenant — no VLAN plumbing, no dependence on the
//! provider (the approach "can be adopted by individual tenants in an
//! incremental fashion", §VI-B).

use crate::topology::VmHandle;
use hip_core::{Firewall, Hit};
use std::collections::HashMap;

/// A tenant (cloud subscriber).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TenantId(pub u32);

/// Registry of which VM belongs to which tenant, with each VM's HIT.
#[derive(Default)]
pub struct TenantRegistry {
    vms: Vec<(TenantId, VmHandle, Hit)>,
    by_tenant: HashMap<TenantId, Vec<usize>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a VM for a tenant.
    pub fn register(&mut self, tenant: TenantId, vm: VmHandle, hit: Hit) {
        let idx = self.vms.len();
        self.vms.push((tenant, vm, hit));
        self.by_tenant.entry(tenant).or_default().push(idx);
    }

    /// All HITs belonging to `tenant`.
    pub fn hits_of(&self, tenant: TenantId) -> Vec<Hit> {
        self.by_tenant
            .get(&tenant)
            .map(|idxs| idxs.iter().map(|&i| self.vms[i].2).collect())
            .unwrap_or_default()
    }

    /// All VMs belonging to `tenant`.
    pub fn vms_of(&self, tenant: TenantId) -> Vec<VmHandle> {
        self.by_tenant
            .get(&tenant)
            .map(|idxs| idxs.iter().map(|&i| self.vms[i].1).collect())
            .unwrap_or_default()
    }

    /// The tenant owning a HIT, if any.
    pub fn tenant_of(&self, hit: &Hit) -> Option<TenantId> {
        self.vms.iter().find(|(_, _, h)| h == hit).map(|(t, _, _)| *t)
    }

    /// Builds the intra-tenant firewall for one of `tenant`'s VMs:
    /// deny-by-default, allow every same-tenant HIT (including the VM's
    /// own, harmlessly). This is the hosts.allow file §IV-A describes.
    pub fn isolation_firewall(&self, tenant: TenantId) -> Firewall {
        let mut fw = Firewall::deny_by_default();
        for hit in self.hits_of(tenant) {
            fw.allow(hit);
        }
        fw
    }

    /// Total registered VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True when no VMs are registered.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hip_core::Action;
    use netsim::link::{LinkId, NodeId};
    use netsim::packet::v4;

    fn vm(n: usize) -> VmHandle {
        VmHandle { node: NodeId(n), addr: v4(10, 1, 0, n as u8), link: LinkId(n), cloud: None }
    }

    #[test]
    fn isolation_firewall_separates_tenants() {
        let mut reg = TenantRegistry::new();
        let coke = TenantId(1);
        let pepsi = TenantId(2);
        let h1 = Hit([1; 16]);
        let h2 = Hit([2; 16]);
        let h3 = Hit([3; 16]);
        reg.register(coke, vm(0), h1);
        reg.register(coke, vm(1), h2);
        reg.register(pepsi, vm(2), h3);

        let mut fw = reg.isolation_firewall(coke);
        assert_eq!(fw.check(&h2), Action::Allow, "same tenant allowed");
        assert_eq!(fw.check(&h3), Action::Deny, "competitor denied");
        assert_eq!(fw.check(&Hit([9; 16])), Action::Deny, "stranger denied");
    }

    #[test]
    fn registry_lookups() {
        let mut reg = TenantRegistry::new();
        let t = TenantId(7);
        let h = Hit([5; 16]);
        reg.register(t, vm(0), h);
        assert_eq!(reg.tenant_of(&h), Some(t));
        assert_eq!(reg.tenant_of(&Hit([6; 16])), None);
        assert_eq!(reg.hits_of(t), vec![h]);
        assert_eq!(reg.vms_of(t).len(), 1);
        assert_eq!(reg.len(), 1);
        assert!(reg.hits_of(TenantId(99)).is_empty());
    }
}
