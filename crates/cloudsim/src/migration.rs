//! VM live migration with HIP-announced relocation.
//!
//! §IV-C: "Solutions for VM live migration may require that the source
//! and destination hosts reside on the same layer 2 network to avoid
//! changing the IP address of the VM... HIP is agnostic regarding the
//! address family and supports even NATted topologies" — i.e. with HIP
//! the VM's *identity* (HIT) survives a cross-subnet move, the UPDATE
//! exchange re-verifies the new locator, and transport connections keep
//! running.
//!
//! This module glues [`crate::topology::CloudTopology::migrate_vm`] (the
//! infrastructure side: re-homing the access link and address) to the
//! HIP side (announcing the new locator to all peers).

use crate::topology::{CloudId, CloudTopology, VmHandle};
use hip_core::HipShim;
use netsim::host::Host;
use netsim::SimDuration;

/// Outcome of a migration.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// The VM's handle after the move (same node, new address/link).
    pub vm: VmHandle,
    /// The address before the move.
    pub old_addr: std::net::IpAddr,
    /// Simulated downtime injected (copy phase; connections stall but
    /// survive thanks to TCP retransmission + HIP UPDATE).
    pub downtime: SimDuration,
}

/// Migrates `vm` to `target` cloud and announces the move over HIP.
///
/// `downtime` models the stop-and-copy phase: the simulation simply runs
/// forward with the VM already detached from its old subnet, so in-
/// flight packets toward the old address are lost — which is precisely
/// what the HIP UPDATE + TCP retransmission machinery must absorb.
pub fn migrate_with_hip(
    topo: &mut CloudTopology,
    vm: VmHandle,
    target: CloudId,
    downtime: SimDuration,
) -> MigrationReport {
    let old_addr = vm.addr;
    let moved = topo.migrate_vm(vm, target);
    // Let the downtime elapse before the VM resumes and announces.
    topo.run_for(downtime);
    let new_addr = moved.addr;
    topo.sim.with_node_ctx(moved.node, |node, ctx| {
        let host = node.as_any_mut().downcast_mut::<Host>().expect("host");
        host.shim_command(ctx, |shim, api| {
            if let Some(hip) = shim.as_any_mut().downcast_mut::<HipShim>() {
                hip.relocate(api, new_addr);
            }
        });
    });
    MigrationReport { vm: moved, old_addr, downtime }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::Flavor;
    use crate::topology::CloudKind;
    use hip_core::identity::HostIdentity;
    use hip_core::{HipConfig, PeerInfo};
    use netsim::host::{App, AppEvent, HostApi};
    use netsim::tcp::TcpEvent;
    use netsim::SimTime;
    use rand::SeedableRng;
    use std::any::Any;
    use std::net::IpAddr;

    /// Client that counts echoed pings over a persistent connection.
    struct Chatter {
        target: IpAddr,
        sock: Option<netsim::SockId>,
        echoes: usize,
    }
    impl App for Chatter {
        fn start(&mut self, api: &mut HostApi) {
            self.sock = api.tcp_connect(self.target, 7);
            api.set_timer(netsim::SimDuration::from_millis(500), 1);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            match ev {
                AppEvent::Tcp(TcpEvent::Data(s)) => {
                    let _ = api.tcp_recv(s);
                    self.echoes += 1;
                }
                AppEvent::Timer { token: 1 } => {
                    if let Some(s) = self.sock {
                        api.tcp_send(s, b"tick");
                    }
                    api.set_timer(netsim::SimDuration::from_millis(500), 1);
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Echo;
    impl App for Echo {
        fn start(&mut self, api: &mut HostApi) {
            api.tcp_listen(7);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
                let d = api.tcp_recv(s);
                api.tcp_send(s, &d);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn tcp_over_hip_survives_cross_cloud_migration() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let id_mover = HostIdentity::generate_rsa(512, &mut rng);
        let id_peer = HostIdentity::generate_rsa(512, &mut rng);
        let (hit_mover, hit_peer) = (id_mover.hit(), id_peer.hit());

        let mut topo = CloudTopology::new(61);
        let public = topo.add_cloud("ec2", CloudKind::Public);
        let private = topo.add_cloud("onprem", CloudKind::Private);
        let mover = topo.launch_vm(public, "mover", Flavor::Micro);
        let peer = topo.launch_vm(private, "peer", Flavor::Micro);

        let mut shim_m = hip_core::HipShim::new(id_mover, HipConfig::default());
        shim_m.add_peer(hit_peer, PeerInfo { locators: vec![peer.addr], via_rvs: None });
        let mut shim_p = hip_core::HipShim::new(id_peer, HipConfig::default());
        shim_p.add_peer(hit_mover, PeerInfo { locators: vec![mover.addr], via_rvs: None });

        {
            let h = topo.host_mut(mover);
            h.set_shim(Box::new(shim_m));
            h.add_app(Box::new(Chatter { target: hit_peer.to_ip(), sock: None, echoes: 0 }));
        }
        {
            let h = topo.host_mut(peer);
            h.set_shim(Box::new(shim_p));
            h.add_app(Box::new(Echo));
        }

        // Run: connection established, some echoes flow.
        topo.sim.run_until(SimTime(3_000_000_000));
        let before = topo.host(mover).app::<Chatter>(0).unwrap().echoes;
        assert!(before >= 2, "echoes before migration: {before}");

        // Migrate across clouds with 200 ms downtime.
        let report = migrate_with_hip(&mut topo, mover, private, SimDuration::from_millis(200));
        assert_ne!(report.vm.addr, report.old_addr);

        // Run on: the same TCP connection must keep echoing.
        topo.sim.run_until(SimTime(10_000_000_000));
        let after = topo.host(report.vm).app::<Chatter>(0).unwrap().echoes;
        assert!(
            after > before + 5,
            "echoes must continue after migration (before={before}, after={after})"
        );
        // Peer switched to the new locator.
        let shim_p = topo.host(peer).shim::<hip_core::HipShim>().unwrap();
        assert_eq!(shim_p.peer_locator(&hit_mover), Some(report.vm.addr));
    }
}
