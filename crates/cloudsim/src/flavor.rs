//! EC2-style instance flavors.
//!
//! The paper's deployment (§V-A): "3 EBS-backed **micro** instances
//! (613 MB of memory and up to 2 EC2 compute units) as web servers and
//! an EBS-backed **large** instance (7.5 GB of memory and 4 EC2 compute
//! units) running MySQL". Flavors map onto [`netsim::CpuModel`]s: a
//! compute unit is the simulator's speed-1.0 core.

use netsim::CpuModel;

/// An instance type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// t1.micro: 613 MB, 1 vCPU bursting "up to 2 ECU" — sustained
    /// throughput is what matters for the saturation experiments, so we
    /// model the sustained rate of one compute unit.
    Micro,
    /// m1.small: 1.7 GB, 1 vCPU, 1 ECU.
    Small,
    /// m1.large: 7.5 GB, 2 vCPUs × 2 ECU.
    Large,
    /// A dedicated (non-VM) machine, e.g. the external load balancer —
    /// "a high-performance server as a reverse proxy".
    Dedicated,
}

impl Flavor {
    /// Memory in MB (recorded for completeness; the experiments are
    /// CPU-bound, matching the paper's observation that the DB — not
    /// memory — was the bottleneck).
    pub fn memory_mb(self) -> u32 {
        match self {
            Flavor::Micro => 613,
            Flavor::Small => 1_700,
            Flavor::Large => 7_680,
            Flavor::Dedicated => 16_384,
        }
    }

    /// Virtual CPU cores.
    pub fn vcpus(self) -> usize {
        match self {
            Flavor::Micro | Flavor::Small => 1,
            Flavor::Large => 2,
            Flavor::Dedicated => 8,
        }
    }

    /// EC2 compute units per core.
    pub fn ecu_per_core(self) -> f64 {
        match self {
            Flavor::Micro => 1.0,
            Flavor::Small => 1.0,
            Flavor::Large => 2.0,
            Flavor::Dedicated => 3.0,
        }
    }

    /// Builds the CPU model for this flavor. Micro instances are
    /// burstable (t1.micro's defining trait: full speed in short bursts,
    /// heavy throttling under sustained load) — the mechanism behind
    /// the paper's throughput decline once crypto keeps the web VMs'
    /// CPUs persistently busy.
    pub fn cpu_model(self) -> CpuModel {
        match self {
            Flavor::Micro => CpuModel::burstable(1, 2.0, 0.35, 0.10, 0.05),
            _ => CpuModel::new(self.vcpus(), self.ecu_per_core()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{SimDuration, SimTime};

    #[test]
    fn micro_bursts_then_throttles() {
        let mut micro = Flavor::Micro.cpu_model();
        // Fresh credits: a small job runs at burst speed (2 ECU).
        let d = micro.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(5));
        // Sustained near-full load drains the bucket (spend ≈ 0.45/s,
        // accrue 0.25/s): widely spaced so no queueing confounds it.
        let mut t = SimTime::ZERO;
        for _ in 0..60 {
            t += SimDuration::from_secs(10);
            micro.charge(t, SimDuration::from_millis(9000));
        }
        assert_eq!(micro.credits(), Some(0.0), "credits exhausted");
        // Now throttled to the 0.35 baseline (probe at the same instant
        // so no new credits accrue).
        let backlog = micro.backlog(t);
        let d = micro.charge(t, SimDuration::from_millis(35)).saturating_sub(backlog);
        assert_eq!(d, SimDuration::from_millis(100), "35ms work at 0.35 ECU");
    }

    #[test]
    fn large_has_two_cores() {
        let mut large = Flavor::Large.cpu_model();
        let work = SimDuration::from_millis(10);
        let a = large.charge(SimTime::ZERO, work);
        let b = large.charge(SimTime::ZERO, work);
        assert_eq!(a, b, "two jobs run in parallel on two cores");
    }

    #[test]
    fn paper_memory_figures() {
        assert_eq!(Flavor::Micro.memory_mb(), 613);
        assert_eq!(Flavor::Large.memory_mb(), 7_680);
    }
}
